//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * grouped witness search (the §4.2 observation-file grouping) versus a
//!   linear scan over every serial history;
//! * preemption-bound sweep: how many schedules phase 2 explores at
//!   PB = 0, 1, 2, ∞ (the run *counts*, measured through wall time of the
//!   full exploration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lineup::doc_support::CounterTarget;
use lineup::{
    find_witness, is_witness, synthesize_spec, CheckOptions, Invocation, TestMatrix, WitnessQuery,
};

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");

    // Witness search: grouped index vs. linear scan, on a real 3x3 spec.
    let col = vec![
        Invocation::new("inc"),
        Invocation::new("get"),
        Invocation::new("inc"),
    ];
    let m = TestMatrix::from_columns(vec![col.clone(), col.clone(), col]);
    let (spec, _, _) = synthesize_spec(&CounterTarget, &m);
    assert_eq!(spec.len(), 1680);
    // A query whose witness exists (serial-order history).
    let q = {
        use lineup::History;
        let mut h = History::new(3);
        for (t, inv) in [(0, "inc"), (1, "inc"), (2, "inc")] {
            let id = h.push_call(t, Invocation::new(inv));
            h.push_return(id, lineup::Value::Unit);
        }
        for (t, v) in [(0usize, 3i64), (1, 3), (2, 3)] {
            let id = h.push_call(t, Invocation::new("get"));
            h.push_return(id, lineup::Value::Int(v));
        }
        for t in 0..3usize {
            let id = h.push_call(t, Invocation::new("inc"));
            h.push_return(id, lineup::Value::Unit);
        }
        WitnessQuery::for_full(&h)
    };
    let idx = spec.index();
    group.bench_function("witness_grouped_index", |b| {
        b.iter(|| find_witness(&idx, &q).is_some())
    });
    group.bench_function("witness_linear_scan", |b| {
        b.iter(|| spec.iter().any(|s| is_witness(s, &q)))
    });

    // Preemption-bound sweep on a 2x2 counter test (exploration size).
    let m2 = TestMatrix::from_columns(vec![
        vec![Invocation::new("inc"), Invocation::new("get")],
        vec![Invocation::new("inc"), Invocation::new("get")],
    ]);
    for (label, bound) in [
        ("pb0", Some(0)),
        ("pb1", Some(1)),
        ("pb2", Some(2)),
        ("unbounded", None),
    ] {
        group.bench_with_input(
            BenchmarkId::new("phase2_bound", label),
            &bound,
            |b, bound| {
                let opts = CheckOptions::new().with_preemption_bound(*bound);
                b.iter(|| lineup::check(&CounterTarget, &m2, &opts));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ablation
}
criterion_main!(benches);
