//! Criterion bench for **phase 1** (serial-specification synthesis) —
//! backing the paper's claim that "the automatic enumeration of a
//! sequential specification is very cheap, which is a key fact exploited
//! by the Line-Up algorithm" (§5.4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lineup::doc_support::CounterTarget;
use lineup::{synthesize_spec, Invocation, TestMatrix};
use lineup_collections::concurrent_queue::ConcurrentQueueTarget;
use lineup_collections::Variant;

fn counter_matrix(rows: usize, cols: usize) -> TestMatrix {
    let ops = [Invocation::new("inc"), Invocation::new("get")];
    let col: Vec<Invocation> = (0..rows).map(|i| ops[i % 2].clone()).collect();
    TestMatrix::from_columns(vec![col; cols])
}

fn queue_matrix(rows: usize, cols: usize) -> TestMatrix {
    let ops = [
        Invocation::with_int("Enqueue", 10),
        Invocation::new("TryDequeue"),
        Invocation::new("TryPeek"),
    ];
    let col: Vec<Invocation> = (0..rows).map(|i| ops[i % 3].clone()).collect();
    TestMatrix::from_columns(vec![col; cols])
}

fn bench_phase1(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase1");
    for (rows, cols) in [(1, 2), (2, 2), (2, 3), (3, 3)] {
        group.bench_with_input(
            BenchmarkId::new("counter", format!("{rows}x{cols}")),
            &(rows, cols),
            |b, &(rows, cols)| {
                let m = counter_matrix(rows, cols);
                b.iter(|| synthesize_spec(&CounterTarget, &m));
            },
        );
    }
    for (rows, cols) in [(1, 2), (2, 2), (2, 3)] {
        group.bench_with_input(
            BenchmarkId::new("queue", format!("{rows}x{cols}")),
            &(rows, cols),
            |b, &(rows, cols)| {
                let target = ConcurrentQueueTarget {
                    variant: Variant::Fixed,
                };
                let m = queue_matrix(rows, cols);
                b.iter(|| synthesize_spec(&target, &m));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_phase1
}
criterion_main!(benches);
