//! Criterion bench for **phase 2** (concurrent exploration) across
//! preemption bounds — the PB column of Table 2 and the reason the paper
//! "found it necessary to use the preemption bounding heuristic" (§4.3):
//! exploration cost grows steeply with the bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lineup::doc_support::CounterTarget;
use lineup::{check_against_spec, synthesize_spec, CheckOptions, Invocation, TestMatrix};
use lineup_collections::concurrent_queue::ConcurrentQueueTarget;
use lineup_collections::Variant;

fn bench_phase2(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase2");
    group.sample_size(10);

    // Counter 2x2 across preemption bounds 0..=2.
    let m = TestMatrix::from_columns(vec![
        vec![Invocation::new("inc"), Invocation::new("get")],
        vec![Invocation::new("inc"), Invocation::new("get")],
    ]);
    let (spec, _, _) = synthesize_spec(&CounterTarget, &m);
    for pb in 0..=2usize {
        group.bench_with_input(BenchmarkId::new("counter_2x2", pb), &pb, |b, &pb| {
            let opts = CheckOptions::new().with_preemption_bound(Some(pb));
            b.iter(|| check_against_spec(&CounterTarget, &m, &spec, &opts));
        });
    }

    // Queue 2x2 at the paper's default bound.
    let qm = TestMatrix::from_columns(vec![
        vec![
            Invocation::with_int("Enqueue", 10),
            Invocation::new("TryDequeue"),
        ],
        vec![
            Invocation::with_int("Enqueue", 20),
            Invocation::new("TryDequeue"),
        ],
    ]);
    let target = ConcurrentQueueTarget {
        variant: Variant::Fixed,
    };
    let (qspec, _, _) = synthesize_spec(&target, &qm);
    for pb in 0..=2usize {
        group.bench_with_input(BenchmarkId::new("queue_2x2", pb), &pb, |b, &pb| {
            let opts = CheckOptions::new().with_preemption_bound(Some(pb));
            b.iter(|| check_against_spec(&target, &qm, &qspec, &opts));
        });
    }

    // A failing check stops at the first violation: "testcases fail much
    // quicker than they pass" (§5.4).
    let pre = ConcurrentQueueTarget {
        variant: Variant::Pre,
    };
    group.bench_function("queue_2x2_failing", |b| {
        let m = lineup_collections::concurrent_queue::fig1_matrix();
        let opts = CheckOptions::new();
        b.iter(|| {
            let report = lineup::check(&pre, &m, &opts);
            assert!(!report.passed());
            report
        });
    });

    // Serial vs prefix-partitioned parallel phase 2 on the same bounded
    // exploration (`--bin phase2` measures the exhaustive version and
    // reports runs/sec and speedup).
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("queue_2x2_workers", workers),
            &workers,
            |b, &workers| {
                let mut opts = CheckOptions::new()
                    .with_preemption_bound(Some(2))
                    .collect_all_violations();
                if workers > 1 {
                    opts = opts.with_workers(workers);
                }
                b.iter(|| check_against_spec(&target, &qm, &qspec, &opts));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_phase2
}
criterion_main!(benches);
