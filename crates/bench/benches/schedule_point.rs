//! Criterion microbench for the scheduler's schedule-point hot path: a
//! single run of a boundary-only program measures the per-step cost of
//! the baton machinery in isolation (no witness search, no history
//! checking). Comparing the `fast` and `forced_slow` variants isolates
//! the saving of the same-thread continuation fast path — `forced_slow`
//! pays a park/unpark slot handoff at every one of the same schedule
//! points. The `por` variants add the footprint/vector-clock bookkeeping
//! that every step pays when partial-order reduction is engaged.

use std::ops::ControlFlow;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lineup_sched::{explore, op_boundary, Config};

/// Schedule points per virtual thread and run — large enough that the
/// per-run setup (thread spawn, arena reset) is noise.
const STEPS: usize = 1000;

/// Runs one schedule of `threads` boundary-looping virtual threads and
/// returns the step count (so the work cannot be optimized away).
fn one_run(cfg: &Config, threads: usize) -> u64 {
    let stats = explore(
        cfg,
        move |ex| {
            for _ in 0..threads {
                ex.spawn(|| {
                    for _ in 0..STEPS {
                        op_boundary();
                    }
                });
            }
        },
        |_| ControlFlow::Break(()),
    );
    stats.total_steps
}

fn bench_schedule_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_point");
    group.sample_size(10);

    for (label, fast_path) in [("fast", true), ("forced_slow", false)] {
        // Single thread, POR off: every step after the first keeps the
        // baton, so `fast` takes the same-thread continuation at ~every
        // schedule point while `forced_slow` round-trips the wakeup slot.
        group.bench_with_input(
            BenchmarkId::new("single_thread", label),
            &fast_path,
            |b, &fp| {
                let cfg = Config::exhaustive().with_por(false).with_fast_path(fp);
                b.iter(|| black_box(one_run(&cfg, 1)));
            },
        );
        // Single thread, POR on: adds footprint settlement and sleep-set
        // bookkeeping to every step of both variants.
        group.bench_with_input(
            BenchmarkId::new("single_thread_por", label),
            &fast_path,
            |b, &fp| {
                let cfg = Config::exhaustive().with_por(true).with_fast_path(fp);
                b.iter(|| black_box(one_run(&cfg, 1)));
            },
        );
        // Two threads under DFS: one genuine cross-thread handoff at the
        // first thread's finish; the rest is same-thread continuation.
        group.bench_with_input(
            BenchmarkId::new("two_threads_dfs", label),
            &fast_path,
            |b, &fp| {
                let cfg = Config::exhaustive().with_por(false).with_fast_path(fp);
                b.iter(|| black_box(one_run(&cfg, 2)));
            },
        );
        // Two threads under a seeded random scheduler: cross-thread
        // switches throughout, bounding what the fast path can save.
        group.bench_with_input(
            BenchmarkId::new("two_threads_random", label),
            &fast_path,
            |b, &fp| {
                let cfg = Config::random(42, 1).with_fast_path(fp);
                b.iter(|| black_box(one_run(&cfg, 2)));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_schedule_point
}
criterion_main!(benches);
