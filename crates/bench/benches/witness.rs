//! Criterion bench for the serial-witness search: cost as a function of
//! specification size, with the grouped index of §4.2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lineup::{
    find_witness, History, Invocation, ObservationSet, Outcome, SerialHistory, SpecOp, Value,
    WitnessQuery,
};

/// A spec with `n` serial histories over `threads` threads (all orders of
/// one op per thread, results made distinct per history block so several
/// groups exist).
fn synthetic_spec(n: usize, threads: usize) -> ObservationSet {
    let mut spec = ObservationSet::new();
    let mut produced = 0usize;
    let mut perm: Vec<usize> = (0..threads).collect();
    'outer: loop {
        for block in 0.. {
            let ops: Vec<SpecOp> = perm
                .iter()
                .map(|&t| SpecOp {
                    thread: t,
                    invocation: Invocation::new("op"),
                    outcome: Outcome::Returned(Value::Int(block)),
                })
                .collect();
            spec.insert(SerialHistory {
                thread_count: threads,
                ops,
            });
            produced += 1;
            if produced >= n {
                break 'outer;
            }
            if block >= n as i64 / 6 {
                break;
            }
        }
        if !next_permutation(&mut perm) {
            perm = (0..threads).collect();
        }
    }
    spec
}

fn next_permutation(p: &mut [usize]) -> bool {
    let n = p.len();
    if n < 2 {
        return false;
    }
    let mut i = n - 1;
    while i > 0 && p[i - 1] >= p[i] {
        i -= 1;
    }
    if i == 0 {
        return false;
    }
    let mut j = n - 1;
    while p[j] <= p[i - 1] {
        j -= 1;
    }
    p.swap(i - 1, j);
    p[i..].reverse();
    true
}

fn query(threads: usize) -> WitnessQuery {
    // A fully-overlapping concurrent history: all calls, then all returns.
    let mut h = History::new(threads);
    let ids: Vec<usize> = (0..threads)
        .map(|t| h.push_call(t, Invocation::new("op")))
        .collect();
    for id in ids {
        h.push_return(id, Value::Int(0));
    }
    WitnessQuery::for_full(&h)
}

fn bench_witness(c: &mut Criterion) {
    let mut group = c.benchmark_group("witness");
    for n in [10usize, 100, 1000] {
        let spec = synthetic_spec(n, 3);
        let q = query(3);
        group.bench_with_input(BenchmarkId::new("indexed_search", n), &n, |b, _| {
            let idx = spec.index();
            b.iter(|| find_witness(&idx, &q));
        });
        group.bench_with_input(
            BenchmarkId::new("index_build_plus_search", n),
            &n,
            |b, _| {
                b.iter(|| {
                    let idx = spec.index();
                    find_witness(&idx, &q)
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_witness
}
criterion_main!(benches);
