//! Reproduces the **§5.6 comparison**: Line-Up versus happens-before data
//! race detection and conflict-serializability (atomicity) checking, on
//! the fixed (correct) collections.
//!
//! Expected shape, as in the paper:
//! * race detection finds **no harmful data races** — the collections use
//!   volatiles and interlocked operations with discipline;
//! * conflict-serializability checking produces **many warnings on
//!   correct code** (the four benign patterns of §5.6: failed-CAS
//!   retries, double-checked timing optimizations, `==` state tests, lazy
//!   initialization under a global lock);
//! * Line-Up passes the same executions.
//!
//! ```text
//! cargo run --release -p lineup-bench --bin comparison [--cap RUNS]
//! ```

use std::collections::BTreeSet;
use std::ops::ControlFlow;

use lineup::{explore_matrix, Invocation, TestMatrix};
use lineup_bench::{arg_num, TextTable};
use lineup_checkers::{check_serializability, detect_races};
use lineup_collections::cancellation_token_source::CancellationTokenSourceTarget;
use lineup_collections::concurrent_bag::ConcurrentBagTarget;
use lineup_collections::concurrent_queue::ConcurrentQueueTarget;
use lineup_collections::concurrent_stack::ConcurrentStackTarget;
use lineup_collections::semaphore_slim::SemaphoreSlimTarget;
use lineup_collections::Variant;
use lineup_sched::Config;

struct Case {
    name: &'static str,
    pattern: &'static str,
    run: fn(cap: u64) -> (u64, usize, usize, bool),
}

/// Explores a matrix with access logging; returns (runs, race pairs,
/// serializability warnings, lineup_passes).
fn analyze<T: lineup::TestTarget>(
    target: &T,
    matrix: &TestMatrix,
    cap: u64,
) -> (u64, usize, usize, bool) {
    let config = Config::preemption_bounded(2)
        .with_access_log(true)
        .with_max_runs(cap);
    let mut races = 0usize;
    let mut warnings = 0usize;
    let mut seen_cycles: BTreeSet<Vec<(usize, usize)>> = BTreeSet::new();
    let stats = explore_matrix(target, matrix, &config, |run| {
        races += detect_races(&run.access_log).len();
        if let Err(v) = check_serializability(&run.access_log) {
            let mut cycle = v.cycle.clone();
            cycle.sort();
            if seen_cycles.insert(cycle) {
                warnings += 1;
            }
        }
        ControlFlow::Continue(())
    });
    let passed = {
        let opts = lineup::CheckOptions::new().with_max_phase2_runs(cap);
        lineup::check(target, matrix, &opts).passed()
    };
    (stats.runs, races, warnings, passed)
}

fn main() {
    let cap: u64 = arg_num("--cap", 20_000);

    let cases: Vec<Case> = vec![
        Case {
            name: "ConcurrentStack",
            pattern: "failed CAS leads to a retry (benign pattern 1)",
            run: |cap| {
                let t = ConcurrentStackTarget {
                    variant: Variant::Fixed,
                };
                let m = TestMatrix::from_columns(vec![
                    vec![Invocation::with_int("Push", 10), Invocation::new("TryPop")],
                    vec![Invocation::with_int("Push", 20), Invocation::new("TryPop")],
                ]);
                analyze(&t, &m, cap)
            },
        },
        Case {
            name: "ConcurrentQueue",
            pattern: "failed CAS leads to a retry (benign pattern 1)",
            run: |cap| {
                let t = ConcurrentQueueTarget {
                    variant: Variant::Fixed,
                };
                let m = TestMatrix::from_columns(vec![
                    vec![
                        Invocation::with_int("Enqueue", 10),
                        Invocation::new("TryDequeue"),
                    ],
                    vec![
                        Invocation::with_int("Enqueue", 20),
                        Invocation::new("TryDequeue"),
                    ],
                ]);
                analyze(&t, &m, cap)
            },
        },
        Case {
            name: "SemaphoreSlim",
            pattern: "double-checked timing optimization (benign pattern 2)",
            run: |cap| {
                let t = SemaphoreSlimTarget {
                    variant: Variant::Fixed,
                    initial: 1,
                };
                let m = TestMatrix::from_columns(vec![
                    vec![
                        Invocation::with_int("Wait", 0),
                        Invocation::new("CurrentCount"),
                    ],
                    vec![Invocation::new("Release"), Invocation::with_int("Wait", 0)],
                ]);
                analyze(&t, &m, cap)
            },
        },
        Case {
            name: "CancellationTokenSource",
            pattern: "state compared with == is a right-mover (benign pattern 3)",
            run: |cap| {
                let t = CancellationTokenSourceTarget;
                let m = TestMatrix::from_columns(vec![
                    vec![
                        Invocation::new("Increment"),
                        Invocation::new("IsCancellationRequested"),
                    ],
                    vec![Invocation::new("Cancel")],
                ]);
                analyze(&t, &m, cap)
            },
        },
        Case {
            name: "ConcurrentBag",
            pattern: "lazy initialization under a global lock (benign pattern 4)",
            run: |cap| {
                let t = ConcurrentBagTarget {
                    variant: Variant::Fixed,
                };
                // TryTake's steal scan interleaves with the other thread's
                // lazy slot initialization under the global lock.
                let m = TestMatrix::from_columns(vec![
                    vec![Invocation::new("TryTake"), Invocation::new("TryPeek")],
                    vec![Invocation::with_int("Add", 20), Invocation::new("TryTake")],
                ]);
                analyze(&t, &m, cap)
            },
        },
    ];

    println!("§5.6 comparison on correct (fixed) implementations:\n");
    let mut table = TextTable::new(&[
        "Class",
        "Runs",
        "Data races",
        "Serializability warnings",
        "Line-Up",
    ]);
    let mut total_warnings = 0usize;
    let mut total_races = 0usize;
    for case in &cases {
        let (runs, races, warnings, passed) = (case.run)(cap);
        total_warnings += warnings;
        total_races += races;
        table.row(vec![
            case.name.to_string(),
            runs.to_string(),
            races.to_string(),
            warnings.to_string(),
            if passed { "PASS".into() } else { "FAIL".into() },
        ]);
    }
    print!("{}", table.render());
    println!();
    for case in &cases {
        println!("  {:<24} {}", case.name, case.pattern);
    }
    println!();
    println!(
        "Totals: {total_races} data races, {total_warnings} distinct conflict-serializability \
         warning cycles — all on code Line-Up correctly passes."
    );
    println!(
        "As in the paper: the volatile/interlocked discipline leaves no harmful \
         data races, while conflict-serializability checking floods the user \
         with false alarms that are \"labor-intensive to decide\" (§5.6)."
    );
}
