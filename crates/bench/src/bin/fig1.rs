//! Reproduces **Fig. 1** of the paper: the buggy queue whose `TryTake`
//! fails on a non-empty queue, detected automatically by Line-Up.
//!
//! ```text
//! cargo run --release -p lineup-bench --bin fig1
//! ```

use lineup::report::render_report;
use lineup::{CheckOptions, ErasedTarget};
use lineup_collections::concurrent_queue::{fig1_matrix, ConcurrentQueueTarget};
use lineup_collections::Variant;

fn main() {
    println!("Fig. 1: {{Add(200), Add(400)}} ∥ {{TryTake, TryTake}} on the preview queue\n");
    let matrix = fig1_matrix();
    println!("Test matrix:\n{matrix}");

    // The fixed queue passes.
    let fixed = ConcurrentQueueTarget {
        variant: Variant::Fixed,
    };
    let report = fixed.check(&matrix, &CheckOptions::new());
    println!("ConcurrentQueue (fixed):   {}", verdict(&report));

    // The preview queue fails with the Fig. 1 violation.
    let pre = ConcurrentQueueTarget {
        variant: Variant::Pre,
    };
    let report = pre.check(&matrix, &CheckOptions::new());
    println!("ConcurrentQueue (preview): {}\n", verdict(&report));
    print!("{}", render_report(&report));

    // Shrink to the minimal failing test, as §5.1 does manually.
    let (small, checks) = pre.shrink_failing_test(&matrix, &CheckOptions::new());
    let (r, c) = small.dimension();
    println!("\nMinimal failing test after shrinking ({checks} checks): {r}x{c}");
    println!("{small}");
}

fn verdict(report: &lineup::CheckReport) -> &'static str {
    if report.passed() {
        "PASS"
    } else {
        "FAIL (violation of deterministic linearizability)"
    }
}
