//! Reproduces **Fig. 3** of the paper: the specification automaton of the
//! counter object — synthesized automatically from serial executions
//! instead of drawn by hand, which is the core insight of Line-Up
//! ("if the sequential specification is deterministic, it is possible to
//! automatically generate the specification by systematically enumerating
//! all sequential behaviors").
//!
//! ```text
//! cargo run --release -p lineup-bench --bin fig3_spec
//! ```

use lineup::{synthesize_spec, Invocation, TestMatrix};
use lineup_collections::counter::{CounterKind, CounterTarget};

fn main() {
    let target = CounterTarget {
        kind: CounterKind::Correct,
    };
    // Exercise inc, dec, get from two threads: the serial histories are
    // exactly the paths of the Fig. 3 automaton restricted to this test.
    let m = TestMatrix::from_columns(vec![
        vec![Invocation::new("inc"), Invocation::new("get")],
        vec![Invocation::new("dec"), Invocation::new("get")],
    ]);
    println!("Synthesizing the counter specification from serial executions of:\n{m}");
    let (spec, stats, err) = synthesize_spec(&target, &m);
    assert!(err.is_none(), "correct counter never panics");

    println!(
        "Phase 1 explored {} serial executions in {:?}: {} full + {} stuck serial histories.\n",
        stats.runs,
        stats.duration,
        spec.full_count(),
        spec.stuck_count()
    );
    println!("The synthesized specification (all serial histories):");
    for h in spec.iter() {
        println!("  {h}");
    }
    println!(
        "\nEach history is a path of the Fig. 3 automaton: inc edges n→n+1, dec\n\
         edges n→n−1 blocking at 0 (the stuck histories ending in '#'), get\n\
         self-loops returning n."
    );
    // Persist as an observation file (Fig. 7 format).
    let file = lineup::write_observation_file(&spec);
    let path = std::env::temp_dir().join("lineup_counter_spec.xml");
    std::fs::write(&path, &file).expect("write observation file");
    println!(
        "\nObservation file written to {} ({} bytes).",
        path.display(),
        file.len()
    );
}
