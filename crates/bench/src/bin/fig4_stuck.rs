//! Reproduces **Fig. 4** of the paper: the buggy `Counter2`, whose `get`
//! never releases the lock, and the stuck history it produces.
//!
//! As §2.2.2 explains, every history of `Counter2` is linearizable under
//! the *classic* Definition 1 — the stuck history is only even
//! representable under the generalized definition of §2.3. And since
//! `Counter2`'s own serial behavior blocks the same way, it is in fact
//! *deterministically linearizable* (with respect to a specification in
//! which `get` poisons the counter), so the self-synthesized check
//! passes; the defect surfaces through the stuck histories themselves and
//! through differential checking against the correct counter.
//!
//! ```text
//! cargo run --release -p lineup-bench --bin fig4_stuck
//! ```

use lineup::{check, check_against_spec, synthesize_spec, CheckOptions, Invocation, TestMatrix};
use lineup_collections::counter::{CounterKind, CounterTarget};

fn main() {
    let buggy = CounterTarget {
        kind: CounterKind::StuckLock,
    };
    let correct = CounterTarget {
        kind: CounterKind::Correct,
    };
    let m = TestMatrix::from_columns(vec![
        vec![Invocation::new("inc"), Invocation::new("get")],
        vec![Invocation::new("inc")],
    ]);
    println!("Fig. 4: Counter2 (get never releases the lock) under:\n{m}");

    // Self-check: passes, because the serial behavior blocks identically.
    let report = check(&buggy, &m, &CheckOptions::new());
    println!(
        "Self-synthesized check: {} ({} full + {} stuck serial histories in the spec)",
        if report.passed() { "PASS" } else { "FAIL" },
        report.spec.full_count(),
        report.spec.stuck_count()
    );
    println!("\nStuck serial histories of Counter2 (the Fig. 4 behavior):");
    for h in report.spec.iter().filter(|h| h.is_stuck()) {
        println!("  {h}");
    }

    // Differential check against the correct counter's specification.
    let (spec, _, _) = synthesize_spec(&correct, &m);
    let (violations, stats) = check_against_spec(&buggy, &m, &spec, &CheckOptions::new());
    println!(
        "\nDifferential check against the correct counter's specification: {}",
        if violations.is_empty() {
            "PASS"
        } else {
            "FAIL"
        }
    );
    println!("({} concurrent runs; first violation below)", stats.runs);
    if let Some(v) = violations.first() {
        print!("\n{}", lineup::render_violation(v));
    }
}
