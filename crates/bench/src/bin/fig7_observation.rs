//! Reproduces **Fig. 7** of the paper: the 2×2 FIFO-queue test, its
//! observation file (the synthesized specification, grouped into
//! `<observation>` sections), and a linearizability-violation report from
//! the preview queue.
//!
//! ```text
//! cargo run --release -p lineup-bench --bin fig7_observation
//! ```

use lineup::report::render_violation;
use lineup::{
    check_against_spec, parse_observation_file, synthesize_spec, write_observation_file,
    CheckOptions, Invocation, TestMatrix,
};
use lineup_collections::concurrent_queue::ConcurrentQueueTarget;
use lineup_collections::Variant;

fn main() {
    // The Fig. 7 (top) test: Thread A: Add(200); Add(400) — Thread B:
    // Take(); TryTake(). Take blocks on an empty queue; our queue's
    // blocking Take is modelled by TryDequeue on the fixed queue… the
    // figure's point is the file format, so we use the queue's TryTake
    // (non-blocking) plus an Add pair, which produces both grouping and a
    // stuck-free file; the blocking variants appear in fig3's counter
    // file.
    let m = TestMatrix::from_columns(vec![
        vec![
            Invocation::with_int("Add", 200),
            Invocation::with_int("Add", 400),
        ],
        vec![Invocation::new("TryTake"), Invocation::new("TryTake")],
    ]);
    println!("Fig. 7 (top) — the test matrix:\n{m}");

    let fixed = ConcurrentQueueTarget {
        variant: Variant::Fixed,
    };
    let (spec, stats, _) = synthesize_spec(&fixed, &m);
    println!(
        "Phase 1: {} serial runs → {} serial histories in {} groups.\n",
        stats.runs,
        spec.len(),
        spec.index().group_count()
    );
    let file = write_observation_file(&spec);
    println!("Fig. 7 (middle) — the observation file:\n");
    println!("{file}");

    // Round-trip sanity: the file parses back to the same specification.
    let parsed = parse_observation_file(&file).expect("own files parse");
    assert_eq!(parsed, spec);
    println!("(Round-trip check: parsing the file reproduces the specification.)\n");

    // Fig. 7 (bottom): a violation report, from the preview queue checked
    // against the fixed queue's specification.
    let pre = ConcurrentQueueTarget {
        variant: Variant::Pre,
    };
    let (violations, _) = check_against_spec(&pre, &m, &spec, &CheckOptions::new());
    match violations.first() {
        Some(v) => {
            println!("Fig. 7 (bottom) — the violation report for the preview queue:\n");
            print!("{}", render_violation(v));
        }
        None => println!("(preview queue produced no violation on this test)"),
    }
}
