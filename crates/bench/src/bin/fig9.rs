//! Reproduces **Fig. 9** of the paper: the ManualResetEvent test in which
//! `Wait` is never unblocked because of the CAS-re-read typo (root cause
//! A), found through the generalized (blocking-aware) linearizability of
//! §2.3 — "we would not be able to single out the bug in Figure 9 with a
//! tool that checks standard (nonblocking) linearizability only" (§5.5).
//!
//! ```text
//! cargo run --release -p lineup-bench --bin fig9
//! ```

use lineup::report::render_report;
use lineup::{CheckOptions, ErasedTarget};
use lineup_collections::manual_reset_event::{fig9_matrix, ManualResetEventTarget};
use lineup_collections::Variant;

fn main() {
    println!("Fig. 9: {{Wait}} ∥ {{Set, Reset, Set}} on ManualResetEvent\n");
    let matrix = fig9_matrix();
    println!("Test matrix:\n{matrix}");
    println!(
        "\"Irrespective of the interleaving between the two threads, one expects\n\
         Thread 1 to be eventually unblocked.\"\n"
    );

    let fixed = ManualResetEventTarget {
        variant: Variant::Fixed,
    };
    let report = fixed.check(&matrix, &CheckOptions::new());
    println!(
        "ManualResetEvent (fixed):   {}",
        if report.passed() { "PASS" } else { "FAIL" }
    );

    let pre = ManualResetEventTarget {
        variant: Variant::Pre,
    };
    let report = pre.check(&matrix, &CheckOptions::new());
    println!(
        "ManualResetEvent (preview): {}\n",
        if report.passed() { "PASS" } else { "FAIL" }
    );
    print!("{}", render_report(&report));
    println!(
        "\nThe violating history is *stuck*: the pending Wait has no stuck serial\n\
         witness — serially, Wait always returns once the final Set has executed.\n\
         Classic linearizability (Def. 1) would accept this history; only the\n\
         generalized definition (Def. 2/3) rejects it."
    );
}
