//! Monitor-vs-SpecIndex comparison on the Table 2 rows: runs `check`
//! twice per regression matrix — once with the default pre-enumerated
//! witness search, once with the `lineup-monitor` backend
//! ([`CheckOptions::with_monitor_backend`]) — and reports verdict
//! agreement, wall time, and the monitor's oracle statistics.
//!
//! ```text
//! cargo run --release -p lineup-bench --bin monitorcmp [--json] [--out PATH]
//! ```
//!
//! Fixed classes (no regression matrix of their own) are exercised on
//! their seeded "(Pre)" sibling's matrices, exactly like the
//! `monitor_equivalence` integration test.

use std::time::Instant;

use lineup::{CheckOptions, TestMatrix};
use lineup_bench::{arg_flag, arg_value, fmt_duration, TextTable};
use lineup_collections::registry::{all_classes, ClassEntry};
use lineup_monitor::monitor_backend;

struct Sample {
    class: String,
    matrices: usize,
    verdict: &'static str,
    agree: bool,
    spec_seconds: f64,
    monitor_seconds: f64,
    oracle_steps: u64,
    memo_hits: u64,
    cached_sequences: usize,
}

/// The matrices to compare a class on (own regression matrices, or the
/// seeded sibling's against the fixed code).
fn matrices_for(entry: &ClassEntry) -> Vec<TestMatrix> {
    let own = entry.regression_matrices();
    if !own.is_empty() {
        return own;
    }
    all_classes()
        .iter()
        .find(|e| e.name.trim_end_matches(" (Pre)") == entry.name && e.name != entry.name)
        .map(|sibling| sibling.regression_matrices())
        .unwrap_or_default()
}

fn main() {
    let json = arg_flag("--json");
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_monitorcmp.json".into());

    let mut samples: Vec<Sample> = Vec::new();
    for entry in all_classes() {
        let matrices = matrices_for(&entry);
        if matrices.is_empty() {
            continue;
        }
        let mut spec_seconds = 0.0;
        let mut monitor_seconds = 0.0;
        let mut passed = true;
        let mut agree = true;
        let mut oracle_steps = 0;
        let mut memo_hits = 0;
        let mut cached_sequences = 0;
        for matrix in &matrices {
            let opts = CheckOptions::new().collect_all_violations();
            let t0 = Instant::now();
            let base = entry.target().check(matrix, &opts);
            spec_seconds += t0.elapsed().as_secs_f64();

            let backend = monitor_backend(entry.target_arc(), matrix);
            let mon_opts = opts.with_monitor_backend(backend.clone());
            let t0 = Instant::now();
            let mon = entry.target().check(matrix, &mon_opts);
            monitor_seconds += t0.elapsed().as_secs_f64();

            passed &= base.passed();
            agree &= base.passed() == mon.passed() && base.violations.len() == mon.violations.len();
            let stats = backend.stats();
            oracle_steps += stats.oracle_steps;
            memo_hits += stats.memo_hits;
            cached_sequences += backend.oracle().cached_sequences();
        }
        samples.push(Sample {
            class: entry.name.to_string(),
            matrices: matrices.len(),
            verdict: if passed { "pass" } else { "fail" },
            agree,
            spec_seconds,
            monitor_seconds,
            oracle_steps,
            memo_hits,
            cached_sequences,
        });
    }

    let mut table = TextTable::new(&[
        "class",
        "tests",
        "verdict",
        "agree",
        "specindex",
        "monitor",
        "oracle steps",
        "memo hits",
        "replays",
    ]);
    let mut disagreements = 0;
    for s in &samples {
        if !s.agree {
            disagreements += 1;
        }
        table.row(vec![
            s.class.clone(),
            s.matrices.to_string(),
            s.verdict.to_string(),
            if s.agree { "yes" } else { "NO" }.to_string(),
            fmt_duration(std::time::Duration::from_secs_f64(s.spec_seconds)),
            fmt_duration(std::time::Duration::from_secs_f64(s.monitor_seconds)),
            s.oracle_steps.to_string(),
            s.memo_hits.to_string(),
            s.cached_sequences.to_string(),
        ]);
    }
    println!("Monitor backend vs SpecIndex witness search (regression matrices)");
    println!("{}", table.render());

    if json {
        let mut out = String::from("{\n");
        out.push_str("  \"benchmark\": \"monitor-vs-specindex\",\n");
        out.push_str("  \"results\": [\n");
        for (i, s) in samples.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"class\": \"{}\", \"tests\": {}, \"verdict\": \"{}\", \
                 \"agree\": {}, \"specindex_seconds\": {:.6}, \
                 \"monitor_seconds\": {:.6}, \"oracle_steps\": {}, \
                 \"memo_hits\": {}, \"cached_sequences\": {}}}{}\n",
                s.class,
                s.matrices,
                s.verdict,
                s.agree,
                s.spec_seconds,
                s.monitor_seconds,
                s.oracle_steps,
                s.memo_hits,
                s.cached_sequences,
                if i + 1 < samples.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        match std::fs::write(&out_path, &out) {
            Ok(()) => println!("wrote {out_path}"),
            Err(e) => {
                eprintln!("failed to write {out_path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if disagreements > 0 {
        eprintln!("{disagreements} class(es) disagreed between the backends");
        std::process::exit(1);
    }
}
