//! Monitor-vs-SpecIndex comparison on the Table 2 rows: runs `check`
//! twice per regression matrix — once with the default pre-enumerated
//! witness search, once with the `lineup-monitor` backend
//! ([`CheckOptions::with_monitor_backend`]) — and reports verdict
//! agreement, wall time, and the monitor's oracle statistics. The
//! monitor backend carries the registry's ADT-kind annotation, so its
//! per-path counters show how many checks the specialized log-linear
//! checkers decided versus how many fell back to Wing–Gong.
//!
//! ```text
//! cargo run --release -p lineup-bench --bin monitorcmp \
//!     [--json] [--out PATH] [--large] [--smoke]
//! ```
//!
//! `--large` adds the scaling comparison: on unambiguous generated
//! histories of 1k–8k operations per ADT kind, the specialized path is
//! timed against a forced Wing–Gong monitor on the same history, with a
//! speedup column; ambiguous and violating variants double-check that
//! fallback and rejection agree. `--smoke` shrinks the sweep to its
//! smallest size (for CI).
//!
//! Fixed classes (no regression matrix of their own) are exercised on
//! their seeded "(Pre)" sibling's matrices, exactly like the
//! `monitor_equivalence` integration test.

use std::time::Instant;

use lineup::{AdtKind, CheckOptions, FallbackReason, TestMatrix};
use lineup_bench::histories::{
    ambiguous_history, ideal_oracle, unambiguous_history, violating_history,
};
use lineup_bench::{arg_flag, arg_value, fmt_duration, TextTable};
use lineup_collections::registry::{all_classes, ClassEntry};
use lineup_monitor::{adt_monitor_backend, Monitor};

struct Sample {
    class: String,
    matrices: usize,
    verdict: &'static str,
    agree: bool,
    spec_seconds: f64,
    monitor_seconds: f64,
    oracle_steps: u64,
    memo_hits: u64,
    cached_sequences: usize,
    specialized_checks: u64,
    fallback_checks: u64,
}

struct LargeSample {
    kind: AdtKind,
    ops: usize,
    specialized_seconds: f64,
    wing_gong_seconds: f64,
    agree: bool,
    specialized_decided: bool,
}

struct AmbiguousSample {
    kind: AdtKind,
    ops: usize,
    agree: bool,
    fell_back: bool,
}

/// The matrices to compare a class on (own regression matrices, or the
/// seeded sibling's against the fixed code).
fn matrices_for(entry: &ClassEntry) -> Vec<TestMatrix> {
    let own = entry.regression_matrices();
    if !own.is_empty() {
        return own;
    }
    all_classes()
        .iter()
        .find(|e| e.name.trim_end_matches(" (Pre)") == entry.name && e.name != entry.name)
        .map(|sibling| sibling.regression_matrices())
        .unwrap_or_default()
}

const KINDS: [AdtKind; 4] = [
    AdtKind::Queue,
    AdtKind::Stack,
    AdtKind::Set,
    AdtKind::PriorityQueue,
];

fn kind_name(kind: AdtKind) -> &'static str {
    match kind {
        AdtKind::Queue => "queue",
        AdtKind::Stack => "stack",
        AdtKind::Set => "set",
        AdtKind::PriorityQueue => "pqueue",
    }
}

/// Times the kind-annotated monitor against a forced Wing–Gong monitor
/// on generated histories; returns `(large, ambiguous, ok)`.
fn run_large(smoke: bool) -> (Vec<LargeSample>, Vec<AmbiguousSample>, bool) {
    let sizes: &[usize] = if smoke {
        &[1000]
    } else {
        &[1000, 2000, 4000, 8000]
    };
    let mut ok = true;
    let mut large = Vec::new();
    for &kind in &KINDS {
        for (i, &n) in sizes.iter().enumerate() {
            let h = unambiguous_history(kind, n, 41 + i as u64);
            let spec = Monitor::new(ideal_oracle(kind)).with_adt_kind(kind);
            let t0 = Instant::now();
            let sv = spec.check_full(&h, &[]);
            let specialized_seconds = t0.elapsed().as_secs_f64();
            eprintln!(
                "{} n={n}: specialized {}",
                kind_name(kind),
                fmt_duration(std::time::Duration::from_secs_f64(specialized_seconds))
            );

            let wg = Monitor::new(ideal_oracle(kind));
            let t0 = Instant::now();
            let gv = wg.check_full(&h, &[]);
            let wing_gong_seconds = t0.elapsed().as_secs_f64();
            eprintln!(
                "{} n={n}: wing-gong {}",
                kind_name(kind),
                fmt_duration(std::time::Duration::from_secs_f64(wing_gong_seconds))
            );

            let paths = spec.stats().paths;
            let specialized_decided = paths.specialized_checks == 1 && paths.fallback_checks == 0;
            let agree = sv == gv && sv;
            ok &= agree && specialized_decided;
            large.push(LargeSample {
                kind,
                ops: n,
                specialized_seconds,
                wing_gong_seconds,
                agree,
                specialized_decided,
            });
        }
    }

    // Ambiguous variants: a provably repeated value must route the check
    // to the Wing–Gong fallback without changing the verdict. Violating
    // variants must reject on both paths. Both stay small — rejection
    // and duplicate values make the reference search exhaustive.
    let mut ambiguous = Vec::new();
    for &kind in &KINDS {
        let n = 200;
        let h = ambiguous_history(kind, n, 7);
        let spec = Monitor::new(ideal_oracle(kind)).with_adt_kind(kind);
        let sv = spec.check_full(&h, &[]);
        let gv = Monitor::new(ideal_oracle(kind)).check_full(&h, &[]);
        let paths = spec.stats().paths;
        let fell_back = paths.specialized_checks == 0
            && paths.fallbacks_for(FallbackReason::DuplicateValue) == 1;
        let agree = sv == gv;
        ok &= agree && fell_back;
        ambiguous.push(AmbiguousSample {
            kind,
            ops: n,
            agree,
            fell_back,
        });

        let vh = violating_history(kind, 1000, 11);
        let spec = Monitor::new(ideal_oracle(kind)).with_adt_kind(kind);
        if spec.check_full(&vh, &[]) {
            eprintln!(
                "{}: violating history accepted by annotated monitor",
                kind_name(kind)
            );
            ok = false;
        }
        if Monitor::new(ideal_oracle(kind)).check_full(&vh, &[]) {
            eprintln!(
                "{}: violating history accepted by Wing\u{2013}Gong",
                kind_name(kind)
            );
            ok = false;
        }
    }
    (large, ambiguous, ok)
}

fn main() {
    let json = arg_flag("--json");
    let do_large = arg_flag("--large");
    let smoke = arg_flag("--smoke");
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_monitorcmp.json".into());

    let mut samples: Vec<Sample> = Vec::new();
    for entry in all_classes() {
        let matrices = matrices_for(&entry);
        if matrices.is_empty() {
            continue;
        }
        let mut spec_seconds = 0.0;
        let mut monitor_seconds = 0.0;
        let mut passed = true;
        let mut agree = true;
        let mut oracle_steps = 0;
        let mut memo_hits = 0;
        let mut cached_sequences = 0;
        let mut specialized_checks = 0;
        let mut fallback_checks = 0;
        for matrix in &matrices {
            let opts = CheckOptions::new().collect_all_violations();
            let t0 = Instant::now();
            let base = entry.target().check(matrix, &opts);
            spec_seconds += t0.elapsed().as_secs_f64();

            let backend = adt_monitor_backend(entry.target_arc(), matrix, entry.adt_kind);
            let mon_opts = opts.with_monitor_backend(backend.clone());
            let t0 = Instant::now();
            let mon = entry.target().check(matrix, &mon_opts);
            monitor_seconds += t0.elapsed().as_secs_f64();

            passed &= base.passed();
            agree &= base.passed() == mon.passed() && base.violations.len() == mon.violations.len();
            let stats = backend.stats();
            oracle_steps += stats.oracle_steps;
            memo_hits += stats.memo_hits;
            cached_sequences += backend.oracle().cached_sequences();
            specialized_checks += stats.paths.specialized_checks;
            fallback_checks += stats.paths.fallback_checks;
        }
        samples.push(Sample {
            class: entry.name.to_string(),
            matrices: matrices.len(),
            verdict: if passed { "pass" } else { "fail" },
            agree,
            spec_seconds,
            monitor_seconds,
            oracle_steps,
            memo_hits,
            cached_sequences,
            specialized_checks,
            fallback_checks,
        });
    }

    let mut table = TextTable::new(&[
        "class",
        "tests",
        "verdict",
        "agree",
        "specindex",
        "monitor",
        "oracle steps",
        "memo hits",
        "replays",
        "fast path",
        "fallback",
    ]);
    let mut disagreements = 0;
    for s in &samples {
        if !s.agree {
            disagreements += 1;
        }
        table.row(vec![
            s.class.clone(),
            s.matrices.to_string(),
            s.verdict.to_string(),
            if s.agree { "yes" } else { "NO" }.to_string(),
            fmt_duration(std::time::Duration::from_secs_f64(s.spec_seconds)),
            fmt_duration(std::time::Duration::from_secs_f64(s.monitor_seconds)),
            s.oracle_steps.to_string(),
            s.memo_hits.to_string(),
            s.cached_sequences.to_string(),
            s.specialized_checks.to_string(),
            s.fallback_checks.to_string(),
        ]);
    }
    println!("Monitor backend vs SpecIndex witness search (regression matrices)");
    println!("{}", table.render());

    let (large, ambiguous, large_ok) = if do_large {
        run_large(smoke)
    } else {
        (Vec::new(), Vec::new(), true)
    };
    if do_large {
        let mut table = TextTable::new(&[
            "kind",
            "ops",
            "specialized",
            "wing-gong",
            "speedup",
            "agree",
            "fast path",
        ]);
        for s in &large {
            table.row(vec![
                kind_name(s.kind).to_string(),
                s.ops.to_string(),
                fmt_duration(std::time::Duration::from_secs_f64(s.specialized_seconds)),
                fmt_duration(std::time::Duration::from_secs_f64(s.wing_gong_seconds)),
                format!(
                    "{:.1}x",
                    s.wing_gong_seconds / s.specialized_seconds.max(1e-9)
                ),
                if s.agree { "yes" } else { "NO" }.to_string(),
                if s.specialized_decided { "yes" } else { "NO" }.to_string(),
            ]);
        }
        println!("Specialized monitors vs forced Wing–Gong (unambiguous histories)");
        println!("{}", table.render());

        let mut table = TextTable::new(&["kind", "ops", "agree", "fell back"]);
        for s in &ambiguous {
            table.row(vec![
                kind_name(s.kind).to_string(),
                s.ops.to_string(),
                if s.agree { "yes" } else { "NO" }.to_string(),
                if s.fell_back { "yes" } else { "NO" }.to_string(),
            ]);
        }
        println!("Ambiguous histories (repeated values force the fallback)");
        println!("{}", table.render());
    }

    if json {
        let mut out = String::from("{\n");
        out.push_str("  \"benchmark\": \"monitor-vs-specindex\",\n");
        out.push_str("  \"results\": [\n");
        for (i, s) in samples.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"class\": \"{}\", \"tests\": {}, \"verdict\": \"{}\", \
                 \"agree\": {}, \"specindex_seconds\": {:.6}, \
                 \"monitor_seconds\": {:.6}, \"oracle_steps\": {}, \
                 \"memo_hits\": {}, \"cached_sequences\": {}, \
                 \"specialized_checks\": {}, \"fallback_checks\": {}}}{}\n",
                s.class,
                s.matrices,
                s.verdict,
                s.agree,
                s.spec_seconds,
                s.monitor_seconds,
                s.oracle_steps,
                s.memo_hits,
                s.cached_sequences,
                s.specialized_checks,
                s.fallback_checks,
                if i + 1 < samples.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"large\": [\n");
        for (i, s) in large.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"kind\": \"{}\", \"ops\": {}, \
                 \"specialized_seconds\": {:.6}, \"wing_gong_seconds\": {:.6}, \
                 \"speedup\": {:.2}, \"agree\": {}, \"specialized_decided\": {}}}{}\n",
                kind_name(s.kind),
                s.ops,
                s.specialized_seconds,
                s.wing_gong_seconds,
                s.wing_gong_seconds / s.specialized_seconds.max(1e-9),
                s.agree,
                s.specialized_decided,
                if i + 1 < large.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"ambiguous\": [\n");
        for (i, s) in ambiguous.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"kind\": \"{}\", \"ops\": {}, \"agree\": {}, \"fell_back\": {}}}{}\n",
                kind_name(s.kind),
                s.ops,
                s.agree,
                s.fell_back,
                if i + 1 < ambiguous.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        match std::fs::write(&out_path, &out) {
            Ok(()) => println!("wrote {out_path}"),
            Err(e) => {
                eprintln!("failed to write {out_path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if disagreements > 0 {
        eprintln!("{disagreements} class(es) disagreed between the backends");
        std::process::exit(1);
    }
    if !large_ok {
        eprintln!("scaling comparison found a disagreement or a missed fast path");
        std::process::exit(1);
    }
}
