//! Phase-2 parallel-scaling benchmark: serial depth-first exploration
//! versus the work-stealing parallel mode ([`CheckOptions::with_workers`])
//! on exhaustive 2-thread matrices, with partial-order reduction
//! ([`CheckOptions::with_por`]) on and off.
//!
//! ```text
//! cargo run --release -p lineup-bench --bin phase2 [--json] [--out PATH]
//!     [--workers 1,2,4] [--repeat N] [--probe N] [--por on|off|both]
//!     [--symmetry on|off|both] [--backend fibers|os|both] [--smoke]
//! ```
//!
//! Reports, per workload, POR mode, symmetry mode, execution backend,
//! and worker count, the number of executions explored, how many
//! schedules were pruned by sleep sets and by thread-symmetry sibling
//! pruning, the phase-2 canonical verdict-cache hits, the steal
//! accounting (subtrees split off, steals claimed, lazy prefix replays,
//! idle parks), the wall time (best of `--repeat` attempts), the
//! throughput in runs/second, and the speedup over the 1-worker
//! (serial) baseline *of the same POR mode, symmetry mode, and
//! backend*. Both benchmark matrices are thread-symmetric, so the
//! symmetry-on rows show the reduction stacking on top of POR.
//!
//! `--probe` sets [`CheckOptions::parallel_probe_runs`] for the
//! multi-worker rows. The default is 4096, larger than the library
//! default of 256: on a small host, spaces of a few thousand runs are
//! still dominated by worker startup and steal coordination, and the
//! bench's job is to show the machinery breaking even where it actually
//! engages. Rows the probe answered serially report `probe_skips = 1`;
//! pass `--probe 0` to disable the probe and measure the machinery on
//! every row regardless of size.
//!
//! `--smoke` is the CI guard: it forces `--repeat 1`, prepends the
//! 1-worker baseline to `--workers` when missing, and exits nonzero if
//! any multi-worker row's `speedup_vs_1_worker` falls below 0.9 — the
//! work-stealing machinery must never cost more than ~10% over serial,
//! even on a single-core host where it cannot win.
//!
//! `--json` additionally writes the measurements to `BENCH_phase2.json`
//! (or `--out PATH`). The JSON records `cpu_cores`: the speedup is
//! bounded by the physical parallelism of the machine — on a single-core
//! host the partitioned exploration can only break even. On targets
//! without fiber support the `fibers` rows degrade to OS threads (see
//! [`Backend::effective`]).
//!
//! Every multi-worker sample is checked against the steal-accounting
//! invariants (`steal_replays <= steals <= splits`, zero frontier
//! replays), and POR-off rows are checked for repeatability: work
//! stealing partitions the schedule tree exactly, so the deterministic
//! counters (runs, prunes, steps) must agree across every repeat
//! regardless of steal timing.

use std::time::Instant;

use lineup::doc_support::CounterTarget;
use lineup::{
    check_against_spec, synthesize_spec, Backend, CheckOptions, Invocation, ObservationSet,
    PhaseStats, TestMatrix, TestTarget,
};
use lineup_bench::{arg_flag, arg_num, arg_value, fmt_duration, TextTable};
use lineup_collections::concurrent_queue::ConcurrentQueueTarget;
use lineup_collections::Variant;

struct Sample {
    workload: &'static str,
    por: bool,
    symmetry: bool,
    backend: Backend,
    workers: usize,
    runs: u64,
    sleep_prunes: u64,
    symmetry_prunes: u64,
    cache_hits: u64,
    steps: u64,
    fast_path_steps: u64,
    handoffs: u64,
    splits: u64,
    steals: u64,
    steal_replays: u64,
    idle_parks: u64,
    probe_skips: u64,
    wall_seconds: f64,
    runs_per_sec: f64,
    steps_per_sec: f64,
    speedup: f64,
}

/// One timed phase-2 exploration; exhaustive (no preemption bound, no
/// stop-at-first) so every worker count explores the same schedule tree.
/// Asserts the steal-accounting invariants on every attempt and, with POR
/// off, that the deterministic counters repeat exactly across attempts.
#[allow(clippy::too_many_arguments)]
fn measure<T: TestTarget>(
    target: &T,
    matrix: &TestMatrix,
    spec: &ObservationSet,
    por: bool,
    symmetry: bool,
    backend: Backend,
    workers: usize,
    probe: u64,
    repeat: usize,
) -> (PhaseStats, f64) {
    let mut opts = CheckOptions::new()
        .with_preemption_bound(None)
        .with_por(por)
        .with_symmetry(symmetry)
        .with_backend(backend)
        .collect_all_violations();
    if workers > 1 {
        opts = opts.with_workers(workers).with_parallel_probe_runs(probe);
    }
    let mut best = f64::INFINITY;
    let mut kept: Option<PhaseStats> = None;
    for _ in 0..repeat.max(1) {
        let t0 = Instant::now();
        let (violations, stats) = check_against_spec(target, matrix, spec, &opts);
        let wall = t0.elapsed().as_secs_f64();
        assert!(violations.is_empty(), "benchmark workloads pass");
        assert_eq!(
            stats.frontier_replays, 0,
            "work stealing never replays prefixes eagerly"
        );
        assert!(
            stats.steal_replays <= stats.steals,
            "lazy replays only for claimed steals ({} <= {})",
            stats.steal_replays,
            stats.steals
        );
        assert!(
            stats.steals <= stats.splits,
            "every claimed steal was split off first ({} <= {})",
            stats.steals,
            stats.splits
        );
        if let Some(prev) = &kept {
            if !por {
                // POR off, the steal partition is exact: whatever the
                // steal timing, every schedule runs exactly once, so the
                // exploration counters must repeat bit for bit (symmetry
                // masks are schedule-independent, so they don't perturb
                // this either).
                assert_eq!(prev.runs, stats.runs, "repeatability: runs");
                assert_eq!(prev.total_steps, stats.total_steps, "repeatability: steps");
                assert_eq!(
                    prev.sleep_prunes, stats.sleep_prunes,
                    "repeatability: prunes"
                );
                assert_eq!(
                    prev.symmetry_prunes, stats.symmetry_prunes,
                    "repeatability: symmetry prunes"
                );
            }
        }
        kept = Some(stats);
        best = best.min(wall);
    }
    (kept.expect("at least one attempt"), best)
}

/// Runs one workload over every (POR mode, backend, worker count)
/// combination, appending a sample per combination with the speedup
/// computed against the first worker count of the same POR mode and
/// backend.
#[allow(clippy::too_many_arguments)]
fn run_workload<T: TestTarget>(
    samples: &mut Vec<Sample>,
    workload: &'static str,
    target: &T,
    matrix: &TestMatrix,
    por_modes: &[bool],
    sym_modes: &[bool],
    backends: &[Backend],
    workers_list: &[usize],
    probe: u64,
    repeat: usize,
) {
    let (spec, _, _) = synthesize_spec(target, matrix);
    for &por in por_modes {
        for &symmetry in sym_modes {
            for &backend in backends {
                let mut baseline = None;
                for &w in workers_list {
                    let (stats, wall) = measure(
                        target, matrix, &spec, por, symmetry, backend, w, probe, repeat,
                    );
                    let base = *baseline.get_or_insert(wall);
                    samples.push(Sample {
                        workload,
                        por,
                        symmetry,
                        backend,
                        workers: w,
                        runs: stats.runs,
                        sleep_prunes: stats.sleep_prunes,
                        symmetry_prunes: stats.symmetry_prunes,
                        cache_hits: stats.phase2_cache_hits,
                        steps: stats.total_steps,
                        fast_path_steps: stats.fast_path_steps,
                        handoffs: stats.handoffs,
                        splits: stats.splits,
                        steals: stats.steals,
                        steal_replays: stats.steal_replays,
                        idle_parks: stats.idle_parks,
                        probe_skips: stats.probe_skips,
                        wall_seconds: wall,
                        runs_per_sec: stats.runs as f64 / wall,
                        steps_per_sec: stats.total_steps as f64 / wall,
                        speedup: base / wall,
                    });
                }
            }
        }
    }
}

/// Short stable name for a backend, used in the table and the JSON.
fn backend_name(b: Backend) -> &'static str {
    match b {
        Backend::Fibers => "fibers",
        Backend::OsThreads => "os",
    }
}

fn main() {
    let json = arg_flag("--json");
    let smoke = arg_flag("--smoke");
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_phase2.json".into());
    let repeat: usize = if smoke { 1 } else { arg_num("--repeat", 3) };
    let probe: u64 = arg_num("--probe", 4096);
    let mut workers_list: Vec<usize> = arg_value("--workers")
        .map(|s| s.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .unwrap_or_else(|| vec![1, 2, 4]);
    if smoke && workers_list.first() != Some(&1) {
        // The smoke guard compares against the serial baseline, so make
        // sure there is one even when invoked as `--workers 4 --smoke`.
        workers_list.insert(0, 1);
    }
    let por_modes: Vec<bool> = match arg_value("--por").as_deref() {
        Some("on") => vec![true],
        Some("off") => vec![false],
        None | Some("both") => vec![false, true],
        Some(other) => {
            eprintln!("--por must be on, off, or both (got {other})");
            std::process::exit(2);
        }
    };
    let sym_modes: Vec<bool> = match arg_value("--symmetry").as_deref() {
        Some("on") => vec![true],
        Some("off") => vec![false],
        None | Some("both") => vec![false, true],
        Some(other) => {
            eprintln!("--symmetry must be on, off, or both (got {other})");
            std::process::exit(2);
        }
    };
    let backends: Vec<Backend> = match arg_value("--backend").as_deref() {
        Some("fibers") => vec![Backend::Fibers],
        Some("os") => vec![Backend::OsThreads],
        None | Some("both") => vec![Backend::Fibers, Backend::OsThreads],
        Some(other) => {
            eprintln!("--backend must be fibers, os, or both (got {other})");
            std::process::exit(2);
        }
    };

    let counter_matrix = TestMatrix::from_columns(vec![
        vec![Invocation::new("inc"), Invocation::new("get")],
        vec![Invocation::new("inc"), Invocation::new("get")],
    ]);
    let queue_matrix = TestMatrix::from_columns(vec![
        vec![
            Invocation::with_int("Enqueue", 10),
            Invocation::new("TryDequeue"),
        ],
        vec![
            Invocation::with_int("Enqueue", 20),
            Invocation::new("TryDequeue"),
        ],
    ]);
    let queue = ConcurrentQueueTarget {
        variant: Variant::Fixed,
    };

    let mut samples: Vec<Sample> = Vec::new();
    run_workload(
        &mut samples,
        "counter_2x2_exhaustive",
        &CounterTarget,
        &counter_matrix,
        &por_modes,
        &sym_modes,
        &backends,
        &workers_list,
        probe,
        repeat,
    );
    run_workload(
        &mut samples,
        "queue_2x2_exhaustive",
        &queue,
        &queue_matrix,
        &por_modes,
        &sym_modes,
        &backends,
        &workers_list,
        probe,
        repeat,
    );

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut table = TextTable::new(&[
        "workload",
        "por",
        "sym",
        "backend",
        "workers",
        "runs",
        "prunes",
        "sym prunes",
        "cache hits",
        "steps",
        "splits",
        "steals",
        "replays",
        "parks",
        "probe",
        "wall",
        "runs/sec",
        "speedup",
    ]);
    for s in &samples {
        table.row(vec![
            s.workload.to_string(),
            if s.por { "on" } else { "off" }.to_string(),
            if s.symmetry { "on" } else { "off" }.to_string(),
            backend_name(s.backend).to_string(),
            s.workers.to_string(),
            s.runs.to_string(),
            s.sleep_prunes.to_string(),
            s.symmetry_prunes.to_string(),
            s.cache_hits.to_string(),
            s.steps.to_string(),
            s.splits.to_string(),
            s.steals.to_string(),
            s.steal_replays.to_string(),
            s.idle_parks.to_string(),
            s.probe_skips.to_string(),
            fmt_duration(std::time::Duration::from_secs_f64(s.wall_seconds)),
            format!("{:.0}", s.runs_per_sec),
            format!("{:.2}x", s.speedup),
        ]);
    }
    println!("Phase-2 parallel scaling (best of {repeat}, probe {probe}, {cores} core(s))");
    println!("{}", table.render());

    if json {
        let mut out = String::from("{\n");
        out.push_str("  \"benchmark\": \"phase2-parallel-scaling\",\n");
        out.push_str(&format!("  \"cpu_cores\": {cores},\n"));
        out.push_str(&format!("  \"repeat\": {repeat},\n"));
        out.push_str(&format!("  \"parallel_probe_runs\": {probe},\n"));
        out.push_str("  \"results\": [\n");
        for (i, s) in samples.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"workload\": \"{}\", \"por\": {}, \"symmetry\": {}, \
                 \"backend\": \"{}\", \"workers\": {}, \
                 \"runs\": {}, \
                 \"sleep_prunes\": {}, \"symmetry_prunes\": {}, \
                 \"phase2_cache_hits\": {}, \"steps\": {}, \
                 \"fast_path_steps\": {}, \"handoffs\": {}, \
                 \"splits\": {}, \"steals\": {}, \"steal_replays\": {}, \
                 \"idle_parks\": {}, \"probe_skips\": {}, \
                 \"frontier_replays\": 0, \"wall_seconds\": {:.6}, \
                 \"runs_per_sec\": {:.1}, \"steps_per_sec\": {:.1}, \
                 \"speedup_vs_1_worker\": {:.3}}}{}\n",
                s.workload,
                s.por,
                s.symmetry,
                backend_name(s.backend),
                s.workers,
                s.runs,
                s.sleep_prunes,
                s.symmetry_prunes,
                s.cache_hits,
                s.steps,
                s.fast_path_steps,
                s.handoffs,
                s.splits,
                s.steals,
                s.steal_replays,
                s.idle_parks,
                s.probe_skips,
                s.wall_seconds,
                s.runs_per_sec,
                s.steps_per_sec,
                s.speedup,
                if i + 1 < samples.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        match std::fs::write(&out_path, &out) {
            Ok(()) => println!("wrote {out_path}"),
            Err(e) => {
                eprintln!("failed to write {out_path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if smoke {
        let mut failed = false;
        for s in samples.iter().filter(|s| s.workers > 1) {
            if s.speedup < 0.9 {
                eprintln!(
                    "smoke: {} por={} sym={} backend={} workers={} speedup {:.3} < 0.9",
                    s.workload,
                    if s.por { "on" } else { "off" },
                    if s.symmetry { "on" } else { "off" },
                    backend_name(s.backend),
                    s.workers,
                    s.speedup
                );
                failed = true;
            }
        }
        if failed {
            eprintln!("smoke: work-stealing overhead exceeded the 10% budget");
            std::process::exit(1);
        }
        println!("smoke: all multi-worker rows within the 10% overhead budget");
    }
}
