//! Phase-2 parallel-scaling benchmark: serial depth-first exploration
//! versus the prefix-partitioned parallel mode
//! ([`CheckOptions::with_workers`]) on exhaustive 2-thread matrices, with
//! partial-order reduction ([`CheckOptions::with_por`]) on and off.
//!
//! ```text
//! cargo run --release -p lineup-bench --bin phase2 [--json] [--out PATH]
//!     [--workers 1,2,4] [--repeat N] [--depth D] [--por on|off|both]
//!     [--backend fibers|os|both]
//! ```
//!
//! Reports, per workload, POR mode, execution backend, and worker count,
//! the number of executions explored, how many of those were sleep-set
//! prunes, the wall time (best of `--repeat` attempts), the throughput in
//! runs/second, and the speedup over the 1-worker (serial) baseline *of
//! the same POR mode and backend*. `--json` additionally writes the
//! measurements to `BENCH_phase2.json` (or `--out PATH`). The JSON records
//! `cpu_cores`: the speedup is bounded by the physical parallelism of the
//! machine — on a single-core host the partitioned exploration can only
//! break even. On targets without fiber support the `fibers` rows degrade
//! to OS threads (see [`Backend::effective`]).

use std::time::Instant;

use lineup::doc_support::CounterTarget;
use lineup::{
    check_against_spec, synthesize_spec, Backend, CheckOptions, Invocation, ObservationSet,
    PhaseStats, TestMatrix, TestTarget,
};
use lineup_bench::{arg_flag, arg_num, arg_value, fmt_duration, TextTable};
use lineup_collections::concurrent_queue::ConcurrentQueueTarget;
use lineup_collections::Variant;

struct Sample {
    workload: &'static str,
    por: bool,
    backend: Backend,
    workers: usize,
    runs: u64,
    sleep_prunes: u64,
    steps: u64,
    fast_path_steps: u64,
    handoffs: u64,
    frontier_replays: u64,
    wall_seconds: f64,
    runs_per_sec: f64,
    steps_per_sec: f64,
    speedup: f64,
}

/// One timed phase-2 exploration; exhaustive (no preemption bound, no
/// stop-at-first) so every worker count explores the same schedule tree.
#[allow(clippy::too_many_arguments)]
fn measure<T: TestTarget>(
    target: &T,
    matrix: &TestMatrix,
    spec: &ObservationSet,
    por: bool,
    backend: Backend,
    workers: usize,
    split_depth: usize,
    repeat: usize,
) -> (PhaseStats, f64) {
    let mut opts = CheckOptions::new()
        .with_preemption_bound(None)
        .with_por(por)
        .with_backend(backend)
        .collect_all_violations();
    if workers > 1 {
        // Probe disabled: the multi-worker rows measure the frontier
        // machinery itself, so the tiny-state-space auto-serial fallback
        // must not quietly turn them into serial runs.
        opts = opts
            .with_workers(workers)
            .with_split_depth(split_depth)
            .with_parallel_probe_runs(0);
    }
    let mut best = f64::INFINITY;
    let mut kept = PhaseStats::default();
    for _ in 0..repeat.max(1) {
        let t0 = Instant::now();
        let (violations, stats) = check_against_spec(target, matrix, spec, &opts);
        let wall = t0.elapsed().as_secs_f64();
        assert!(violations.is_empty(), "benchmark workloads pass");
        kept = stats;
        best = best.min(wall);
    }
    (kept, best)
}

/// Runs one workload over every (POR mode, worker count) combination,
/// appending a sample per combination with the speedup computed against
/// the first worker count of the same POR mode.
#[allow(clippy::too_many_arguments)]
fn run_workload<T: TestTarget>(
    samples: &mut Vec<Sample>,
    workload: &'static str,
    target: &T,
    matrix: &TestMatrix,
    por_modes: &[bool],
    backends: &[Backend],
    workers_list: &[usize],
    split_depth: usize,
    repeat: usize,
) {
    let (spec, _, _) = synthesize_spec(target, matrix);
    for &por in por_modes {
        for &backend in backends {
            let mut baseline = None;
            for &w in workers_list {
                let (stats, wall) =
                    measure(target, matrix, &spec, por, backend, w, split_depth, repeat);
                let base = *baseline.get_or_insert(wall);
                samples.push(Sample {
                    workload,
                    por,
                    backend,
                    workers: w,
                    runs: stats.runs,
                    sleep_prunes: stats.sleep_prunes,
                    steps: stats.total_steps,
                    fast_path_steps: stats.fast_path_steps,
                    handoffs: stats.handoffs,
                    frontier_replays: stats.frontier_replays,
                    wall_seconds: wall,
                    runs_per_sec: stats.runs as f64 / wall,
                    steps_per_sec: stats.total_steps as f64 / wall,
                    speedup: base / wall,
                });
            }
        }
    }
}

/// Short stable name for a backend, used in the table and the JSON.
fn backend_name(b: Backend) -> &'static str {
    match b {
        Backend::Fibers => "fibers",
        Backend::OsThreads => "os",
    }
}

fn main() {
    let json = arg_flag("--json");
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_phase2.json".into());
    let repeat: usize = arg_num("--repeat", 3);
    let split_depth: usize = arg_num("--depth", 4);
    let workers_list: Vec<usize> = arg_value("--workers")
        .map(|s| s.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .unwrap_or_else(|| vec![1, 2, 4]);
    let por_modes: Vec<bool> = match arg_value("--por").as_deref() {
        Some("on") => vec![true],
        Some("off") => vec![false],
        None | Some("both") => vec![false, true],
        Some(other) => {
            eprintln!("--por must be on, off, or both (got {other})");
            std::process::exit(2);
        }
    };
    let backends: Vec<Backend> = match arg_value("--backend").as_deref() {
        Some("fibers") => vec![Backend::Fibers],
        Some("os") => vec![Backend::OsThreads],
        None | Some("both") => vec![Backend::Fibers, Backend::OsThreads],
        Some(other) => {
            eprintln!("--backend must be fibers, os, or both (got {other})");
            std::process::exit(2);
        }
    };

    let counter_matrix = TestMatrix::from_columns(vec![
        vec![Invocation::new("inc"), Invocation::new("get")],
        vec![Invocation::new("inc"), Invocation::new("get")],
    ]);
    let queue_matrix = TestMatrix::from_columns(vec![
        vec![
            Invocation::with_int("Enqueue", 10),
            Invocation::new("TryDequeue"),
        ],
        vec![
            Invocation::with_int("Enqueue", 20),
            Invocation::new("TryDequeue"),
        ],
    ]);
    let queue = ConcurrentQueueTarget {
        variant: Variant::Fixed,
    };

    let mut samples: Vec<Sample> = Vec::new();
    run_workload(
        &mut samples,
        "counter_2x2_exhaustive",
        &CounterTarget,
        &counter_matrix,
        &por_modes,
        &backends,
        &workers_list,
        split_depth,
        repeat,
    );
    run_workload(
        &mut samples,
        "queue_2x2_exhaustive",
        &queue,
        &queue_matrix,
        &por_modes,
        &backends,
        &workers_list,
        split_depth,
        repeat,
    );

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut table = TextTable::new(&[
        "workload",
        "por",
        "backend",
        "workers",
        "runs",
        "frontier",
        "prunes",
        "steps",
        "fast",
        "handoffs",
        "wall",
        "runs/sec",
        "steps/sec",
        "speedup",
    ]);
    for s in &samples {
        table.row(vec![
            s.workload.to_string(),
            if s.por { "on" } else { "off" }.to_string(),
            backend_name(s.backend).to_string(),
            s.workers.to_string(),
            s.runs.to_string(),
            s.frontier_replays.to_string(),
            s.sleep_prunes.to_string(),
            s.steps.to_string(),
            s.fast_path_steps.to_string(),
            s.handoffs.to_string(),
            fmt_duration(std::time::Duration::from_secs_f64(s.wall_seconds)),
            format!("{:.0}", s.runs_per_sec),
            format!("{:.0}", s.steps_per_sec),
            format!("{:.2}x", s.speedup),
        ]);
    }
    println!(
        "Phase-2 parallel scaling (best of {repeat}, split depth {split_depth}, {cores} core(s))"
    );
    println!("{}", table.render());

    if json {
        let mut out = String::from("{\n");
        out.push_str("  \"benchmark\": \"phase2-parallel-scaling\",\n");
        out.push_str(&format!("  \"cpu_cores\": {cores},\n"));
        out.push_str(&format!("  \"repeat\": {repeat},\n"));
        out.push_str(&format!("  \"split_depth\": {split_depth},\n"));
        out.push_str("  \"results\": [\n");
        for (i, s) in samples.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"workload\": \"{}\", \"por\": {}, \"backend\": \"{}\", \"workers\": {}, \
                 \"runs\": {}, \
                 \"frontier_replays\": {}, \"sleep_prunes\": {}, \"steps\": {}, \
                 \"fast_path_steps\": {}, \"handoffs\": {}, \"wall_seconds\": {:.6}, \
                 \"runs_per_sec\": {:.1}, \"steps_per_sec\": {:.1}, \
                 \"speedup_vs_1_worker\": {:.3}}}{}\n",
                s.workload,
                s.por,
                backend_name(s.backend),
                s.workers,
                s.runs,
                s.frontier_replays,
                s.sleep_prunes,
                s.steps,
                s.fast_path_steps,
                s.handoffs,
                s.wall_seconds,
                s.runs_per_sec,
                s.steps_per_sec,
                s.speedup,
                if i + 1 < samples.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        match std::fs::write(&out_path, &out) {
            Ok(()) => println!("wrote {out_path}"),
            Err(e) => {
                eprintln!("failed to write {out_path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
