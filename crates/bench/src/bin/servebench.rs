//! Online-monitoring service throughput benchmark: N loopback TCP
//! clients stream pre-encoded histories into an in-process
//! `lineup-server` engine, which checks every object shard while the
//! windowed GC keeps memory bounded.
//!
//! ```text
//! cargo run --release -p lineup-bench --bin servebench
//!     [--clients N] [--ops N] [--block N] [--window N] [--smoke]
//!     [--out PATH]
//! ```
//!
//! Each client owns one object id and replays a pre-encoded block —
//! register, `--block` serial enqueue/dequeue op pairs with distinct
//! values, object end — until its `--ops` quota is met; re-registering
//! the same id starts a fresh shard generation and folds the finished
//! counters. Values alternate insert/remove, so every return is a
//! quiescent point and windows close (and are freed) as soon as they
//! reach the target size. Reports ingested ops/second across the whole
//! service (goal: >= 1M/s on 4 clients) plus the GC evidence — windows
//! closed, peak buffered window, buffered ops after drain — and writes
//! `BENCH_server.json` (or `--out PATH`).

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use lineup::{AdtKind, Value};
use lineup_bench::{arg_flag, arg_num, arg_value, fmt_duration};
use lineup_server::{EngineConfig, Server, ServerConfig, ShardConfig};
use lineup_wire::{encode_record, Record, VERSION};

/// The ingest-rate goal from the issue: one million ops per second
/// sustained across at least four loopback clients.
const GOAL_OPS_PER_SEC: f64 = 1_000_000.0;

/// Pre-encodes the per-connection handshake.
fn hello_bytes() -> Vec<u8> {
    let mut out = Vec::new();
    encode_record(&Record::Hello { version: VERSION }, &mut out);
    out
}

/// Pre-encodes one replayable block for `object`: register, `ops`
/// alternating `Enqueue(v)` / `TryDequeue -> Some(v)` pairs on one
/// thread (values distinct within the block, state empty at the end,
/// so every window is closable), object end.
fn block_bytes(object: u64, ops: u64) -> Vec<u8> {
    let mut out = Vec::new();
    encode_record(
        &Record::ObjectRegister {
            object,
            kind: Some(AdtKind::Queue),
            threads: 1,
        },
        &mut out,
    );
    for v in 0..ops as i64 / 2 {
        encode_record(
            &Record::Call {
                object,
                thread: 0,
                ts: 0,
                name: "Enqueue",
                args: vec![Value::Int(v)],
            },
            &mut out,
        );
        encode_record(
            &Record::Return {
                object,
                thread: 0,
                ts: 0,
                value: Value::Unit,
            },
            &mut out,
        );
        encode_record(
            &Record::Call {
                object,
                thread: 0,
                ts: 0,
                name: "TryDequeue",
                args: vec![],
            },
            &mut out,
        );
        encode_record(
            &Record::Return {
                object,
                thread: 0,
                ts: 0,
                value: Value::some(Value::int(v)),
            },
            &mut out,
        );
    }
    encode_record(
        &Record::ObjectEnd {
            object,
            stuck: false,
        },
        &mut out,
    );
    out
}

fn main() {
    let smoke = arg_flag("--smoke");
    let clients: usize = arg_num("--clients", 4);
    let block_ops: u64 = arg_num("--block", 8192);
    let ops_per_client: u64 = arg_num("--ops", if smoke { 40_000 } else { 2_000_000 });
    let window: usize = arg_num("--window", 1024);
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_server.json".into());
    assert!(clients >= 1, "--clients must be at least 1");
    assert!(block_ops >= 2, "--block must be at least 2");

    let server = Server::spawn(ServerConfig {
        tcp: Some("127.0.0.1:0".into()),
        engine: EngineConfig {
            shard: ShardConfig {
                window_target: window,
            },
        },
        ..ServerConfig::default()
    })
    .expect("bind loopback listener");
    let addr = server.tcp_addr().expect("tcp address");
    let engine = Arc::clone(server.engine());

    let hello = Arc::new(hello_bytes());
    let blocks = ops_per_client.div_ceil(block_ops);

    let t0 = Instant::now();
    let mut workers = Vec::new();
    for client in 0..clients {
        let hello = Arc::clone(&hello);
        // Object ids are per-client, so shards never contend across
        // connections (P-compositional partitioning).
        let block = Arc::new(block_bytes(client as u64 + 1, block_ops));
        workers.push(
            thread::Builder::new()
                .name(format!("servebench-{client}"))
                .spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("connect loopback");
                    stream.set_nodelay(true).expect("nodelay");
                    stream.write_all(&hello).expect("write hello");
                    for _ in 0..blocks {
                        stream.write_all(&block).expect("write block");
                    }
                })
                .expect("spawn client"),
        );
    }
    for w in workers {
        w.join().expect("client thread");
    }
    // Clients have closed, but the loopback socket buffers may still
    // hold data and late connections may not even be accepted yet: the
    // stream is only fully ingested once every object has been retired.
    // (Shutting down earlier would stop the accept loop mid-drain.)
    let expect_objects = clients as u64 * blocks;
    let deadline = Instant::now() + std::time::Duration::from_secs(600);
    while engine.snapshot().objects_finished < expect_objects {
        if Instant::now() > deadline {
            eprintln!("FAIL: drain timed out");
            std::process::exit(1);
        }
        thread::sleep(std::time::Duration::from_millis(2));
    }
    let wall = t0.elapsed();
    engine.request_shutdown();
    server.join();

    let snap = engine.snapshot();
    let secs = wall.as_secs_f64().max(1e-9);
    let ops_per_sec = snap.counters.ops as f64 / secs;
    let goal_met = ops_per_sec >= GOAL_OPS_PER_SEC && clients >= 4;

    println!(
        "servebench: {clients} client(s) x {ops_per_client} ops \
         (block {block_ops}, window {window})"
    );
    println!(
        "  ingested {} ops ({} events) in {} -> {:.0} ops/sec{}",
        snap.counters.ops,
        snap.counters.events,
        fmt_duration(wall),
        ops_per_sec,
        if goal_met { "  [>= 1M goal]" } else { "" }
    );
    println!(
        "  gc: windows closed {} (peak buffered window {} ops), \
         buffered after drain {}",
        snap.counters.windows_closed, snap.counters.peak_window_ops, snap.buffered_ops
    );
    println!(
        "  checks {} (specialized {}, fallback {}), violations {}",
        snap.counters.checks,
        snap.counters.paths.specialized_checks,
        snap.counters.paths.fallback_checks,
        snap.counters.violations
    );

    let json = format!(
        "{{\n  \"benchmark\": \"servebench\",\n  \"clients\": {},\n  \
         \"ops_per_client\": {},\n  \"block_ops\": {},\n  \"window\": {},\n  \
         \"ops\": {},\n  \"events\": {},\n  \"wall_seconds\": {:.6},\n  \
         \"ops_per_sec\": {:.1},\n  \"goal_ops_per_sec\": {:.0},\n  \
         \"goal_met\": {},\n  \"windows_closed\": {},\n  \
         \"windows_held\": {},\n  \"peak_window_ops\": {},\n  \
         \"buffered_ops_after_drain\": {},\n  \"checks\": {},\n  \
         \"specialized_checks\": {},\n  \"fallback_checks\": {},\n  \
         \"violations\": {},\n  \"objects_finished\": {},\n  \
         \"protocol_errors\": {}\n}}\n",
        clients,
        ops_per_client,
        block_ops,
        window,
        snap.counters.ops,
        snap.counters.events,
        secs,
        ops_per_sec,
        GOAL_OPS_PER_SEC,
        goal_met,
        snap.counters.windows_closed,
        snap.counters.windows_held,
        snap.counters.peak_window_ops,
        snap.buffered_ops,
        snap.counters.checks,
        snap.counters.paths.specialized_checks,
        snap.counters.paths.fallback_checks,
        snap.counters.violations,
        snap.objects_finished,
        snap.protocol_errors,
    );
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => {
            eprintln!("failed to write {out_path}: {e}");
            std::process::exit(1);
        }
    }

    // Correctness gates: every streamed history is linearizable, every
    // object must have been checked and retired, and the GC must have
    // freed everything once the streams drained.
    let mut failed = false;
    if snap.counters.violations > 0 {
        eprintln!("FAIL: {} false violations", snap.counters.violations);
        failed = true;
    }
    if snap.protocol_errors > 0 {
        eprintln!("FAIL: {} protocol errors", snap.protocol_errors);
        failed = true;
    }
    if snap.objects_finished != expect_objects {
        eprintln!(
            "FAIL: {} objects finished, expected {expect_objects}",
            snap.objects_finished
        );
        failed = true;
    }
    if snap.buffered_ops != 0 {
        eprintln!("FAIL: {} ops still buffered after drain", snap.buffered_ops);
        failed = true;
    }
    // Bounded memory: the peak buffered window must stay near the
    // target, not scale with the stream length.
    let bound = (window as u64).saturating_mul(4).max(block_ops.min(64));
    if snap.counters.peak_window_ops as u64 > bound {
        eprintln!(
            "FAIL: peak buffered window {} ops exceeds bound {bound}",
            snap.counters.peak_window_ops
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
