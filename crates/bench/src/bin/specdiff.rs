//! Specification diffing: compares the sequential specifications
//! synthesized from two versions of a class — the workflow behind the
//! paper's observation that "in some cases the developers realized that a
//! method is nondeterministic only after the fact was detected by
//! Line-Up, and updated the documentation" (§1): behavioral changes
//! between a preview and a release show up as serial histories gained or
//! lost, even where both versions pass their own self-checks.
//!
//! ```text
//! cargo run --release -p lineup-bench --bin specdiff [--class SUBSTR]
//! ```

use lineup_bench::arg_value;
use lineup_collections::{all_classes, Variant};

fn main() {
    let class_filter = arg_value("--class");
    let classes = all_classes();

    let mut compared = 0;
    for fixed in classes.iter().filter(|e| e.variant == Variant::Fixed) {
        if let Some(f) = class_filter.as_deref() {
            if !fixed.name.to_lowercase().contains(&f.to_lowercase()) {
                continue;
            }
        }
        let pre_name = format!("{} (Pre)", fixed.name);
        let Some(pre) = classes.iter().find(|e| e.name == pre_name) else {
            continue;
        };
        let Some(matrix) = pre.regression_matrix() else {
            continue;
        };
        compared += 1;

        let (spec_fixed, _, _) = fixed.target().synthesize_spec(&matrix);
        let (spec_pre, _, _) = pre.target().synthesize_spec(&matrix);
        let (only_fixed, only_pre) = spec_fixed.diff(&spec_pre);

        println!("=== {} vs {} ===", fixed.name, pre.name);
        println!("Test:\n{matrix}");
        if only_fixed.is_empty() && only_pre.is_empty() {
            println!(
                "Serial specifications are identical ({} histories) — the root cause \
                 {:?} is invisible sequentially and only phase 2 can find it.\n",
                spec_fixed.len(),
                pre.expected_root_causes
            );
        } else {
            if !only_fixed.is_empty() {
                println!("Serial behaviors only in the fixed version:");
                for h in &only_fixed {
                    println!("  {h}");
                }
            }
            if !only_pre.is_empty() {
                println!("Serial behaviors only in the preview version:");
                for h in &only_pre {
                    println!("  {h}");
                }
            }
            println!();
        }
    }
    println!(
        "{compared} class pairs compared. An empty diff is the common case: the \
         paper's root causes are concurrency bugs — serial executions agree, \
         which is exactly why phase 1's synthesized specification is a sound \
         oracle for phase 2."
    );
}
