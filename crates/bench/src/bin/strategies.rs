//! Search-strategy ablation: how many phase-2 executions each strategy
//! needs to find a known violation.
//!
//! Compares exhaustive DFS (the paper's configuration), unbounded DFS
//! with partial-order reduction on and off, a uniform random walk, and
//! PCT (probabilistic concurrency testing — the Line-Up authors'
//! follow-up, ASPLOS 2010) on the Fig. 1 queue bug and the Fig. 9
//! ManualResetEvent bug.
//!
//! ```text
//! cargo run --release -p lineup-bench --bin strategies [--trials N]
//!     [--budget N] [--workers N] [--por on|off|both]
//! ```

use std::ops::ControlFlow;

use lineup::{
    check_against_spec, explore_matrix, find_witness, synthesize_spec, CheckOptions, TestMatrix,
    WitnessQuery,
};
use lineup_bench::{arg_num, arg_value, TextTable};
use lineup_collections::concurrent_queue::{fig1_matrix, ConcurrentQueueTarget};
use lineup_collections::manual_reset_event::{fig9_matrix, ManualResetEventTarget};
use lineup_collections::Variant;
use lineup_sched::{Config, RunOutcome};

/// Explores `matrix` with the given scheduler config and returns the
/// number of runs until the first linearizability violation (checked
/// against the synthesized spec), or None if the budget ran out.
fn runs_to_violation<T: lineup::TestTarget>(
    target: &T,
    matrix: &TestMatrix,
    config: &Config,
) -> Option<u64> {
    let (spec, _, _) = synthesize_spec(target, matrix);
    let index = spec.index();
    // Tracked by the visitor, not `stats.stopped_early`: the latter is
    // also set when the run budget is exhausted without a violation.
    let mut found = false;
    let stats = explore_matrix(target, matrix, config, |run| {
        let violated = match run.outcome {
            RunOutcome::Complete => {
                let q = WitnessQuery::for_full(&run.history);
                find_witness(&index, &q).is_none()
            }
            RunOutcome::Deadlock | RunOutcome::Livelock | RunOutcome::StuckSerial => {
                run.history.pending_ops().into_iter().any(|e| {
                    let q = WitnessQuery::for_stuck(&run.history, e);
                    find_witness(&index, &q).is_none()
                })
            }
            // A sleep-set prune is a redundant schedule, never a violation.
            RunOutcome::Pruned => false,
            _ => true,
        };
        if violated {
            found = true;
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    found.then_some(stats.runs)
}

/// Runs until the first violation with the work-stealing parallel
/// phase 2 ([`CheckOptions::with_workers`]): the reported count includes
/// every worker's runs up to cancellation, so it measures total work
/// rather than search-order position. (Both bugs here fall under the
/// serial-probe threshold, so in practice the counts match serial DFS.)
fn parallel_runs_to_violation<T: lineup::TestTarget>(
    target: &T,
    matrix: &TestMatrix,
    workers: usize,
    budget: u64,
) -> Option<u64> {
    let (spec, _, _) = synthesize_spec(target, matrix);
    let opts = CheckOptions::new()
        .with_preemption_bound(Some(2))
        .with_max_phase2_runs(budget)
        .with_workers(workers);
    let (violations, stats) = check_against_spec(target, matrix, &spec, &opts);
    if violations.is_empty() {
        None
    } else {
        Some(stats.runs)
    }
}

type Case = (
    &'static str,
    Box<dyn Fn(&Config) -> Option<u64>>,
    Box<dyn Fn(usize, u64) -> Option<u64>>,
);

fn main() {
    let trials: u64 = arg_num("--trials", 5);
    let budget: u64 = arg_num("--budget", 200_000);
    let workers: usize = arg_num("--workers", 4);
    let por_modes: Vec<bool> = match arg_value("--por").as_deref() {
        Some("on") => vec![true],
        Some("off") => vec![false],
        None | Some("both") => vec![false, true],
        Some(other) => {
            eprintln!("--por must be on, off, or both (got {other})");
            std::process::exit(2);
        }
    };

    let cases: Vec<Case> = vec![
        (
            "Fig. 1 (queue TryTake timeout)",
            Box::new(move |cfg: &Config| {
                let t = ConcurrentQueueTarget {
                    variant: Variant::Pre,
                };
                runs_to_violation(&t, &fig1_matrix(), cfg)
            }),
            Box::new(move |w: usize, budget: u64| {
                let t = ConcurrentQueueTarget {
                    variant: Variant::Pre,
                };
                parallel_runs_to_violation(&t, &fig1_matrix(), w, budget)
            }),
        ),
        (
            "Fig. 9 (MRE lost wakeup)",
            Box::new(move |cfg: &Config| {
                let t = ManualResetEventTarget {
                    variant: Variant::Pre,
                };
                runs_to_violation(&t, &fig9_matrix(), cfg)
            }),
            Box::new(move |w: usize, budget: u64| {
                let t = ManualResetEventTarget {
                    variant: Variant::Pre,
                };
                parallel_runs_to_violation(&t, &fig9_matrix(), w, budget)
            }),
        ),
    ];

    println!(
        "Runs until the violation is found (median of {trials} trials, budget {budget} runs):\n"
    );
    let parallel_header = format!("DFS x{workers} workers");
    let mut headers = vec!["Bug".to_string(), "DFS (PB=2)".to_string()];
    for &por in &por_modes {
        headers.push(format!(
            "DFS unbounded (POR {})",
            if por { "on" } else { "off" }
        ));
    }
    headers.push(parallel_header);
    headers.push("Random walk".to_string());
    headers.push("PCT d=5".to_string());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = TextTable::new(&header_refs);
    let fmt_runs = |r: Option<u64>| match r {
        Some(n) => n.to_string(),
        None => format!(">{budget}"),
    };
    for (name, run_case, run_parallel) in &cases {
        let mut cells = vec![name.to_string()];
        // DFS and its parallel mode are deterministic: one trial each.
        let mut cfg = Config::preemption_bounded(2);
        cfg.max_runs = Some(budget);
        cells.push(fmt_runs(run_case(&cfg)));
        // Unbounded DFS is where partial-order reduction engages: the
        // POR-on count includes the sleep-set-pruned runs it skips past.
        for &por in &por_modes {
            let mut cfg = Config::exhaustive().with_por(por);
            cfg.max_runs = Some(budget);
            cells.push(fmt_runs(run_case(&cfg)));
        }
        cells.push(fmt_runs(run_parallel(workers, budget)));
        for strat in 1..3 {
            let mut results = Vec::new();
            for trial in 0..trials {
                let mut cfg = match strat {
                    1 => Config::random(100 + trial, budget),
                    _ => Config::pct(100 + trial, 5, budget),
                };
                cfg.max_runs = Some(budget);
                results.push(run_case(&cfg));
            }
            results.sort();
            let median = results[results.len() / 2];
            cells.push(fmt_runs(median));
        }
        table.row(cells);
    }
    print!("{}", table.render());
    println!(
        "\nDFS is deterministic (the count is where the bug sits in the search \
         order), as is its parallel mode (these state spaces fall under the \
         serial-probe threshold, so the work-stealing workers never spin up \
         and the count matches serial DFS); Random and PCT are medians over \
         seeds. PCT's priority-change points target bugs of small depth, the \
         regime of all Table 2 root causes (small scope hypothesis)."
    );
}
