//! Search-strategy ablation: how many phase-2 executions each strategy
//! needs to find a known violation (find time, in runs).
//!
//! Compares the paper's exhaustive DFS (with partial-order reduction), a
//! uniform random walk, PCT (probabilistic concurrency testing — the
//! Line-Up authors' follow-up, ASPLOS 2010), and the coverage-guided
//! schedule fuzzer ([`lineup_sched::CoverageStrategy`]) on four seeded
//! bugs:
//!
//! * **Fig. 1** and **Fig. 9** — the paper's small matrices, where DFS
//!   wins (the bug sits early in the search order and the space is tiny);
//! * **4×4** and **5×4 contended queue** — one adder plus three/four
//!   takers hammering the Pre queue's timed-acquire defect
//!   ([`lineup_collections::concurrent_queue::contended_matrix`]). Every
//!   violating schedule preempts the adder mid-`Add`, a *shallow*
//!   decision; DFS backtracks deepest-first and drowns in the linearizable
//!   taker/taker tail, so exhaustive search exhausts a multi-million-run
//!   budget without ever reaching a violation that samplers hit in
//!   thousands of runs.
//!
//! All verdicts come from the `lineup-monitor` oracle (the contended
//! matrices would need ~10⁷ serial runs to synthesize a spec), caching
//! one verdict per distinct history; the queue cases use distinct `Add`
//! values so the specialized log-linear queue checker stays on its fast
//! path.
//!
//! Randomized strategies report the median and p90 of runs-to-violation
//! over `--trials` seeded trials; trials that exhaust the budget are
//! marked (counted as `budget + 1` in the order statistics, reported as
//! `null` runs in the JSON).
//!
//! ```text
//! cargo run --release -p lineup-bench --bin strategies [--trials N]
//!     [--budget N] [--dfs-budget N] [--json] [--out PATH] [--smoke]
//!     [--no-symmetry]
//! ```
//!
//! `--json` writes the measurements to `BENCH_strategies.json` (or
//! `--out PATH`). `--smoke` shrinks the workload to the 4×4 matrix with
//! small budgets and exits nonzero unless every Coverage trial finds the
//! seeded bug — a CI-sized regression gate for the fuzzer.

use std::ops::ControlFlow;
use std::sync::Arc;

use lineup::AdtKind;
use lineup::{explore_matrix, ErasedTarget, History, HistoryCache, SymmetryGroups, TestMatrix};
use lineup_bench::{arg_flag, arg_num, arg_value, TextTable};
use lineup_collections::concurrent_queue::{contended_matrix, fig1_matrix, ConcurrentQueueTarget};
use lineup_collections::hinted_queue::{fuzz4x4_matrix, fuzz5x4_matrix, HintedQueueTarget};
use lineup_collections::manual_reset_event::{fig9_matrix, ManualResetEventTarget};
use lineup_collections::Variant;
use lineup_monitor::{adt_monitor_backend, Monitor, ReplayOracle};
use lineup_sched::{Config, RunOutcome};

/// How a case decides whether one recorded history is a violation: ask
/// the monitor oracle, caching one verdict per distinct *canonical*
/// history (`true` = linearizable) — sampled schedules that merely
/// permute symmetric threads share a verdict instead of repeating the
/// monitor search (pass `--no-symmetry` for literal keys). The monitor
/// agrees with the paper's witness search on every history of a
/// deterministic target, and sidesteps spec synthesis — infeasible on
/// the contended matrices, whose serial enumeration alone would take
/// tens of millions of runs.
struct Verdicts {
    monitor: Arc<Monitor<ReplayOracle>>,
    groups: SymmetryGroups,
    cache: HistoryCache<bool>,
}

impl Verdicts {
    /// Whether a *complete* history is linearizable (Definition 1).
    fn full_ok(&mut self, history: &History) -> bool {
        let key = self.groups.canonicalize(history);
        match self.cache.get(&key) {
            Some(ok) => ok,
            None => {
                let ok = self.monitor.check_full(history, &[]);
                self.cache.insert_if_absent(&key, ok);
                ok
            }
        }
    }

    /// Whether a *stuck* history is acceptable: every pending operation
    /// has a stuck witness (Definition 2).
    fn stuck_ok(&mut self, history: &History) -> bool {
        let key = self.groups.canonicalize(history);
        match self.cache.get(&key) {
            Some(ok) => ok,
            None => {
                let ok = history
                    .pending_ops()
                    .into_iter()
                    .all(|e| self.monitor.check_stuck(history, e, &[]));
                self.cache.insert_if_absent(&key, ok);
                ok
            }
        }
    }
}

/// Explores `matrix` with the given scheduler config and returns
/// `(runs until the first violation (None = budget exhausted), final
/// exploration stats)`.
fn runs_to_violation<T: lineup::TestTarget>(
    target: &T,
    matrix: &TestMatrix,
    config: &Config,
    verdicts: &mut Verdicts,
) -> (Option<u64>, lineup_sched::ExploreStats) {
    // Tracked by the visitor, not `stats.stopped_early`: the latter is
    // also set when the run budget is exhausted without a violation.
    let mut found = false;
    let stats = explore_matrix(target, matrix, config, |run| {
        let violated = match run.outcome {
            RunOutcome::Complete => !verdicts.full_ok(&run.history),
            RunOutcome::Deadlock | RunOutcome::Livelock | RunOutcome::StuckSerial => {
                !verdicts.stuck_ok(&run.history)
            }
            // A sleep-set prune is a redundant schedule, never a violation.
            RunOutcome::Pruned => false,
            // Panics and step-limit blowups are real defects.
            _ => true,
        };
        if violated {
            found = true;
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    (found.then_some(stats.runs), stats)
}

/// A case's exploration driver: runs the workload under the given
/// scheduler configuration and reports (runs-to-violation, stats).
type CaseRunner = Box<dyn Fn(&Config, &mut Verdicts) -> (Option<u64>, lineup_sched::ExploreStats)>;

/// One workload: a named target/matrix pair plus its verdict backend.
struct Case {
    name: &'static str,
    /// Short machine-readable key for the JSON output.
    key: &'static str,
    matrix: TestMatrix,
    run: CaseRunner,
    make_verdicts: Box<dyn Fn() -> Verdicts>,
}

fn monitor_case<T>(
    name: &'static str,
    key: &'static str,
    matrix: TestMatrix,
    target: T,
    kind: Option<AdtKind>,
) -> Case
where
    T: lineup::TestTarget + Copy + Send + Sync + 'static,
{
    let m = matrix.clone();
    let m2 = matrix.clone();
    Case {
        name,
        key,
        matrix,
        run: Box::new(move |cfg, v| runs_to_violation(&target, &m, cfg, v)),
        make_verdicts: Box::new(move || {
            let erased: Arc<dyn ErasedTarget + Send + Sync> = Arc::new(target);
            let groups = if arg_flag("--no-symmetry") {
                SymmetryGroups::default()
            } else {
                m2.symmetry_groups(target.symmetry_policy())
            };
            Verdicts {
                monitor: adt_monitor_backend(erased, &m2, kind),
                groups,
                cache: HistoryCache::new(1),
            }
        }),
    }
}

/// Per-strategy summary of one workload.
struct Sample {
    workload: &'static str,
    strategy: &'static str,
    /// Per-trial runs-to-violation, `None` when the budget ran out.
    runs: Vec<Option<u64>>,
    budget: u64,
    corpus_size: u64,
    coverage_bits: u64,
    mutations: u64,
}

impl Sample {
    /// Order statistic over trials, exhausted trials sorted past every
    /// finite count (as `budget + 1`).
    fn percentile(&self, p: f64) -> Option<u64> {
        let mut xs: Vec<u64> = self
            .runs
            .iter()
            .map(|r| r.unwrap_or(self.budget + 1))
            .collect();
        xs.sort_unstable();
        let idx = ((p * xs.len() as f64).ceil() as usize).saturating_sub(1);
        let v = xs[idx.min(xs.len() - 1)];
        (v <= self.budget).then_some(v)
    }

    fn median(&self) -> Option<u64> {
        self.percentile(0.5)
    }

    fn p90(&self) -> Option<u64> {
        self.percentile(0.9)
    }

    fn exhausted(&self) -> usize {
        self.runs.iter().filter(|r| r.is_none()).count()
    }

    /// Table cell: `median (p90 N)` with exhausted trials marked.
    fn cell(&self) -> String {
        let fmt = |r: Option<u64>| match r {
            Some(n) => n.to_string(),
            None => format!(">{}", self.budget),
        };
        let mut s = if self.runs.len() == 1 {
            fmt(self.runs[0])
        } else {
            format!("{} (p90 {})", fmt(self.median()), fmt(self.p90()))
        };
        if self.exhausted() > 0 && self.runs.len() > 1 {
            s.push_str(&format!(" [{}/{} exh]", self.exhausted(), self.runs.len()));
        }
        s
    }

    fn json(&self) -> String {
        let runs: Vec<String> = self
            .runs
            .iter()
            .map(|r| match r {
                Some(n) => n.to_string(),
                None => "null".to_string(),
            })
            .collect();
        let opt = |r: Option<u64>| match r {
            Some(n) => n.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"workload\": \"{}\", \"strategy\": \"{}\", \"budget\": {}, \
             \"trials\": {}, \"exhausted\": {}, \"runs\": [{}], \
             \"median\": {}, \"p90\": {}, \
             \"corpus_size\": {}, \"coverage_bits\": {}, \"mutations\": {}}}",
            self.workload,
            self.strategy,
            self.budget,
            self.runs.len(),
            self.exhausted(),
            runs.join(", "),
            opt(self.median()),
            opt(self.p90()),
            self.corpus_size,
            self.coverage_bits,
            self.mutations,
        )
    }
}

fn main() {
    let smoke = arg_flag("--smoke");
    let trials: u64 = arg_num("--trials", if smoke { 3 } else { 9 });
    let budget: u64 = arg_num("--budget", if smoke { 40_000 } else { 200_000 });
    let dfs_budget: u64 = arg_num("--dfs-budget", if smoke { 100_000 } else { 2_000_000 });
    let json = arg_flag("--json");
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_strategies.json".into());

    let mut cases: Vec<Case> = Vec::new();
    if !smoke {
        cases.push(monitor_case(
            "Fig. 1 (queue TryTake timeout)",
            "fig1",
            fig1_matrix(),
            ConcurrentQueueTarget {
                variant: Variant::Pre,
            },
            Some(AdtKind::Queue),
        ));
        // No specialized checker for an event: the monitor falls back to
        // the Wing–Gong search, fine at this history size.
        cases.push(monitor_case(
            "Fig. 9 (MRE lost wakeup)",
            "fig9",
            fig9_matrix(),
            ManualResetEventTarget {
                variant: Variant::Pre,
            },
            None,
        ));
    }
    if !smoke {
        cases.push(monitor_case(
            "4x4 contended queue (Pre B)",
            "queue-4x4",
            contended_matrix(3, 4),
            ConcurrentQueueTarget {
                variant: Variant::Pre,
            },
            Some(AdtKind::Queue),
        ));
    }
    cases.push(monitor_case(
        "4x4 hinted queue (Pre, deep)",
        "hinted-4x4",
        fuzz4x4_matrix(),
        HintedQueueTarget {
            variant: Variant::Pre,
        },
        Some(AdtKind::Queue),
    ));
    if !smoke {
        cases.push(monitor_case(
            "5x4 hinted queue (Pre, deep)",
            "hinted-5x4",
            fuzz5x4_matrix(),
            HintedQueueTarget {
                variant: Variant::Pre,
            },
            Some(AdtKind::Queue),
        ));
    }

    println!(
        "Runs until the violation is found ({} of {trials} seeded trials; \
         sampling budget {budget} runs, DFS budget {dfs_budget}):\n",
        if trials > 1 {
            "median/p90"
        } else {
            "single trial"
        }
    );
    let mut table = TextTable::new(&[
        "Bug",
        "threads x ops",
        "DFS+POR",
        "Random walk",
        "PCT d=5",
        "Coverage",
        "verdict cache",
    ]);
    let mut samples: Vec<Sample> = Vec::new();
    // Per case: canonical verdict-cache hits and distinct keys, summed
    // over the case's DFS search and every sampling trial.
    let mut cache_rows: Vec<(&'static str, u64, usize)> = Vec::new();
    let mut smoke_failed = false;

    for case in &cases {
        let shape = format!(
            "{} x {}",
            case.matrix.columns.len(),
            case.matrix.columns.iter().map(Vec::len).max().unwrap_or(0)
        );
        let mut cells = vec![case.name.to_string(), shape];

        // DFS is deterministic: one trial, its own (larger) budget. The
        // verdict backend is shared across the whole search.
        let mut verdicts = (case.make_verdicts)();
        let mut cfg = Config::exhaustive();
        cfg.max_runs = Some(dfs_budget);
        let (dfs_runs, _) = (case.run)(&cfg, &mut verdicts);
        let dfs = Sample {
            workload: case.key,
            strategy: "dfs-por",
            runs: vec![dfs_runs],
            budget: dfs_budget,
            corpus_size: 0,
            coverage_bits: 0,
            mutations: 0,
        };
        cells.push(dfs.cell());
        samples.push(dfs);

        for strategy in ["random", "pct", "coverage"] {
            let mut runs = Vec::new();
            let mut corpus_size = 0u64;
            let mut coverage_bits = 0u64;
            let mut mutations = 0u64;
            for trial in 0..trials {
                let seed = 100 + trial;
                let cfg = match strategy {
                    "random" => Config::random(seed, budget),
                    "pct" => Config::pct(seed, 5, budget),
                    _ => Config::coverage(seed, budget),
                };
                let (r, stats) = (case.run)(&cfg, &mut verdicts);
                runs.push(r);
                corpus_size = corpus_size.max(stats.corpus_size);
                coverage_bits = coverage_bits.max(stats.coverage_bits);
                mutations = mutations.saturating_add(stats.mutations);
                if smoke && strategy == "coverage" && r.is_none() {
                    eprintln!(
                        "SMOKE FAIL: coverage trial seed {seed} exhausted {budget} runs \
                         without finding the seeded {} bug",
                        case.key
                    );
                    smoke_failed = true;
                }
            }
            let sample = Sample {
                workload: case.key,
                strategy,
                runs,
                budget,
                corpus_size,
                coverage_bits,
                mutations,
            };
            cells.push(sample.cell());
            samples.push(sample);
        }
        cells.push(format!(
            "{} hits / {} keys",
            verdicts.cache.hits(),
            verdicts.cache.len()
        ));
        cache_rows.push((case.key, verdicts.cache.hits(), verdicts.cache.len()));
        table.row(cells);
    }

    print!("{}", table.render());
    println!(
        "\nDFS+POR is deterministic (the count is where the bug sits in the \
         search order); Random, PCT, and Coverage are medians over seeds, \
         `>N` marking budget-exhausted trials (sorted past every finite \
         find). The contended matrices are built so every violation hides \
         behind a shallow preemption of the adder: depth-first order must \
         first drain the linearizable taker/taker tail, while the \
         coverage fuzzer's corpus replays novel prefixes and injects \
         preemptions at mutated decision points. Coverage feedback only \
         orders exploration — it never prunes, so any violation it can \
         reach, it can report."
    );

    if json {
        let mut out = String::from("{\n");
        out.push_str("  \"benchmark\": \"strategy-find-time\",\n");
        out.push_str(&format!("  \"smoke\": {smoke},\n"));
        out.push_str(&format!("  \"trials\": {trials},\n"));
        out.push_str(&format!("  \"sampling_budget\": {budget},\n"));
        out.push_str(&format!("  \"dfs_budget\": {dfs_budget},\n"));
        out.push_str(&format!(
            "  \"symmetry\": {},\n",
            !arg_flag("--no-symmetry")
        ));
        out.push_str("  \"verdict_cache\": [\n");
        for (i, (key, hits, keys)) in cache_rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"workload\": \"{key}\", \"hits\": {hits}, \
                 \"distinct_keys\": {keys}}}{}\n",
                if i + 1 < cache_rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"results\": [\n");
        for (i, s) in samples.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&s.json());
            out.push_str(if i + 1 < samples.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        match std::fs::write(&out_path, &out) {
            Ok(()) => println!("wrote {out_path}"),
            Err(e) => {
                eprintln!("failed to write {out_path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if smoke {
        if smoke_failed {
            eprintln!("smoke: FAILED — coverage strategy missed the seeded bug");
            std::process::exit(1);
        }
        println!("smoke: OK — every coverage trial found the seeded 4x4 bug");
    }
}
