//! Search-strategy ablation: how many phase-2 executions each strategy
//! needs to find a known violation.
//!
//! Compares exhaustive DFS (the paper's configuration), a uniform random
//! walk, and PCT (probabilistic concurrency testing — the Line-Up
//! authors' follow-up, ASPLOS 2010) on the Fig. 1 queue bug and the
//! Fig. 9 ManualResetEvent bug.
//!
//! ```text
//! cargo run --release -p lineup-bench --bin strategies [--trials N]
//! ```

use std::ops::ControlFlow;

use lineup::{explore_matrix, find_witness, synthesize_spec, TestMatrix, WitnessQuery};
use lineup_bench::{arg_num, TextTable};
use lineup_collections::manual_reset_event::{fig9_matrix, ManualResetEventTarget};
use lineup_collections::concurrent_queue::{fig1_matrix, ConcurrentQueueTarget};
use lineup_collections::Variant;
use lineup_sched::{Config, RunOutcome};

/// Explores `matrix` with the given scheduler config and returns the
/// number of runs until the first linearizability violation (checked
/// against the synthesized spec), or None if the budget ran out.
fn runs_to_violation<T: lineup::TestTarget>(
    target: &T,
    matrix: &TestMatrix,
    config: &Config,
) -> Option<u64> {
    let (spec, _, _) = synthesize_spec(target, matrix);
    let index = spec.index();
    let mut found_at = None;
    let stats = explore_matrix(target, matrix, config, |run| {
        let violated = match run.outcome {
            RunOutcome::Complete => {
                let q = WitnessQuery::for_full(&run.history);
                find_witness(&index, &q).is_none()
            }
            RunOutcome::Deadlock | RunOutcome::Livelock | RunOutcome::StuckSerial => run
                .history
                .pending_ops()
                .into_iter()
                .any(|e| {
                    let q = WitnessQuery::for_stuck(&run.history, e);
                    find_witness(&index, &q).is_none()
                }),
            _ => true,
        };
        if violated {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    if stats.stopped_early {
        found_at = Some(stats.runs);
    }
    found_at
}

type Case = (&'static str, Box<dyn Fn(&Config) -> Option<u64>>);

fn main() {
    let trials: u64 = arg_num("--trials", 5);
    let budget: u64 = arg_num("--budget", 200_000);

    let cases: Vec<Case> = vec![
        (
            "Fig. 1 (queue TryTake timeout)",
            Box::new(move |cfg: &Config| {
                let t = ConcurrentQueueTarget {
                    variant: Variant::Pre,
                };
                runs_to_violation(&t, &fig1_matrix(), cfg)
            }),
        ),
        (
            "Fig. 9 (MRE lost wakeup)",
            Box::new(move |cfg: &Config| {
                let t = ManualResetEventTarget {
                    variant: Variant::Pre,
                };
                runs_to_violation(&t, &fig9_matrix(), cfg)
            }),
        ),
    ];

    println!(
        "Runs until the violation is found (median of {trials} trials, budget {budget} runs):\n"
    );
    let mut table = TextTable::new(&["Bug", "DFS (PB=2)", "Random walk", "PCT d=5"]);
    for (name, run_case) in &cases {
        let mut cells = vec![name.to_string()];
        for strat in 0..3 {
            let mut results = Vec::new();
            for trial in 0..trials {
                let mut cfg = match strat {
                    0 => Config::preemption_bounded(2),
                    1 => Config::random(100 + trial, budget),
                    _ => Config::pct(100 + trial, 5, budget),
                };
                cfg.max_runs = Some(budget);
                results.push(run_case(&cfg));
            }
            results.sort();
            let median = results[results.len() / 2];
            cells.push(match median {
                Some(n) => n.to_string(),
                None => format!(">{budget}"),
            });
            if strat == 0 {
                // DFS is deterministic: one trial describes it.
            }
        }
        table.row(cells);
    }
    print!("{}", table.render());
    println!(
        "\nDFS is deterministic (the count is where the bug sits in the search \
         order); Random and PCT are medians over seeds. PCT's priority-change \
         points target bugs of small depth, the regime of all Table 2 root \
         causes (small scope hypothesis)."
    );
}
