//! Native stress benchmark: real-thread execution with online
//! linearizability monitoring (`lineup-monitor`), on fixed and seeded
//! collection classes.
//!
//! ```text
//! cargo run --release -p lineup-bench --bin stress [--json] [--out PATH]
//!     [--runs N] [--threads T] [--seed S] [--emit PATH] [--no-symmetry]
//! ```
//!
//! `--emit PATH` additionally streams every run as wire-format events
//! into a capture file (one stream, one object per run), replayable
//! through the online monitoring service:
//! `lineup-server --replay PATH`.
//!
//! Unlike the model-checking benchmarks this samples *real* OS-thread
//! interleavings (with seeded yield injection): fixed classes must stay
//! green across every run, and the seeded "(Pre)" dictionary should
//! trip the monitor within the run budget. Monitors are annotated with
//! each workload's ADT kind, so checks of unambiguous histories take
//! the specialized log-linear path and the rest fall back to Wing–Gong.
//! Reports, per workload, the execution rate (runs/second), the monitor
//! throughput (history checks/second), the duplicate-history cache
//! hit-rate (runs whose verdict was served without monitor work), the
//! memo hit-rate of the fallback search, and the specialized/fallback
//! split; `--json` additionally writes `BENCH_stress.json` (or
//! `--out PATH`).

use std::sync::Arc;
use std::time::Duration;

use lineup::{AdtKind, Invocation, TestMatrix, TestTarget};
use lineup_bench::{arg_flag, arg_num, arg_value, fmt_duration, TextTable};
use lineup_collections::concurrent_dictionary::ConcurrentDictionaryTarget;
use lineup_collections::concurrent_queue::ConcurrentQueueTarget;
use lineup_collections::Variant;
use lineup_monitor::{run_stress, Monitor, ReplayOracle, StressOptions};
use lineup_wire::StreamRecorder;

struct Sample {
    workload: String,
    seeded: bool,
    runs: usize,
    ops: u64,
    distinct: usize,
    stuck_runs: usize,
    violations: usize,
    wall_seconds: f64,
    runs_per_sec: f64,
    monitor_checks: u64,
    monitor_wall_seconds: f64,
    checks_per_sec: f64,
    history_cache_hits: u64,
    cache_hit_rate: f64,
    oracle_steps: u64,
    memo_hits: u64,
    memo_hit_rate: f64,
    specialized_checks: u64,
    fallback_checks: u64,
}

/// `threads` columns of TryAdds on distinct keys, Count at the end: the
/// final count must equal the number of threads — the seeded variant's
/// lost update (root cause F) makes it fall short.
fn dictionary_matrix(threads: usize) -> TestMatrix {
    TestMatrix::from_columns(
        (0..threads)
            .map(|i| vec![Invocation::with_int("TryAdd", 10 * (i as i64 + 1))])
            .collect(),
    )
    .with_finally(vec![Invocation::new("Count")])
}

/// Producer/consumer columns alternating over `threads` threads.
fn queue_matrix(threads: usize) -> TestMatrix {
    TestMatrix::from_columns(
        (0..threads)
            .map(|i| {
                if i % 2 == 0 {
                    vec![
                        Invocation::with_int("Enqueue", 100 * (i as i64 + 1)),
                        Invocation::with_int("Enqueue", 100 * (i as i64 + 1) + 1),
                    ]
                } else {
                    vec![Invocation::new("TryDequeue"), Invocation::new("TryDequeue")]
                }
            })
            .collect(),
    )
}

#[allow(clippy::too_many_arguments)]
fn measure<T>(
    workload: &str,
    seeded: bool,
    target: T,
    kind: AdtKind,
    matrix: &TestMatrix,
    runs: usize,
    seed: u64,
    recorder: Option<Arc<StreamRecorder>>,
) -> Sample
where
    T: TestTarget + Clone + Send + Sync + 'static,
    T::Instance: Send + Sync + 'static,
{
    let monitor = Monitor::new(ReplayOracle::new(
        Arc::new(target.clone()),
        matrix.init.clone(),
    ))
    .with_adt_init(matrix.init.clone())
    .with_adt_kind(kind);
    let report = run_stress(
        &target,
        matrix,
        &monitor,
        &StressOptions {
            runs,
            seed,
            // Seeded bugs are windows to hit, not certainties: stop at the
            // first detection instead of burning the whole budget.
            stop_at_first_violation: seeded,
            run_timeout: Duration::from_secs(5),
            recorder,
            // Canonical (thread-symmetric) verdict-cache keys unless the
            // escape hatch is set.
            symmetry: !arg_flag("--no-symmetry"),
            ..StressOptions::default()
        },
    );
    let wall = report.wall.as_secs_f64();
    let monitor_wall = report.monitor_wall.as_secs_f64();
    let stats = &report.monitor_stats;
    let memo_lookups = stats.memo_hits + stats.oracle_steps;
    Sample {
        workload: workload.to_string(),
        seeded,
        runs: report.runs,
        ops: report.ops,
        distinct: report.distinct_histories,
        stuck_runs: report.stuck_runs,
        violations: report.violations.len(),
        wall_seconds: wall,
        runs_per_sec: report.runs as f64 / wall.max(1e-9),
        monitor_checks: report.monitor_checks,
        monitor_wall_seconds: monitor_wall,
        checks_per_sec: report.monitor_checks as f64 / monitor_wall.max(1e-9),
        history_cache_hits: report.history_cache_hits,
        cache_hit_rate: report.history_cache_hits as f64 / (report.runs as f64).max(1.0),
        oracle_steps: stats.oracle_steps,
        memo_hits: stats.memo_hits,
        memo_hit_rate: stats.memo_hits as f64 / (memo_lookups as f64).max(1.0),
        specialized_checks: stats.paths.specialized_checks,
        fallback_checks: stats.paths.fallback_checks,
    }
}

fn main() {
    let json = arg_flag("--json");
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_stress.json".into());
    let runs: usize = arg_num("--runs", 2000);
    let threads: usize = arg_num("--threads", 2);
    let seed: u64 = arg_num("--seed", 1);
    assert!(threads >= 1, "--threads must be at least 1");
    let recorder = arg_value("--emit").map(|path| {
        Arc::new(StreamRecorder::create(&path).unwrap_or_else(|e| {
            eprintln!("cannot create capture file {path}: {e}");
            std::process::exit(1);
        }))
    });

    let samples = vec![
        measure(
            "dictionary_fixed",
            false,
            ConcurrentDictionaryTarget {
                variant: Variant::Fixed,
            },
            AdtKind::Set,
            &dictionary_matrix(threads),
            runs,
            seed,
            recorder.clone(),
        ),
        measure(
            "queue_fixed",
            false,
            ConcurrentQueueTarget {
                variant: Variant::Fixed,
            },
            AdtKind::Queue,
            &queue_matrix(threads),
            runs,
            seed,
            recorder.clone(),
        ),
        measure(
            "dictionary_pre_seeded",
            true,
            ConcurrentDictionaryTarget {
                variant: Variant::Pre,
            },
            AdtKind::Set,
            &dictionary_matrix(threads.max(2)),
            // The lost-update window needs luck; give the seeded hunt a
            // larger budget (it stops at the first detection anyway).
            runs.saturating_mul(25),
            seed,
            recorder.clone(),
        ),
    ];
    if let Some(rec) = &recorder {
        if let Err(e) = rec.shutdown() {
            eprintln!("capture file flush failed: {e}");
            std::process::exit(1);
        }
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut table = TextTable::new(&[
        "workload",
        "runs",
        "histories",
        "violations",
        "wall",
        "runs/sec",
        "checks/sec",
        "cache hits",
        "memo rate",
        "fast path",
        "fallback",
        "verdict",
    ]);
    let mut failed = false;
    for s in &samples {
        let verdict = if s.seeded {
            if s.violations > 0 {
                "detected"
            } else {
                failed = true;
                "MISSED"
            }
        } else if s.violations == 0 {
            "green"
        } else {
            failed = true;
            "VIOLATION"
        };
        table.row(vec![
            s.workload.clone(),
            s.runs.to_string(),
            s.distinct.to_string(),
            s.violations.to_string(),
            fmt_duration(Duration::from_secs_f64(s.wall_seconds)),
            format!("{:.0}", s.runs_per_sec),
            format!("{:.0}", s.checks_per_sec),
            format!(
                "{} ({:.0}%)",
                s.history_cache_hits,
                100.0 * s.cache_hit_rate
            ),
            format!("{:.0}%", 100.0 * s.memo_hit_rate),
            s.specialized_checks.to_string(),
            s.fallback_checks.to_string(),
            verdict.to_string(),
        ]);
    }
    println!(
        "Native stress with online monitoring ({threads} thread(s), seed {seed}, {cores} core(s))"
    );
    println!("{}", table.render());

    if json {
        let mut out = String::from("{\n");
        out.push_str("  \"benchmark\": \"native-stress\",\n");
        out.push_str(&format!("  \"cpu_cores\": {cores},\n"));
        out.push_str(&format!("  \"threads\": {threads},\n"));
        out.push_str(&format!("  \"seed\": {seed},\n"));
        out.push_str("  \"results\": [\n");
        for (i, s) in samples.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"workload\": \"{}\", \"seeded\": {}, \"runs\": {}, \
                 \"ops\": {}, \"distinct_histories\": {}, \"stuck_runs\": {}, \
                 \"violations\": {}, \"wall_seconds\": {:.6}, \
                 \"runs_per_sec\": {:.1}, \"monitor_checks\": {}, \
                 \"monitor_wall_seconds\": {:.6}, \"monitor_checks_per_sec\": {:.1}, \
                 \"history_cache_hits\": {}, \"cache_hit_rate\": {:.4}, \
                 \"oracle_steps\": {}, \"memo_hits\": {}, \"memo_hit_rate\": {:.4}, \
                 \"specialized_checks\": {}, \"fallback_checks\": {}}}{}\n",
                s.workload,
                s.seeded,
                s.runs,
                s.ops,
                s.distinct,
                s.stuck_runs,
                s.violations,
                s.wall_seconds,
                s.runs_per_sec,
                s.monitor_checks,
                s.monitor_wall_seconds,
                s.checks_per_sec,
                s.history_cache_hits,
                s.cache_hit_rate,
                s.oracle_steps,
                s.memo_hits,
                s.memo_hit_rate,
                s.specialized_checks,
                s.fallback_checks,
                if i + 1 < samples.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        match std::fs::write(&out_path, &out) {
            Ok(()) => println!("wrote {out_path}"),
            Err(e) => {
                eprintln!("failed to write {out_path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if failed {
        std::process::exit(1);
    }
}
