//! Reproduces **Table 1** of the paper: the classes under test, their
//! size, and the methods checked.
//!
//! ```text
//! cargo run --release -p lineup-bench --bin table1
//! ```

use lineup_bench::TextTable;
use lineup_collections::{all_classes, Variant};

fn main() {
    let entries = all_classes();
    let mut table = TextTable::new(&["Class", "LOC", "Methods checked"]);
    let mut total_methods = 0usize;
    for e in entries.iter().filter(|e| e.variant == Variant::Fixed) {
        let methods = e.methods();
        total_methods += methods.len();
        table.row(vec![
            e.name.to_string(),
            e.loc.to_string(),
            methods.join(", "),
        ]);
    }
    println!("Table 1: classes and methods checked (fixed variants)");
    println!("(LOC counts the Rust module implementing the class, including its unit tests.)\n");
    print!("{}", table.render());
    println!(
        "\n{} classes, {} methods total (the paper checks 13 classes / 90 methods).",
        entries
            .iter()
            .filter(|e| e.variant == Variant::Fixed)
            .count(),
        total_methods
    );
    println!(
        "Preview (\"Pre\") variants with seeded root causes: {}.",
        entries
            .iter()
            .filter(|e| e.variant == Variant::Pre)
            .map(|e| e.name)
            .collect::<Vec<_>>()
            .join(", ")
    );
}
