//! Reproduces **Table 2** of the paper: applies `RandomCheck` to every
//! class/variant, reporting per class the root causes found, the minimal
//! failing dimension (automated shrinking replaces the paper's manual
//! reduction), phase-1 serial-history counts and times, and phase-2
//! pass/fail counts and times.
//!
//! ```text
//! cargo run --release -p lineup-bench --bin table2 [--sample N] [--rows R]
//!     [--cols C] [--pb B] [--seed S] [--cap RUNS] [--class SUBSTR] [--paper]
//!     [--workers W]
//! ```
//!
//! `--workers W` (default 1) runs each phase-2 exploration itself in the
//! prefix-partitioned parallel mode (`CheckOptions::with_workers`), on
//! top of the existing test-level parallelism of the random-check driver.
//!
//! The paper runs 100 random 3×3 tests per class on an 8-core Xeon; the
//! default here is a smaller sample so the table regenerates in minutes —
//! pass `--paper` for the full protocol. Shapes to compare against the
//! paper: phase 1 is cheap (milliseconds, ≤ 1680 histories); failing
//! tests finish much faster than passing ones; 5 of 13 classes exhibit
//! stuck tests; every seeded root cause is found with a small minimal
//! dimension (small scope hypothesis).

use std::time::Duration;

use lineup::{CheckOptions, RandomCheckConfig, Violation};
use lineup_bench::{arg_flag, arg_num, arg_value, fmt_duration, TextTable};
use lineup_collections::{all_classes, ClassEntry, RootCause};

/// Attributes a violation to one of the class's expected root causes.
fn classify(entry: &ClassEntry, v: &Violation) -> Option<RootCause> {
    use RootCause as RC;
    let history = match v {
        Violation::NoWitness { history, .. } => Some(history),
        Violation::StuckNoWitness { history, .. } => Some(history),
        Violation::Panic { history, .. } => Some(history),
        Violation::Nondeterminism(_) => None,
    };
    let has_op = |name: &str| {
        history.is_some_and(|h| h.ops.iter().any(|o| o.invocation.name.contains(name)))
    };
    entry
        .expected_root_causes
        .iter()
        .copied()
        .find(|cause| match cause {
            RC::A | RC::C => matches!(v, Violation::StuckNoWitness { .. }),
            RC::B => has_op("TryTake") || has_op("TryDequeue"),
            RC::D => has_op("TryPopRange"),
            RC::E => {
                matches!(v, Violation::StuckNoWitness { .. })
                    || has_op("CurrentCount")
                    || has_op("Signal")
            }
            RC::F | RC::I => has_op("Count"),
            RC::G => matches!(v, Violation::Panic { .. }),
            RC::H => true,
            RC::J => has_op("TryTake"),
            RC::K => has_op("CompleteAdding"),
            RC::L => has_op("SignalAndWait"),
        })
}

fn avg(durations: &[Duration]) -> Duration {
    if durations.is_empty() {
        Duration::ZERO
    } else {
        durations.iter().sum::<Duration>() / durations.len() as u32
    }
}

fn main() {
    let paper = arg_flag("--paper");
    let sample: usize = arg_num("--sample", if paper { 100 } else { 4 });
    let rows: usize = arg_num("--rows", 3);
    let cols: usize = arg_num("--cols", 3);
    let pb: usize = arg_num("--pb", 2);
    let seed: u64 = arg_num("--seed", 2010);
    let cap: u64 = arg_num("--cap", if paper { u64::MAX } else { 30_000 });
    let class_filter = arg_value("--class");
    let phase2_workers: usize = arg_num("--workers", 1);

    let mut options = CheckOptions::new().with_preemption_bound(Some(pb));
    if cap != u64::MAX {
        options = options.with_max_phase2_runs(cap);
    }
    if phase2_workers > 1 {
        options = options.with_workers(phase2_workers);
    }

    println!(
        "Table 2: RandomCheck with {sample} random {rows}x{cols} tests per class \
         (seed {seed}, preemption bound {pb}{}, parallel workers per class)",
        if cap == u64::MAX {
            String::new()
        } else {
            format!(", phase-2 cap {cap} runs/test")
        }
    );
    println!();

    let mut table = TextTable::new(&[
        "Class",
        "Causes",
        "MinDim",
        "P1 hist avg/max",
        "P1 time avg/max",
        "P2 pass/fail",
        "P2 time pass/fail",
        "PB",
    ]);

    let mut stuck_classes = 0usize;
    let mut any_missed = Vec::new();
    let entries: Vec<_> = all_classes()
        .into_iter()
        .filter(|e| {
            class_filter
                .as_deref()
                .is_none_or(|f| e.name.to_lowercase().contains(&f.to_lowercase()))
        })
        .collect();

    for entry in &entries {
        let cfg = RandomCheckConfig {
            rows,
            cols,
            samples: sample,
            seed,
            options: options.clone(),
            ..RandomCheckConfig::paper_defaults(seed)
        };
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let result = entry.target().random_check_parallel(&cfg, workers);

        let p1_hist: Vec<usize> = result
            .summaries
            .iter()
            .map(|s| s.phase1.full_histories + s.phase1.stuck_histories)
            .collect();
        let p1_times: Vec<Duration> = result.summaries.iter().map(|s| s.phase1.duration).collect();
        let pass_times: Vec<Duration> = result
            .summaries
            .iter()
            .filter(|s| s.passed)
            .map(|s| s.phase2.duration)
            .collect();
        let fail_times: Vec<Duration> = result
            .summaries
            .iter()
            .filter(|s| !s.passed)
            .map(|s| s.phase2.duration)
            .collect();
        let (passed, failed) = result.counts();
        if result
            .summaries
            .iter()
            .any(|s| s.phase1.stuck_histories > 0)
        {
            stuck_classes += 1;
        }
        assert!(
            p1_hist.iter().all(|&h| h <= 1680),
            "3x3 tests have at most 1680 full serial histories (§5.5)"
        );

        // Root causes across *all* failing sample tests. When random
        // sampling misses seeded causes, fall back to the class's
        // regression matrix (§4.3: users "specify test matrices directly
        // ... for writing regression tests"); causes found only there are
        // marked '*'.
        let mut found: std::collections::BTreeSet<RootCause> = result
            .summaries
            .iter()
            .filter_map(|s| s.violation.as_ref())
            .filter_map(|v| classify(entry, v))
            .collect();
        let mut starred: std::collections::BTreeSet<RootCause> = Default::default();
        let mut regression_failure: Option<lineup::CheckReport> = None;
        if entry
            .expected_root_causes
            .iter()
            .any(|c| !found.contains(c))
        {
            for m in entry.regression_matrices() {
                let report = entry.target().check(&m, &options);
                if !report.passed() {
                    for v in &report.violations {
                        if let Some(c) = classify(entry, v) {
                            if found.insert(c) {
                                starred.insert(c);
                            }
                        }
                    }
                    regression_failure.get_or_insert(report);
                }
            }
        }
        let first_failing_matrix = result
            .first_failure
            .as_ref()
            .map(|r| r.matrix.clone())
            .or_else(|| regression_failure.map(|r| r.matrix));
        let (causes, min_dim) = match first_failing_matrix {
            Some(matrix) => {
                let rendered: Vec<String> = found
                    .iter()
                    .map(|c| format!("{c:?}{}", if starred.contains(c) { "*" } else { "" }))
                    .collect();
                let (small, _) = entry.target().shrink_failing_test(&matrix, &options);
                let (r, c) = small.dimension();
                (
                    if rendered.is_empty() {
                        "?".into()
                    } else {
                        rendered.join(",")
                    },
                    format!("{r}x{c}"),
                )
            }
            None => {
                if !entry.expected_root_causes.is_empty() {
                    any_missed.push(entry.name);
                }
                ("-".into(), "-".into())
            }
        };

        table.row(vec![
            entry.name.to_string(),
            causes,
            min_dim,
            format!(
                "{}/{}",
                p1_hist.iter().sum::<usize>() / p1_hist.len().max(1),
                p1_hist.iter().max().copied().unwrap_or(0)
            ),
            format!(
                "{}/{}",
                fmt_duration(avg(&p1_times)),
                fmt_duration(p1_times.iter().max().copied().unwrap_or_default())
            ),
            format!("{passed}/{failed}"),
            format!(
                "{}/{}",
                fmt_duration(avg(&pass_times)),
                fmt_duration(avg(&fail_times))
            ),
            pb.to_string(),
        ]);
    }

    print!("{}", table.render());
    println!();
    println!(
        "{} of {} classes exhibited stuck (blocking) serial tests — the paper reports 5 of 13 (§5.5).",
        stuck_classes,
        entries.len()
    );
    if !any_missed.is_empty() {
        println!(
            "Root causes not hit by this sample (increase --sample or use --paper): {}",
            any_missed.join(", ")
        );
    }
    println!(
        "Causes marked '*' were missed by the random sample and found by the \
         class's targeted regression matrix instead (§4.3)."
    );
    println!(
        "Reading the shape: phase 1 (sequential-spec synthesis) is cheap; failing \
         testcases finish much faster than passing ones; minimal failing \
         dimensions are small (small scope hypothesis, §5.2)."
    );
}
