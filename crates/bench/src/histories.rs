//! Synthetic concurrent-history generators for the specialized-monitor
//! benchmarks and differential tests.
//!
//! Histories are generated *linearization-first*: a serial simulation of
//! the ideal ADT fixes the operation order and every response, then each
//! operation `i` is widened into a call/return window around its
//! linearization point (`10·i`) with random jitter, and windows are
//! packed greedily onto threads. The result is a well-formed, complete,
//! linearizable history whose concurrency is controlled by the jitter
//! `spread` — and whose expected verdict is known by construction, which
//! is what both the `monitorcmp --large` benchmark and the differential
//! proptest suite need.
//!
//! Four variants per [`AdtKind`]:
//!
//! * [`unambiguous_history`] — fresh values throughout; the specialized
//!   log-linear checkers decide it without falling back.
//! * [`ambiguous_history`] — pooled values plus a forced duplicate-insert
//!   prefix, guaranteeing the specialized path falls back
//!   (`DuplicateValue`) and the Wing–Gong search decides it.
//! * [`violating_history`] — unambiguous, except the final operation is
//!   rewritten to remove a value that was never inserted: both paths
//!   must reject.
//! * [`pending_history`] — unambiguous, with the last return dropped so
//!   one call is left pending (specialized path falls back with
//!   `PendingOps`).

use lineup::{AdtKind, History, Invocation, Value};
use lineup_monitor::StepResult;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

// The ideal sequential specifications live in `lineup_monitor::ideal`
// (shared with the online monitoring service); re-exported here because
// the generators and the differential tests are written against them.
pub use lineup_monitor::{ideal_oracle, ideal_step, IdealStep};

/// Jitter half-width in linearization slots: each call/return may move up
/// to `SPREAD × 10` time units from its linearization point, so roughly
/// `2 × SPREAD` operations can overlap at once.
const SPREAD: i64 = 3;

/// One simulated operation: invocation plus its serial response.
type ScriptOp = (Invocation, Value);

/// Simulates `n` operations of the ideal ADT serially. `pool` of `None`
/// draws fresh values from a counter (unambiguous); `Some(p)` draws from
/// `0..p` and prepends a duplicate-insert prefix (ambiguous).
fn generate_script(kind: AdtKind, n: usize, seed: u64, pool: Option<i64>) -> Vec<ScriptOp> {
    let step = ideal_step(kind);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut state: Vec<i64> = Vec::new();
    let mut fresh: i64 = 0;
    let mut out: Vec<ScriptOp> = Vec::with_capacity(n);

    let apply =
        |inv: Invocation, state: &mut Vec<i64>, out: &mut Vec<ScriptOp>| match step(state, &inv) {
            StepResult::Returns(v, next) => {
                *state = next;
                out.push((inv, v));
            }
            _ => unreachable!("ideal oracles always return"),
        };

    if let Some(p) = pool {
        // Forced prefix guaranteeing a repeated successful insert of the
        // out-of-pool value `p`, so the specialized checkers *provably*
        // fall back with `DuplicateValue` (not just with high probability).
        let prefix: Vec<Invocation> = match kind {
            AdtKind::Queue => vec![
                Invocation::with_int("Enqueue", p),
                Invocation::with_int("Enqueue", p),
            ],
            AdtKind::Stack => vec![
                Invocation::with_int("Push", p),
                Invocation::with_int("Push", p),
            ],
            AdtKind::PriorityQueue => vec![
                Invocation::with_int("Insert", p),
                Invocation::with_int("Insert", p),
            ],
            AdtKind::Set => vec![
                Invocation::with_int("TryAdd", p),
                Invocation::with_int("TryRemove", p),
                Invocation::with_int("TryAdd", p),
            ],
        };
        for inv in prefix {
            apply(inv, &mut state, &mut out);
        }
    }

    while out.len() < n {
        let inv = match kind {
            AdtKind::Queue | AdtKind::Stack | AdtKind::PriorityQueue => {
                let (ins, rem) = match kind {
                    AdtKind::Queue => ("Enqueue", "TryDequeue"),
                    AdtKind::Stack => ("Push", "TryPop"),
                    _ => ("Insert", "ExtractMin"),
                };
                // Mean-reverting size: for queues and stacks the
                // reference Wing–Gong memo keys the container contents,
                // so every wrong ordering of in-flight inserts is a
                // distinct state until removed. Short residency keeps
                // that search polynomial at multi-thousand-op sizes.
                let p_ins = if state.len() >= 6 { 0.35 } else { 0.65 };
                if rng.gen_bool(p_ins) {
                    let v = match pool {
                        Some(p) => rng.gen_range(0..p),
                        None => {
                            fresh += 1;
                            fresh
                        }
                    };
                    Invocation::with_int(ins, v)
                } else {
                    Invocation::new(rem)
                }
            }
            AdtKind::Set => {
                let key_present = |state: &Vec<i64>, rng: &mut SmallRng| -> Option<i64> {
                    if state.is_empty() {
                        None
                    } else {
                        Some(state[rng.gen_range(0..state.len())])
                    }
                };
                let roll = rng.gen_range(0u32..100);
                match pool {
                    // Ambiguous mode: hammer a small key pool with all
                    // three methods; responses stay serially consistent.
                    Some(p) => {
                        let k = rng.gen_range(0..p);
                        let name = match roll % 3 {
                            0 => "TryAdd",
                            1 => "TryRemove",
                            _ => "ContainsKey",
                        };
                        Invocation::with_int(name, k)
                    }
                    // Unambiguous mode: each key is added at most once
                    // (fresh counter); absent observations use negative
                    // keys that are never added.
                    None => {
                        if roll < 40 {
                            fresh += 1;
                            Invocation::with_int("TryAdd", fresh)
                        } else if roll < 80 {
                            match key_present(&state, &mut rng) {
                                Some(k) if roll < 60 => Invocation::with_int("ContainsKey", k),
                                Some(k) => Invocation::with_int("TryRemove", k),
                                None => Invocation::with_int("ContainsKey", -1),
                            }
                        } else {
                            let k = -1 - rng.gen_range(0..50);
                            if roll < 90 {
                                Invocation::with_int("ContainsKey", k)
                            } else {
                                Invocation::with_int("TryRemove", k)
                            }
                        }
                    }
                }
            }
        };
        apply(inv, &mut state, &mut out);
    }
    out
}

/// Widens a serial script into a concurrent [`History`]: operation `i`
/// linearizes at time `10·i`, its call/return jitter backwards/forwards
/// by up to `SPREAD × 10`, and operations pack greedily onto the fewest
/// threads that keep each thread's operations disjoint.
fn weave(script: &[ScriptOp], seed: u64, drop_last_return: bool) -> History {
    let n = script.len();
    let mut rng = SmallRng::seed_from_u64(seed);
    let jitter = SPREAD * 10;
    let mut calls: Vec<i64> = Vec::with_capacity(n);
    let mut rets: Vec<i64> = Vec::with_capacity(n);
    for i in 0..n {
        let base = 10 * i as i64;
        calls.push(base - rng.gen_range(0..jitter + 1));
        rets.push(base + 1 + rng.gen_range(0..jitter + 1));
    }

    // Greedy thread assignment, in call order: a thread is free for op i
    // iff its previous operation returned strictly before calls[i].
    let mut by_call: Vec<usize> = (0..n).collect();
    by_call.sort_by_key(|&i| (calls[i], i));
    let mut thread_of = vec![0usize; n];
    let mut last_ret: Vec<i64> = Vec::new();
    for &i in &by_call {
        match last_ret.iter().position(|&r| r < calls[i]) {
            Some(t) => thread_of[i] = t,
            None => {
                thread_of[i] = last_ret.len();
                last_ret.push(i64::MIN);
            }
        }
        last_ret[thread_of[i]] = rets[i];
    }

    // Event order: by time, returns before calls on ties (an op's own
    // call still precedes its return — rets[i] > calls[i] always).
    let mut events: Vec<(i64, u8, usize)> = Vec::with_capacity(2 * n);
    for i in 0..n {
        events.push((calls[i], 1, i));
        if !(drop_last_return && i == n - 1) {
            events.push((rets[i], 0, i));
        }
    }
    events.sort_unstable();

    let mut h = History::new(last_ret.len());
    let mut ids = vec![usize::MAX; n];
    for &(_, kind, i) in &events {
        if kind == 1 {
            ids[i] = h.push_call(thread_of[i], script[i].0.clone());
        } else {
            h.push_return(ids[i], script[i].1.clone());
        }
    }
    h
}

/// A linearizable history over fresh values: the specialized checkers
/// decide it on the log-linear path, no fallback.
pub fn unambiguous_history(kind: AdtKind, ops: usize, seed: u64) -> History {
    weave(
        &generate_script(kind, ops, seed, None),
        seed ^ 0x9E3779B9,
        false,
    )
}

/// A linearizable history over a small value pool with a forced repeated
/// insert: the specialized checkers provably fall back
/// (`DuplicateValue`) and Wing–Gong decides it.
pub fn ambiguous_history(kind: AdtKind, ops: usize, seed: u64) -> History {
    weave(
        &generate_script(kind, ops, seed, Some(5)),
        seed ^ 0x9E3779B9,
        false,
    )
}

/// An unambiguous history whose final operation removes a value that was
/// never inserted: every backend must reject it.
pub fn violating_history(kind: AdtKind, ops: usize, seed: u64) -> History {
    let mut script = generate_script(kind, ops, seed, None);
    let never = i64::MAX / 2;
    *script.last_mut().expect("ops >= 1") = match kind {
        AdtKind::Queue => (
            Invocation::new("TryDequeue"),
            Value::some(Value::int(never)),
        ),
        AdtKind::Stack => (Invocation::new("TryPop"), Value::some(Value::int(never))),
        AdtKind::Set => (
            Invocation::with_int("TryRemove", never),
            Value::some(Value::int(never)),
        ),
        AdtKind::PriorityQueue => (
            Invocation::new("ExtractMin"),
            Value::some(Value::int(never)),
        ),
    };
    weave(&script, seed ^ 0x9E3779B9, false)
}

/// An unambiguous history with its last return dropped: one operation
/// stays pending, so the specialized path falls back (`PendingOps`).
pub fn pending_history(kind: AdtKind, ops: usize, seed: u64) -> History {
    weave(
        &generate_script(kind, ops, seed, None),
        seed ^ 0x9E3779B9,
        true,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_histories_are_well_formed_and_complete() {
        for kind in AdtKind::ALL {
            let h = unambiguous_history(kind, 200, 7);
            assert!(h.is_well_formed(), "{kind}: not well-formed");
            assert!(h.is_complete(), "{kind}: not complete");
            assert_eq!(h.ops.len(), 200);
        }
    }

    #[test]
    fn pending_history_has_exactly_one_pending_op() {
        for kind in AdtKind::ALL {
            let h = pending_history(kind, 50, 3);
            assert_eq!(h.pending_ops().len(), 1, "{kind}");
        }
    }

    #[test]
    fn weave_is_deterministic_per_seed() {
        let a = unambiguous_history(AdtKind::Queue, 100, 42);
        let b = unambiguous_history(AdtKind::Queue, 100, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn histories_are_actually_concurrent() {
        let h = unambiguous_history(AdtKind::Stack, 300, 11);
        assert!(h.thread_count > 1, "spread produced a serial history");
        let overlapping = (0..h.ops.len() - 1).any(|i| h.overlapping(i, i + 1));
        assert!(overlapping, "no overlapping adjacent ops");
    }
}
