//! Support library for the table/figure reproduction binaries: tiny
//! argument parsing and text-table rendering, shared across `src/bin/*`.

#![warn(missing_docs)]

pub mod histories;

use std::time::Duration;

/// Reads a `--flag value` style option from the command line.
pub fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Reads a numeric `--flag value` option with a default.
pub fn arg_num<T: std::str::FromStr>(name: &str, default: T) -> T {
    arg_value(name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Whether a bare `--flag` is present.
pub fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Formats a duration compactly (`1.23s`, `45ms`, `120µs`).
pub fn fmt_duration(d: Duration) -> String {
    if d.as_secs() >= 1 {
        format!("{:.2}s", d.as_secs_f64())
    } else if d.as_millis() >= 1 {
        format!("{}ms", d.as_millis())
    } else {
        format!("{}µs", d.as_micros())
    }
}

/// A simple left-aligned text table.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["Class", "LOC"]);
        t.row(vec!["Queue".into(), "819".into()]);
        t.row(vec!["VeryLongClassName".into(), "3".into()]);
        let s = t.render();
        assert!(s.contains("Class"));
        assert!(s.lines().count() == 4);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[2].starts_with("Queue"));
    }

    #[test]
    fn duration_formats() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
        assert_eq!(fmt_duration(Duration::from_millis(45)), "45ms");
        assert_eq!(fmt_duration(Duration::from_micros(120)), "120µs");
    }
}
