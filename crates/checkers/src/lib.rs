//! The comparison checkers of the paper's §5.6: a happens-before data
//! race detector and a conflict-serializability (atomicity) monitor, both
//! running over the access log recorded by `lineup-sched`.
//!
//! The paper used these to test whether linearizability was the right
//! notion of thread safety for the .NET collections, and found that it
//! was: "data-race detection was ineffective because the code contained
//! only benign data races (due to a disciplined use of volatile qualifiers
//! and interlocked operations), while conflict-serializability checking
//! produced a discouraging number of false alarms." The
//! `lineup-bench` `comparison` binary reproduces those findings.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod race;
pub mod serializability;

pub use race::{detect_races, RaceReport};
pub use serializability::{check_serializability, ConflictEdge, SerializabilityViolation};
