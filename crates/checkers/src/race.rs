//! Happens-before data race detection over an access log.
//!
//! Same algorithm family as "the happens-before based dynamic race
//! detector included with CHESS" (§5.6): vector clocks per thread,
//! synchronization objects (locks, monitors, atomics, volatiles) transfer
//! clocks, and two *plain data* accesses to the same object race when they
//! are unordered and at least one writes.

use std::collections::HashMap;

use lineup_sched::{AccessEvent, AccessKind, ObjId, ThreadId};

// The scheduler's DPOR machinery and this detector share one vector-clock
// implementation (re-exported so existing `lineup_checkers::race::
// VectorClock` users keep compiling).
pub use lineup_sched::VectorClock;

/// A detected data race.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceReport {
    /// The object raced on.
    pub obj: ObjId,
    /// The earlier access.
    pub first: AccessEvent,
    /// The later, unordered access.
    pub second: AccessEvent,
}

#[derive(Debug, Default)]
struct DataState {
    /// Epoch of the last write: (thread, clock, event).
    last_write: Option<(usize, u64, AccessEvent)>,
    /// Per-thread epoch of the last read since the last write.
    reads: HashMap<usize, (u64, AccessEvent)>,
}

/// Detects data races in one execution's access log.
///
/// Synchronizing accesses (atomics, volatiles, lock operations) never race
/// and create happens-before edges: every sync access to an object joins
/// the thread's clock with the object's clock in both directions, which
/// models acquire/release on the same object (all such accesses are
/// totally ordered by the scheduler).
///
/// Returns every racing *pair* (deduplicated per object/access pair).
///
/// # Example
///
/// ```
/// use lineup_checkers::detect_races;
/// // An empty log trivially has no races.
/// assert!(detect_races(&[]).is_empty());
/// ```
pub fn detect_races(log: &[AccessEvent]) -> Vec<RaceReport> {
    let mut thread_clocks: HashMap<usize, VectorClock> = HashMap::new();
    let mut sync_clocks: HashMap<ObjId, VectorClock> = HashMap::new();
    let mut data: HashMap<ObjId, DataState> = HashMap::new();
    let mut races = Vec::new();

    for ev in log {
        let t = ev.thread.index();
        let clock = thread_clocks.entry(t).or_default();
        clock.tick(t);

        if ev.kind.is_sync() {
            // Acquire: learn the object's clock; release: publish ours.
            let oc = sync_clocks.entry(ev.obj).or_default();
            let mut merged = oc.clone();
            merged.join(clock);
            *oc = merged.clone();
            *clock = merged;
            continue;
        }
        if !ev.kind.is_data() {
            continue;
        }

        let clock = clock.clone();
        let state = data.entry(ev.obj).or_default();
        match ev.kind {
            AccessKind::ReadData => {
                if let Some((wt, wc, wev)) = &state.last_write {
                    if *wt != t && !clock.covers(*wt, *wc) {
                        races.push(RaceReport {
                            obj: ev.obj,
                            first: *wev,
                            second: *ev,
                        });
                    }
                }
                state.reads.insert(t, (clock.get(t), *ev));
            }
            AccessKind::WriteData => {
                if let Some((wt, wc, wev)) = &state.last_write {
                    if *wt != t && !clock.covers(*wt, *wc) {
                        races.push(RaceReport {
                            obj: ev.obj,
                            first: *wev,
                            second: *ev,
                        });
                    }
                }
                for (rt, (rc, rev)) in &state.reads {
                    if *rt != t && !clock.covers(*rt, *rc) {
                        races.push(RaceReport {
                            obj: ev.obj,
                            first: *rev,
                            second: *ev,
                        });
                    }
                }
                state.reads.clear();
                state.last_write = Some((t, clock.get(t), *ev));
            }
            _ => unreachable!("filtered above"),
        }
    }
    races
}

/// Convenience: the distinct objects involved in the given races.
pub fn racy_objects(races: &[RaceReport]) -> Vec<ObjId> {
    let mut objs: Vec<ObjId> = races.iter().map(|r| r.obj).collect();
    objs.sort();
    objs.dedup();
    objs
}

/// Builds a log event for tests and tools.
pub fn event(step: usize, thread: usize, obj: u32, kind: AccessKind, op: usize) -> AccessEvent {
    AccessEvent {
        step,
        thread: ThreadId(thread),
        obj: ObjId(obj),
        kind,
        op_index: op,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use AccessKind::*;

    #[test]
    fn unsynchronized_write_write_races() {
        let log = vec![event(0, 0, 1, WriteData, 0), event(1, 1, 1, WriteData, 0)];
        let races = detect_races(&log);
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].obj, ObjId(1));
    }

    #[test]
    fn unsynchronized_read_write_races() {
        let log = vec![event(0, 0, 1, ReadData, 0), event(1, 1, 1, WriteData, 0)];
        assert_eq!(detect_races(&log).len(), 1);
    }

    #[test]
    fn write_read_races() {
        let log = vec![event(0, 0, 1, WriteData, 0), event(1, 1, 1, ReadData, 0)];
        assert_eq!(detect_races(&log).len(), 1);
    }

    #[test]
    fn reads_do_not_race() {
        let log = vec![event(0, 0, 1, ReadData, 0), event(1, 1, 1, ReadData, 0)];
        assert!(detect_races(&log).is_empty());
    }

    #[test]
    fn same_thread_never_races() {
        let log = vec![
            event(0, 0, 1, WriteData, 0),
            event(1, 0, 1, WriteData, 1),
            event(2, 0, 1, ReadData, 2),
        ];
        assert!(detect_races(&log).is_empty());
    }

    /// Lock-protected accesses are ordered through the lock's clock.
    #[test]
    fn lock_discipline_prevents_races() {
        let log = vec![
            event(0, 0, 9, LockAcquire, 0),
            event(1, 0, 1, WriteData, 0),
            event(2, 0, 9, LockRelease, 0),
            event(3, 1, 9, LockAcquire, 0),
            event(4, 1, 1, WriteData, 0),
            event(5, 1, 9, LockRelease, 0),
        ];
        assert!(detect_races(&log).is_empty());
    }

    /// Synchronizing through a *different* lock does not help.
    #[test]
    fn wrong_lock_still_races() {
        let log = vec![
            event(0, 0, 8, LockAcquire, 0),
            event(1, 0, 1, WriteData, 0),
            event(2, 0, 8, LockRelease, 0),
            event(3, 1, 9, LockAcquire, 0),
            event(4, 1, 1, WriteData, 0),
            event(5, 1, 9, LockRelease, 0),
        ];
        assert_eq!(detect_races(&log).len(), 1);
    }

    /// Volatile/atomic accesses synchronize: the benign pattern the paper
    /// saw everywhere ("a disciplined use of volatile qualifiers and
    /// interlocked operations").
    #[test]
    fn volatile_flag_publication_is_race_free() {
        let log = vec![
            event(0, 0, 1, WriteData, 0),   // init data
            event(1, 0, 2, AtomicStore, 0), // publish flag
            event(2, 1, 2, AtomicLoad, 0),  // consume flag
            event(3, 1, 1, ReadData, 0),    // read data
        ];
        assert!(detect_races(&log).is_empty());
    }

    /// Atomic accesses themselves never race.
    #[test]
    fn atomics_never_race() {
        let log = vec![
            event(0, 0, 2, AtomicStore, 0),
            event(1, 1, 2, AtomicRmw { success: true }, 0),
            event(2, 0, 2, AtomicLoad, 1),
        ];
        assert!(detect_races(&log).is_empty());
    }

    #[test]
    fn racy_objects_deduplicates() {
        let log = vec![
            event(0, 0, 1, WriteData, 0),
            event(1, 1, 1, WriteData, 0),
            event(2, 0, 1, WriteData, 1),
        ];
        let races = detect_races(&log);
        assert!(races.len() >= 2);
        assert_eq!(racy_objects(&races), vec![ObjId(1)]);
    }
}
