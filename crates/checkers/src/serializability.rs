//! Conflict-serializability (atomicity) monitoring, after Farzan &
//! Madhusudan (CAV 2008) as used in the paper's §5.6 comparison: each
//! operation of the test is a transaction; an execution is conflict-
//! serializable iff its transaction conflict graph is acyclic.
//!
//! The paper implemented this to compare against Line-Up and "abandoned
//! the effort of classifying [the hundreds of] warnings" because correct
//! lock-free code routinely violates conflict serializability (failed-CAS
//! retries, double-checked timing optimizations, `==` state tests, lazy
//! initialization) — see the four benign patterns listed in §5.6.

use std::collections::{HashMap, HashSet};

use lineup_sched::{AccessEvent, ObjId};

/// A transaction id: one operation of one thread.
pub type TxId = (usize, usize); // (thread, op_index)

/// One edge of the conflict graph, with a witnessing access pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictEdge {
    /// Source transaction (performed the earlier conflicting access).
    pub from: TxId,
    /// Target transaction.
    pub to: TxId,
    /// The object both accesses touch.
    pub obj: ObjId,
    /// The earlier access.
    pub first: AccessEvent,
    /// The later access.
    pub second: AccessEvent,
}

/// The result of a serializability check: a cycle in the conflict graph,
/// reported as the list of transactions along it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerializabilityViolation {
    /// The transactions forming the cycle, in order.
    pub cycle: Vec<TxId>,
    /// All conflict edges of the execution (for diagnosis).
    pub edges: Vec<ConflictEdge>,
}

/// Checks one execution's access log for conflict serializability.
///
/// Every access is considered — including synchronizing ones (lock and
/// interlocked operations conflict like writes), which is exactly why the
/// monitor flags correct lock-free code: a failed CAS is a read the
/// serialization must order, even though the algorithm retried precisely
/// because the order did not matter.
///
/// Returns `Ok(edge_count)` when serializable, or the violation.
///
/// # Example
///
/// ```
/// use lineup_checkers::check_serializability;
/// assert_eq!(check_serializability(&[]), Ok(0));
/// ```
pub fn check_serializability(log: &[AccessEvent]) -> Result<usize, Box<SerializabilityViolation>> {
    // Gather conflicting pairs in execution order.
    let mut edges: Vec<ConflictEdge> = Vec::new();
    let mut seen_edges: HashSet<(TxId, TxId, ObjId)> = HashSet::new();
    // Last readers/writer per object, with their transactions.
    struct ObjState {
        last_accesses: Vec<AccessEvent>,
    }
    let mut objects: HashMap<ObjId, ObjState> = HashMap::new();

    let relevant = |e: &AccessEvent| e.kind.is_read() || e.kind.is_write() || e.kind.is_sync();
    let tx = |e: &AccessEvent| (e.thread.index(), e.op_index);
    // Lock/monitor operations act like writes on the lock object.
    let writes = |e: &AccessEvent| e.kind.is_write() || (e.kind.is_sync() && !e.kind.is_read());

    for ev in log.iter().filter(|e| relevant(e)) {
        let state = objects.entry(ev.obj).or_insert(ObjState {
            last_accesses: Vec::new(),
        });
        for prev in &state.last_accesses {
            if tx(prev) == tx(ev) {
                continue;
            }
            // Conflict: same object, at least one side writes.
            if writes(prev) || writes(ev) {
                let key = (tx(prev), tx(ev), ev.obj);
                if seen_edges.insert(key) {
                    edges.push(ConflictEdge {
                        from: tx(prev),
                        to: tx(ev),
                        obj: ev.obj,
                        first: *prev,
                        second: *ev,
                    });
                }
            }
        }
        state.last_accesses.push(*ev);
    }

    // Cycle detection over the transaction graph.
    let mut adj: HashMap<TxId, Vec<TxId>> = HashMap::new();
    let mut nodes: HashSet<TxId> = HashSet::new();
    for e in &edges {
        adj.entry(e.from).or_default().push(e.to);
        nodes.insert(e.from);
        nodes.insert(e.to);
    }
    // Iterative DFS with colors.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color: HashMap<TxId, Color> = nodes.iter().map(|&n| (n, Color::White)).collect();
    let mut sorted_nodes: Vec<TxId> = nodes.iter().copied().collect();
    sorted_nodes.sort();

    for &start in &sorted_nodes {
        if color[&start] != Color::White {
            continue;
        }
        // Stack of (node, next-child-index), tracking the gray path.
        let mut stack: Vec<(TxId, usize)> = vec![(start, 0)];
        color.insert(start, Color::Gray);
        while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
            let children = adj.get(&node).map(Vec::as_slice).unwrap_or(&[]);
            if *idx < children.len() {
                let child = children[*idx];
                *idx += 1;
                match color[&child] {
                    Color::White => {
                        color.insert(child, Color::Gray);
                        stack.push((child, 0));
                    }
                    Color::Gray => {
                        // Found a cycle: extract the gray path from child.
                        let pos = stack
                            .iter()
                            .position(|&(n, _)| n == child)
                            .expect("gray node on stack");
                        let cycle: Vec<TxId> = stack[pos..].iter().map(|&(n, _)| n).collect();
                        return Err(Box::new(SerializabilityViolation { cycle, edges }));
                    }
                    Color::Black => {}
                }
            } else {
                color.insert(node, Color::Black);
                stack.pop();
            }
        }
    }
    Ok(edges.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::race::event;
    use lineup_sched::AccessKind::*;

    #[test]
    fn serial_transactions_are_serializable() {
        // T(0,0) fully before T(1,0).
        let log = vec![
            event(0, 0, 1, AtomicLoad, 0),
            event(1, 0, 1, AtomicStore, 0),
            event(2, 1, 1, AtomicLoad, 0),
            event(3, 1, 1, AtomicStore, 0),
        ];
        let r = check_serializability(&log);
        assert!(r.is_ok());
        assert!(r.unwrap() >= 1, "edges exist, but no cycle");
    }

    /// The classic non-serializable interleaving: T0 reads, T1 writes,
    /// T0 writes — T0 must be both before and after T1.
    #[test]
    fn interleaved_rmw_is_not_serializable() {
        let log = vec![
            event(0, 0, 1, AtomicLoad, 0),
            event(1, 1, 1, AtomicStore, 0),
            event(2, 0, 1, AtomicStore, 0),
        ];
        let v = check_serializability(&log).unwrap_err();
        assert_eq!(v.cycle.len(), 2);
        assert!(v.cycle.contains(&(0, 0)));
        assert!(v.cycle.contains(&(1, 0)));
    }

    /// The §5.6 pattern 1: a failed CAS inside a retry loop creates the
    /// same cycle even though the retried algorithm is correct.
    #[test]
    fn failed_cas_retry_is_flagged() {
        let log = vec![
            event(0, 0, 1, AtomicLoad, 0),                   // T0 reads top
            event(1, 1, 1, AtomicRmw { success: true }, 0),  // T1 pushes
            event(2, 0, 1, AtomicRmw { success: false }, 0), // T0 CAS fails
            event(3, 0, 1, AtomicLoad, 0),                   // T0 retries: reads
            event(4, 0, 1, AtomicRmw { success: true }, 0),  // T0 succeeds
        ];
        assert!(check_serializability(&log).is_err());
    }

    /// Reads of different transactions do not conflict.
    #[test]
    fn read_only_transactions_are_serializable() {
        let log = vec![
            event(0, 0, 1, AtomicLoad, 0),
            event(1, 1, 1, AtomicLoad, 0),
            event(2, 0, 1, AtomicLoad, 1),
        ];
        assert_eq!(check_serializability(&log), Ok(0));
    }

    /// Different objects never conflict.
    #[test]
    fn disjoint_objects_are_serializable() {
        let log = vec![
            event(0, 0, 1, AtomicStore, 0),
            event(1, 1, 2, AtomicStore, 0),
            event(2, 0, 2, AtomicLoad, 0),
        ];
        assert!(check_serializability(&log).is_ok());
    }

    /// Three-transaction cycle.
    #[test]
    fn three_way_cycle_detected() {
        let log = vec![
            event(0, 0, 1, AtomicStore, 0), // T0 → others on obj 1
            event(1, 1, 1, AtomicStore, 0), // T0→T1
            event(2, 1, 2, AtomicStore, 0),
            event(3, 2, 2, AtomicStore, 0), // T1→T2
            event(4, 2, 3, AtomicStore, 0),
            event(5, 0, 3, AtomicStore, 0), // T2→T0: cycle
        ];
        let v = check_serializability(&log).unwrap_err();
        assert_eq!(v.cycle.len(), 3);
    }

    /// Same thread, different operations: distinct transactions, ordered
    /// by program order via their conflicts — no false cycle.
    #[test]
    fn successive_ops_of_one_thread_are_fine() {
        let log = vec![
            event(0, 0, 1, AtomicStore, 0),
            event(1, 0, 1, AtomicStore, 1),
            event(2, 0, 1, AtomicLoad, 2),
        ];
        assert!(check_serializability(&log).is_ok());
    }

    /// Lock operations conflict like writes on the lock object (the
    /// source of many of the paper's false alarms).
    #[test]
    fn lock_handoff_creates_edges() {
        let log = vec![
            event(0, 0, 9, LockAcquire, 0),
            event(1, 0, 9, LockRelease, 0),
            event(2, 1, 9, LockAcquire, 0),
            event(3, 1, 9, LockRelease, 0),
        ];
        let edges = check_serializability(&log).unwrap();
        assert!(edges >= 1);
    }
}
