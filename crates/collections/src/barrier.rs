#![allow(clippy::result_unit_err)] // modelled .NET exceptions are `Err(())` responses

//! `Barrier`: a phase barrier — "a classic example of a nonlinearizable
//! class" (root cause **L**, paper §5.3).
//!
//! `SignalAndWait` blocks each thread until all participants have entered
//! the barrier, "a behavior that is not equivalent to any serial
//! execution": serially, the first `SignalAndWait` can only block, so no
//! serial witness exists for the concurrent histories in which all
//! participants pass through. Line-Up reports the violation; the
//! classification as *intentional nonlinearizability* is the human step.

use lineup::{Invocation, TestInstance, TestTarget, Value};
use lineup_sync::{DataCell, Monitor};

/// A reusable phase barrier in the style of .NET's `Barrier`.
#[derive(Debug)]
pub struct Barrier {
    monitor: Monitor,
    participants: DataCell<i64>,
    arrived: DataCell<i64>,
    phase: DataCell<i64>,
}

impl Barrier {
    /// Creates a barrier for `participants` threads.
    pub fn new(participants: i64) -> Self {
        assert!(participants > 0, "participants must be positive");
        Barrier {
            monitor: Monitor::new(),
            participants: DataCell::new(participants),
            arrived: DataCell::new(0),
            phase: DataCell::new(0),
        }
    }

    /// Signals arrival and blocks until every participant of the current
    /// phase has arrived; returns the phase number that completed.
    pub fn signal_and_wait(&self) -> i64 {
        self.monitor.enter();
        let my_phase = self.phase.get();
        self.arrived.set(self.arrived.get() + 1);
        if self.arrived.get() == self.participants.get() {
            // Last arriver: release the phase.
            self.arrived.set(0);
            self.phase.set(my_phase + 1);
            self.monitor.pulse_all();
        } else {
            while self.phase.get() == my_phase {
                self.monitor.wait();
            }
        }
        self.monitor.exit();
        my_phase
    }

    /// The current phase number.
    pub fn current_phase_number(&self) -> i64 {
        self.monitor.enter();
        let p = self.phase.get();
        self.monitor.exit();
        p
    }

    /// The number of participants.
    pub fn participant_count(&self) -> i64 {
        self.monitor.enter();
        let p = self.participants.get();
        self.monitor.exit();
        p
    }

    /// Participants that still have to arrive in the current phase.
    pub fn participants_remaining(&self) -> i64 {
        self.monitor.enter();
        let r = self.participants.get() - self.arrived.get();
        self.monitor.exit();
        r
    }

    /// Adds a participant; returns the current phase.
    pub fn add_participant(&self) -> i64 {
        self.monitor.enter();
        self.participants.set(self.participants.get() + 1);
        let p = self.phase.get();
        self.monitor.exit();
        p
    }

    /// Removes a participant; releases the phase if the removal satisfies
    /// it. Returns `Err(())` when no participant can be removed.
    pub fn remove_participant(&self) -> Result<(), ()> {
        self.monitor.enter();
        let result = if self.participants.get() <= 1 {
            Err(())
        } else {
            self.participants.set(self.participants.get() - 1);
            if self.arrived.get() == self.participants.get() && self.arrived.get() > 0 {
                self.arrived.set(0);
                self.phase.set(self.phase.get() + 1);
                self.monitor.pulse_all();
            }
            Ok(())
        };
        self.monitor.exit();
        result
    }
}

/// Line-Up target for [`Barrier`]. Invocations follow Table 1:
/// `SignalAndWait`, `ParticipantsRemaining`, `RemoveParticipant`,
/// `CurrentPhaseNumber`, `ParticipantCount`, `AddParticipant`.
#[derive(Debug, Clone, Copy)]
pub struct BarrierTarget {
    /// Number of participants of fresh instances.
    pub participants: i64,
}

impl TestInstance for Barrier {
    fn invoke(&self, inv: &Invocation) -> Value {
        match inv.name.as_str() {
            "SignalAndWait" => Value::Int(self.signal_and_wait()),
            "CurrentPhaseNumber" => Value::Int(self.current_phase_number()),
            "ParticipantCount" => Value::Int(self.participant_count()),
            "ParticipantsRemaining" => Value::Int(self.participants_remaining()),
            "AddParticipant" => Value::Int(self.add_participant()),
            "RemoveParticipant" => match self.remove_participant() {
                Ok(()) => Value::Unit,
                Err(()) => Value::Str("InvalidOperationException".into()),
            },
            other => panic!("Barrier: unknown operation {other}"),
        }
    }
}

impl TestTarget for BarrierTarget {
    type Instance = Barrier;

    fn name(&self) -> &str {
        "Barrier"
    }

    fn create(&self) -> Barrier {
        Barrier::new(self.participants)
    }

    fn invocations(&self) -> Vec<Invocation> {
        vec![
            Invocation::new("SignalAndWait"),
            Invocation::new("ParticipantsRemaining"),
            Invocation::new("CurrentPhaseNumber"),
            Invocation::new("ParticipantCount"),
            Invocation::new("AddParticipant"),
            Invocation::new("RemoveParticipant"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lineup::{check, CheckOptions, TestMatrix};

    #[test]
    fn unmodelled_observers() {
        let b = Barrier::new(2);
        assert_eq!(b.participant_count(), 2);
        assert_eq!(b.participants_remaining(), 2);
        assert_eq!(b.current_phase_number(), 0);
        assert_eq!(b.add_participant(), 0);
        assert_eq!(b.participant_count(), 3);
        assert_eq!(b.remove_participant(), Ok(()));
        assert_eq!(b.participant_count(), 2);
    }

    #[test]
    fn single_participant_barrier_never_blocks() {
        let b = Barrier::new(1);
        assert_eq!(b.signal_and_wait(), 0);
        assert_eq!(b.signal_and_wait(), 1);
        assert_eq!(b.current_phase_number(), 2);
    }

    /// Root cause L: two participants passing the barrier together is not
    /// equivalent to any serial execution — serially, the first
    /// SignalAndWait can only block.
    #[test]
    fn barrier_is_not_linearizable() {
        let t = BarrierTarget { participants: 2 };
        let m = TestMatrix::from_columns(vec![
            vec![Invocation::new("SignalAndWait")],
            vec![Invocation::new("SignalAndWait")],
        ]);
        let report = check(&t, &m, &CheckOptions::new());
        assert!(!report.passed(), "root cause L must be flagged");
        // Phase 1's serial runs all get stuck on the first SignalAndWait.
        assert_eq!(report.spec.full_count(), 0);
        assert!(report.spec.stuck_count() > 0);
        // The violating concurrent history completes in full.
        assert!(matches!(
            report.first_violation(),
            Some(lineup::Violation::NoWitness { .. })
        ));
    }

    /// Observers alone are perfectly linearizable.
    #[test]
    fn observers_pass() {
        let t = BarrierTarget { participants: 2 };
        let m = TestMatrix::from_columns(vec![
            vec![
                Invocation::new("AddParticipant"),
                Invocation::new("ParticipantCount"),
            ],
            vec![
                Invocation::new("RemoveParticipant"),
                Invocation::new("ParticipantsRemaining"),
            ],
        ]);
        let report = check(&t, &m, &CheckOptions::new());
        assert!(report.passed(), "{:?}", report.violations);
    }
}
