#![allow(clippy::result_unit_err)] // modelled .NET exceptions are `Err(())` responses

//! `BlockingCollection`: a bounded blocking producer/consumer collection.
//!
//! `Add`/`Take` block on capacity/emptiness; `TryAdd`/`TryTake` are
//! non-blocking (with timed variants whose modelled timeouts may fire
//! under contention); `CompleteAdding` marks the collection as done.
//!
//! Three of the paper's root causes live here and are **intentional** —
//! Line-Up reports them as violations of deterministic linearizability,
//! and the developers "decided instead to change the official
//! documentation of these methods" (§5.2.2) or accepted the
//! nonlinearizability (§5.3):
//!
//! * **I** — `Count` computes `added − taken` from two *separate* volatile
//!   reads with no lock: interleaved producers/consumers can make it
//!   return 0 even when the collection is never empty.
//! * **J** — `TryTake` has a lock-free fast path using the same counters:
//!   it can report failure although the collection is non-empty at every
//!   linearization point.
//! * **K** — `CompleteAdding` only *requests* completion; the effect is
//!   applied lazily at the end of subsequent operations, "well after the
//!   method has returned", so two adds racing after a completed
//!   `CompleteAdding` can both succeed — impossible in any serialization.

use lineup::{Invocation, TestInstance, TestTarget, Value};
use lineup_sync::{DataCell, Monitor, VolatileCell};

use crate::support::{int_arg, try_result};

/// A bounded blocking collection (FIFO order, like the default
/// `ConcurrentQueue` backing store of the .NET original).
#[derive(Debug)]
pub struct BlockingCollection {
    monitor: Monitor,
    items: DataCell<std::collections::VecDeque<i64>>,
    capacity: usize,
    /// Lifetime totals, written under the monitor but *read* lock-free by
    /// `Count` and the `TryTake` fast path (root causes I and J).
    added_total: VolatileCell<i64>,
    taken_total: VolatileCell<i64>,
    /// Root cause K: completion is requested immediately…
    complete_requested: VolatileCell<bool>,
    /// …but only becomes effective when some later operation promotes it.
    complete_done: VolatileCell<bool>,
}

impl BlockingCollection {
    /// Creates an empty collection with the given bounded capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        BlockingCollection {
            monitor: Monitor::new(),
            items: DataCell::new(std::collections::VecDeque::new()),
            capacity,
            added_total: VolatileCell::new(0),
            taken_total: VolatileCell::new(0),
            complete_requested: VolatileCell::new(false),
            complete_done: VolatileCell::new(false),
        }
    }

    /// Applies a pending completion request (root cause K: runs at the
    /// *end* of other operations, not inside `CompleteAdding`).
    fn promote_completion(&self) {
        if self.complete_requested.read() && !self.complete_done.read() {
            self.complete_done.write(true);
        }
    }

    /// Adds an element, blocking while the collection is full. Returns
    /// `Err(())` when adding has (effectively) completed.
    pub fn add(&self, value: i64) -> Result<(), ()> {
        self.monitor.enter();
        let result = loop {
            if self.complete_done.read() {
                break Err(());
            }
            if self.items.with(|q| q.len()) < self.capacity {
                self.items.with_mut(|q| q.push_back(value));
                self.added_total.write(self.added_total.read() + 1);
                self.monitor.pulse_all();
                break Ok(());
            }
            self.monitor.wait();
        };
        self.monitor.exit();
        self.promote_completion();
        result
    }

    /// Adds without blocking; `false` when full or completed.
    pub fn try_add(&self, value: i64) -> bool {
        self.monitor.enter();
        let ok = !self.complete_done.read() && self.items.with(|q| q.len()) < self.capacity;
        if ok {
            self.items.with_mut(|q| q.push_back(value));
            self.added_total.write(self.added_total.read() + 1);
            self.monitor.pulse_all();
        }
        self.monitor.exit();
        self.promote_completion();
        ok
    }

    /// Adds with a modelled timeout (`TryAdd(1)`): when the collection is
    /// full, nondeterministically waits for room or gives up.
    pub fn try_add_timed(&self, value: i64) -> bool {
        self.monitor.enter();
        let ok = loop {
            if self.complete_done.read() {
                break false;
            }
            if self.items.with(|q| q.len()) < self.capacity {
                self.items.with_mut(|q| q.push_back(value));
                self.added_total.write(self.added_total.read() + 1);
                self.monitor.pulse_all();
                break true;
            }
            if !self.monitor.wait_timed() {
                break false; // timeout fired
            }
        };
        self.monitor.exit();
        self.promote_completion();
        ok
    }

    /// Removes the oldest element, blocking while empty. Returns
    /// `Err(())` when the collection is completed and empty.
    pub fn take(&self) -> Result<i64, ()> {
        self.monitor.enter();
        let result = loop {
            if let Some(v) = self.items.with_mut(|q| q.pop_front()) {
                self.taken_total.write(self.taken_total.read() + 1);
                self.monitor.pulse_all();
                break Ok(v);
            }
            if self.complete_done.read() {
                break Err(());
            }
            self.monitor.wait();
        };
        self.monitor.exit();
        self.promote_completion();
        result
    }

    /// Removes without blocking; `None` when (observed as) empty.
    ///
    /// Root cause J: the lock-free fast path may observe an inconsistent
    /// `added − taken` snapshot and fail although the collection is
    /// non-empty in every serialization.
    pub fn try_take(&self) -> Option<i64> {
        // Fast path: two separate volatile reads.
        if self.added_total.read() - self.taken_total.read() <= 0 {
            self.promote_completion();
            return None;
        }
        self.monitor.enter();
        let v = self.items.with_mut(|q| q.pop_front());
        if v.is_some() {
            self.taken_total.write(self.taken_total.read() + 1);
            self.monitor.pulse_all();
        }
        self.monitor.exit();
        self.promote_completion();
        v
    }

    /// Removes with a modelled timeout (`TryTake(1)`).
    pub fn try_take_timed(&self) -> Option<i64> {
        self.monitor.enter();
        let result = loop {
            if let Some(v) = self.items.with_mut(|q| q.pop_front()) {
                self.taken_total.write(self.taken_total.read() + 1);
                self.monitor.pulse_all();
                break Some(v);
            }
            if self.complete_done.read() || !self.monitor.wait_timed() {
                break None;
            }
        };
        self.monitor.exit();
        self.promote_completion();
        result
    }

    /// The number of elements — root cause I: `added − taken` from two
    /// separate volatile reads, no lock.
    pub fn count(&self) -> i64 {
        let added = self.added_total.read();
        let taken = self.taken_total.read();
        self.promote_completion();
        (added - taken).max(0)
    }

    /// Snapshot of the contents, oldest first (consistent: holds the lock).
    pub fn to_vec(&self) -> Vec<i64> {
        self.monitor.enter();
        let v = self.items.with(|q| q.iter().copied().collect());
        self.monitor.exit();
        self.promote_completion();
        v
    }

    /// Requests completion of adding. Root cause K: returns immediately;
    /// the effect lands when a later operation promotes it.
    pub fn complete_adding(&self) {
        self.complete_requested.write(true);
    }

    /// Whether adding has (effectively) completed.
    pub fn is_adding_completed(&self) -> bool {
        let done = self.complete_done.read();
        self.promote_completion();
        done
    }

    /// Whether the collection is completed and drained.
    pub fn is_completed(&self) -> bool {
        self.monitor.enter();
        let r = self.complete_done.read() && self.items.with(|q| q.is_empty());
        self.monitor.exit();
        self.promote_completion();
        r
    }
}

/// Line-Up target for [`BlockingCollection`]. Invocations follow Table 1:
/// `Count`, `ToArray`, `TryAdd`, `TryAdd(1)`, `IsCompleted`,
/// `IsAddingCompleted`, `CompleteAdding`, `Add`, `Take`, `TakeWithEnum`,
/// `TryTake`, `TryTake(1)`.
#[derive(Debug, Clone, Copy)]
pub struct BlockingCollectionTarget {
    /// Bounded capacity of fresh instances.
    pub capacity: usize,
}

impl TestInstance for BlockingCollection {
    fn invoke(&self, inv: &Invocation) -> Value {
        match (inv.name.as_str(), inv.args.len()) {
            ("Add", _) => match self.add(int_arg(inv)) {
                Ok(()) => Value::Unit,
                Err(()) => Value::Str("InvalidOperationException".into()),
            },
            ("Take", 0) | ("TakeWithEnum", 0) => match self.take() {
                Ok(v) => Value::Int(v),
                Err(()) => Value::Str("InvalidOperationException".into()),
            },
            ("TryAdd", 1) => Value::Bool(self.try_add(int_arg(inv))),
            ("TryAddTimed", 1) => Value::Bool(self.try_add_timed(int_arg(inv))),
            ("TryTake", 0) => try_result(self.try_take()),
            ("TryTakeTimed", 0) => try_result(self.try_take_timed()),
            ("Count", _) => Value::Int(self.count()),
            ("ToArray", _) => Value::int_seq(self.to_vec()),
            ("CompleteAdding", _) => {
                self.complete_adding();
                Value::Unit
            }
            ("IsAddingCompleted", _) => Value::Bool(self.is_adding_completed()),
            ("IsCompleted", _) => Value::Bool(self.is_completed()),
            (other, _) => panic!("BlockingCollection: unknown operation {other}"),
        }
    }
}

impl TestTarget for BlockingCollectionTarget {
    type Instance = BlockingCollection;

    fn name(&self) -> &str {
        "BlockingCollection"
    }

    fn create(&self) -> BlockingCollection {
        BlockingCollection::new(self.capacity)
    }

    fn invocations(&self) -> Vec<Invocation> {
        vec![
            Invocation::with_int("Add", 10),
            Invocation::with_int("TryAdd", 20),
            Invocation::new("Take"),
            Invocation::new("TryTake"),
            Invocation::new("TryTakeTimed"),
            Invocation::new("Count"),
            Invocation::new("ToArray"),
            Invocation::new("CompleteAdding"),
            Invocation::new("IsAddingCompleted"),
            Invocation::new("IsCompleted"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lineup::{check, CheckOptions, TestMatrix};

    fn target() -> BlockingCollectionTarget {
        BlockingCollectionTarget { capacity: 4 }
    }

    #[test]
    fn unmodelled_basics() {
        let c = BlockingCollection::new(2);
        assert!(c.try_add(1));
        assert!(c.try_add(2));
        assert!(!c.try_add(3), "full");
        assert_eq!(c.count(), 2);
        assert_eq!(c.to_vec(), vec![1, 2]);
        assert_eq!(c.try_take(), Some(1));
        assert_eq!(c.take(), Ok(2));
        assert_eq!(c.try_take(), None);
        assert!(!c.is_adding_completed());
        c.complete_adding();
        // K: the effect is lazy — the *next* operation applies it.
        assert!(!c.is_adding_completed(), "not yet promoted");
        assert!(c.is_adding_completed(), "promoted by the previous call");
        assert!(!c.try_add(9));
        assert!(c.is_completed());
    }

    #[test]
    fn producer_consumer_blocking_passes() {
        // Add ∥ Take with capacity 1: blocking in both directions; the
        // fixed behavior is deterministically linearizable.
        let t = BlockingCollectionTarget { capacity: 1 };
        let m = TestMatrix::from_columns(vec![
            vec![
                Invocation::with_int("Add", 10),
                Invocation::with_int("Add", 20),
            ],
            vec![Invocation::new("Take")],
        ]);
        let report = check(&t, &m, &CheckOptions::new());
        assert!(report.passed(), "{:?}", report.violations);
        assert!(report.spec.stuck_count() > 0, "Take-first blocks serially");
    }

    /// Root cause I: Count returns 0 although the collection holds at
    /// least one element at every possible linearization point.
    #[test]
    fn count_returns_zero_on_nonempty_collection() {
        let m = TestMatrix::from_columns(vec![
            vec![Invocation::new("Count")],
            vec![
                Invocation::new("Take"),
                Invocation::with_int("Add", 30),
                Invocation::new("Take"),
            ],
        ])
        .with_init(vec![
            Invocation::with_int("Add", 10),
            Invocation::with_int("Add", 20),
        ]);
        let report = check(&target(), &m, &CheckOptions::new());
        assert!(!report.passed(), "root cause I must be flagged");
    }

    /// Root cause J: TryTake fails although the collection is non-empty
    /// in every serialization.
    #[test]
    fn try_take_fails_on_nonempty_collection() {
        let m = TestMatrix::from_columns(vec![
            vec![Invocation::new("TryTake")],
            vec![
                Invocation::new("Take"),
                Invocation::with_int("Add", 30),
                Invocation::new("Take"),
            ],
        ])
        .with_init(vec![
            Invocation::with_int("Add", 10),
            Invocation::with_int("Add", 20),
        ]);
        let report = check(&target(), &m, &CheckOptions::new());
        assert!(!report.passed(), "root cause J must be flagged");
    }

    /// Root cause K: after CompleteAdding has returned, two racing adds
    /// can both succeed — impossible serially.
    #[test]
    fn complete_adding_effects_after_return() {
        let m = TestMatrix::from_columns(vec![
            vec![Invocation::new("CompleteAdding")],
            vec![Invocation::with_int("TryAdd", 10)],
            vec![Invocation::with_int("TryAdd", 20)],
        ]);
        let report = check(&target(), &m, &CheckOptions::new());
        assert!(!report.passed(), "root cause K must be flagged");
    }

    /// Timed TryTake under contention both succeeds and times out; the
    /// check passes because the serial behavior (timeout on empty) covers
    /// the failure outcome deterministically — the collection was empty at
    /// the take's linearization point in those schedules.
    #[test]
    fn timed_try_take_passes_on_empty() {
        let m = TestMatrix::from_columns(vec![
            vec![Invocation::new("TryTakeTimed")],
            vec![Invocation::new("TryTakeTimed")],
        ]);
        let report = check(&target(), &m, &CheckOptions::new());
        assert!(report.passed(), "{:?}", report.violations);
    }
}
