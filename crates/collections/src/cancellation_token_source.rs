//! `CancellationTokenSource`: a cooperative cancellation state machine.
//!
//! `Cancel` transitions `NotCanceled → Notifying → Canceled` (running the
//! registered callbacks while `Notifying`); observers poll the state with
//! plain equality comparisons — the §5.6 benign pattern #3: "the current
//! state is read and compared using a `==` operator. At an abstract level,
//! this comparison is a right-mover, but a simple serializability detector
//! does not know that." (No seeded defect; the paper found none here
//! either, only serializability false alarms.)
//!
//! The Table 1 entry lists `Increment, Cancel` — `Increment` models the
//! internal user-token registration counter of the preview sources.

use lineup::{Invocation, TestInstance, TestTarget, Value};
use lineup_sync::Atomic;

/// Cancellation states.
const NOT_CANCELED: i64 = 0;
const NOTIFYING: i64 = 1;
const CANCELED: i64 = 2;

/// A cancellation source in the style of .NET's
/// `CancellationTokenSource`.
#[derive(Debug)]
pub struct CancellationTokenSource {
    state: Atomic<i64>,
    /// Internal registration counter (`Increment` in the paper's method
    /// list): counts token registrations while not canceled.
    registrations: Atomic<i64>,
}

impl CancellationTokenSource {
    /// Creates an uncancelled source.
    pub fn new() -> Self {
        CancellationTokenSource {
            state: Atomic::new(NOT_CANCELED),
            registrations: Atomic::new(0),
        }
    }

    /// Requests cancellation; idempotent. Returns whether this call won
    /// the transition.
    pub fn cancel(&self) -> bool {
        if self
            .state
            .compare_exchange(NOT_CANCELED, NOTIFYING)
            .is_err()
        {
            return false;
        }
        // Callback notification would run here, while `Notifying`.
        self.state.store(CANCELED);
        true
    }

    /// Whether cancellation has been requested (`Notifying` counts, as in
    /// the original). The `==`-style state comparison is the §5.6 benign
    /// right-mover pattern.
    pub fn is_cancellation_requested(&self) -> bool {
        self.state.load() != NOT_CANCELED
    }

    /// Whether cancellation has fully completed.
    pub fn is_canceled(&self) -> bool {
        self.state.load() == CANCELED
    }

    /// Registers a token user; fails once cancellation has been requested.
    pub fn increment(&self) -> bool {
        loop {
            if self.state.load() != NOT_CANCELED {
                return false;
            }
            let n = self.registrations.load();
            if self.registrations.compare_exchange(n, n + 1).is_ok() {
                // Re-check: a cancel may have slipped in; back out then.
                if self.state.load() != NOT_CANCELED {
                    self.registrations.fetch_sub(1);
                    return false;
                }
                return true;
            }
        }
    }

    /// The number of live registrations.
    pub fn registrations(&self) -> i64 {
        self.registrations.load()
    }
}

impl Default for CancellationTokenSource {
    fn default() -> Self {
        CancellationTokenSource::new()
    }
}

/// Line-Up target for [`CancellationTokenSource`]. Invocations follow
/// Table 1: `Increment`, `Cancel` (plus the observer
/// `IsCancellationRequested`).
#[derive(Debug, Clone, Copy)]
pub struct CancellationTokenSourceTarget;

impl TestInstance for CancellationTokenSource {
    fn invoke(&self, inv: &Invocation) -> Value {
        match inv.name.as_str() {
            "Cancel" => Value::Bool(self.cancel()),
            "Increment" => Value::Bool(self.increment()),
            "IsCancellationRequested" => Value::Bool(self.is_cancellation_requested()),
            other => panic!("CancellationTokenSource: unknown operation {other}"),
        }
    }
}

impl TestTarget for CancellationTokenSourceTarget {
    type Instance = CancellationTokenSource;

    fn name(&self) -> &str {
        "CancellationTokenSource"
    }

    fn create(&self) -> CancellationTokenSource {
        CancellationTokenSource::new()
    }

    fn invocations(&self) -> Vec<Invocation> {
        vec![
            Invocation::new("Increment"),
            Invocation::new("Cancel"),
            Invocation::new("IsCancellationRequested"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lineup::{check, CheckOptions, TestMatrix};

    #[test]
    fn unmodelled_cancel_semantics() {
        let c = CancellationTokenSource::new();
        assert!(!c.is_cancellation_requested());
        assert!(c.increment());
        assert_eq!(c.registrations(), 1);
        assert!(c.cancel());
        assert!(!c.cancel(), "second cancel loses");
        assert!(c.is_cancellation_requested());
        assert!(c.is_canceled());
        assert!(!c.increment(), "no registration after cancel");
    }

    #[test]
    fn cancel_race_passes_check() {
        let m = TestMatrix::from_columns(vec![
            vec![Invocation::new("Cancel")],
            vec![Invocation::new("Cancel")],
            vec![Invocation::new("IsCancellationRequested")],
        ]);
        let report = check(&CancellationTokenSourceTarget, &m, &CheckOptions::new());
        assert!(report.passed(), "{:?}", report.violations);
    }

    #[test]
    fn increment_vs_cancel_passes_check() {
        let m = TestMatrix::from_columns(vec![
            vec![Invocation::new("Increment"), Invocation::new("Increment")],
            vec![Invocation::new("Cancel")],
        ]);
        let report = check(&CancellationTokenSourceTarget, &m, &CheckOptions::new());
        assert!(report.passed(), "{:?}", report.violations);
    }
}
