//! `ConcurrentBag`: an unordered collection with per-thread storage and
//! work stealing.
//!
//! Each thread owns a local list (created lazily under a global lock —
//! the benign serializability violation #4 of §5.6); `Add` pushes to the
//! caller's list, `TryTake` pops the caller's list LIFO and *steals* from
//! another thread's list FIFO when the local list is empty.
//!
//! Root cause **H** is *intentional nondeterminism*: "a ConcurrentBag
//! represents an unordered collection of items and the implementation is
//! allowed to remove any one of the elements during a TryTake" (§5.2.2).
//! Which element `TryTake` returns depends on which thread runs it and on
//! the interleaving, so concurrent histories arise that match no serial
//! witness; Line-Up reports the violation, and the human classifies it as
//! intended behaviour — exactly what happened in the paper, where the
//! developers updated the documentation instead of the code.

use lineup::{Invocation, SymmetryPolicy, TestInstance, TestTarget, Value};
use lineup_sync::{DataCell, Mutex, VolatileCell};

use crate::support::{int_arg, try_result, Variant};

const MAX_THREADS: usize = 16;

/// One thread-local list with its own lock (stealers contend on it).
#[derive(Debug)]
struct LocalList {
    lock: Mutex,
    items: DataCell<Vec<i64>>,
}

/// One lazily-created slot, published double-checked-style: the data cell
/// is written under the global lock, then the volatile flag is set, so
/// lock-free readers of `published` never race on `list`.
#[derive(Debug)]
struct Slot {
    published: VolatileCell<bool>,
    list: DataCell<Option<std::sync::Arc<LocalList>>>,
}

/// An unordered bag with per-thread lists and stealing.
#[derive(Debug)]
pub struct ConcurrentBag {
    /// Guards lazy creation of the per-thread lists (§5.6 pattern 4: the
    /// lazy initialization takes a global lock, which is benign but
    /// breaks conflict serializability).
    global_lock: Mutex,
    slots: Vec<Slot>,
}

impl ConcurrentBag {
    /// Creates an empty bag.
    pub fn new() -> Self {
        ConcurrentBag {
            global_lock: Mutex::new(),
            slots: (0..MAX_THREADS)
                .map(|_| Slot {
                    published: VolatileCell::new(false),
                    list: DataCell::new(None),
                })
                .collect(),
        }
    }

    fn slot_of(thread: lineup_sched::ThreadId) -> usize {
        thread.index() % MAX_THREADS
    }

    /// The caller's local list, created lazily under the global lock.
    fn my_list(&self) -> std::sync::Arc<LocalList> {
        let slot = &self.slots[Self::slot_of(lineup_sched::current_thread())];
        if slot.published.read() {
            return slot.list.get_clone().expect("published slot has a list");
        }
        // Lazy initialization, global lock held (benign serializability
        // violation: this work "does not affect the current operation in
        // any way").
        self.global_lock.acquire();
        if !slot.published.read() {
            slot.list.set(Some(std::sync::Arc::new(LocalList {
                lock: Mutex::new(),
                items: DataCell::new(Vec::new()),
            })));
            slot.published.write(true);
        }
        let list = slot.list.get_clone().expect("just created");
        self.global_lock.release();
        list
    }

    /// All currently existing lists, in slot order.
    fn all_lists(&self) -> Vec<std::sync::Arc<LocalList>> {
        self.slots
            .iter()
            .filter(|s| s.published.read())
            .map(|s| s.list.get_clone().expect("published slot has a list"))
            .collect()
    }

    /// Adds an element to the caller's local list.
    pub fn add(&self, value: i64) {
        let list = self.my_list();
        list.lock.acquire();
        list.items.with_mut(|v| v.push(value));
        list.lock.release();
    }

    /// Takes some element: LIFO from the local list, else FIFO-steals from
    /// the first non-empty other list. Which element is removed is
    /// unspecified (root cause H).
    pub fn try_take(&self) -> Option<i64> {
        let mine = self.my_list();
        mine.lock.acquire();
        let local = mine.items.with_mut(|v| v.pop());
        mine.lock.release();
        if local.is_some() {
            return local;
        }
        // Steal.
        for list in self.all_lists() {
            list.lock.acquire();
            let stolen = list.items.with_mut(|v| {
                if v.is_empty() {
                    None
                } else {
                    Some(v.remove(0))
                }
            });
            list.lock.release();
            if stolen.is_some() {
                return stolen;
            }
        }
        None
    }

    /// Observes some element without removing it.
    pub fn try_peek(&self) -> Option<i64> {
        let mine = self.my_list();
        mine.lock.acquire();
        let local = mine.items.with(|v| v.last().copied());
        mine.lock.release();
        if local.is_some() {
            return local;
        }
        for list in self.all_lists() {
            list.lock.acquire();
            let seen = list.items.with(|v| v.first().copied());
            list.lock.release();
            if seen.is_some() {
                return seen;
            }
        }
        None
    }

    /// Total number of elements (locks all lists, so the snapshot is
    /// consistent).
    pub fn count(&self) -> usize {
        let lists = self.all_lists();
        for l in &lists {
            l.lock.acquire();
        }
        let n = lists.iter().map(|l| l.items.with(Vec::len)).sum();
        for l in lists.iter().rev() {
            l.lock.release();
        }
        n
    }

    /// Whether the bag is empty.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Snapshot of all elements (sorted, since the bag is unordered and a
    /// deterministic rendering keeps serial specifications deterministic).
    pub fn to_vec(&self) -> Vec<i64> {
        let lists = self.all_lists();
        for l in &lists {
            l.lock.acquire();
        }
        let mut out: Vec<i64> = lists
            .iter()
            .flat_map(|l| l.items.with(|v| v.clone()))
            .collect();
        for l in lists.iter().rev() {
            l.lock.release();
        }
        out.sort_unstable();
        out
    }
}

impl Default for ConcurrentBag {
    fn default() -> Self {
        ConcurrentBag::new()
    }
}

/// Line-Up target for [`ConcurrentBag`]. Invocations follow Table 1:
/// `Count`, `Add(10)`, `Add(20)`, `TryTake`, `IsEmpty`, `TryPeek`,
/// `ToArray`. (The bag has no pre/fixed split: root cause H is inherent.)
#[derive(Debug, Clone, Copy)]
pub struct ConcurrentBagTarget {
    /// Kept for registry symmetry; both variants are the same code.
    pub variant: Variant,
}

impl TestInstance for ConcurrentBag {
    fn invoke(&self, inv: &Invocation) -> Value {
        match inv.name.as_str() {
            "Add" => {
                self.add(int_arg(inv));
                Value::Unit
            }
            "TryTake" => try_result(self.try_take()),
            "TryPeek" => try_result(self.try_peek()),
            "Count" => Value::Int(self.count() as i64),
            "IsEmpty" => Value::Bool(self.is_empty()),
            "ToArray" => Value::int_seq(self.to_vec()),
            other => panic!("ConcurrentBag: unknown operation {other}"),
        }
    }
}

impl TestTarget for ConcurrentBagTarget {
    type Instance = ConcurrentBag;

    fn name(&self) -> &str {
        match self.variant {
            Variant::Fixed => "ConcurrentBag",
            Variant::Pre => "ConcurrentBag (Pre)",
        }
    }

    fn create(&self) -> ConcurrentBag {
        ConcurrentBag::new()
    }

    fn invocations(&self) -> Vec<Invocation> {
        vec![
            Invocation::with_int("Add", 10),
            Invocation::with_int("Add", 20),
            Invocation::new("TryTake"),
            Invocation::new("TryPeek"),
            Invocation::new("Count"),
            Invocation::new("IsEmpty"),
            Invocation::new("ToArray"),
        ]
    }

    /// [`SymmetryPolicy::Disabled`]: the bag's per-thread work-stealing
    /// slots make behaviour depend on
    /// *which* thread performed an `Add`, so renaming threads changes
    /// observable results even for identical operation sequences.
    fn symmetry_policy(&self) -> SymmetryPolicy {
        SymmetryPolicy::Disabled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lineup::{check, CheckOptions, TestMatrix};
    use std::ops::ControlFlow;

    #[test]
    fn unmodelled_bag_basics() {
        let b = ConcurrentBag::new();
        assert!(b.is_empty());
        assert_eq!(b.try_take(), None);
        b.add(1);
        b.add(2);
        assert_eq!(b.count(), 2);
        assert_eq!(b.to_vec(), vec![1, 2]);
        // Single-threaded: LIFO from the local list.
        assert_eq!(b.try_take(), Some(2));
        assert_eq!(b.try_peek(), Some(1));
        assert_eq!(b.try_take(), Some(1));
        assert!(b.is_empty());
    }

    #[test]
    fn model_steal_takes_other_threads_elements() {
        // Thread 0 adds; thread 1 takes — only stealing can succeed.
        let mut took = std::collections::BTreeSet::new();
        let probe = lineup_sched::Probe::new();
        let setup_probe = probe.clone();
        lineup_sched::explore(
            &lineup_sched::Config::preemption_bounded(2),
            move |ex| {
                let bag = std::sync::Arc::new(ConcurrentBag::new());
                let got = std::sync::Arc::new(DataCell::new(None));
                setup_probe.put(std::sync::Arc::clone(&got));
                let b2 = std::sync::Arc::clone(&bag);
                ex.spawn(move || bag.add(7));
                ex.spawn(move || {
                    let v = b2.try_take();
                    got.set(v);
                });
            },
            |_| {
                took.insert(probe.take().get());
                ControlFlow::Continue(())
            },
        );
        assert!(took.contains(&Some(7)), "steal succeeds in some schedule");
        assert!(
            took.contains(&None),
            "take-before-add fails in some schedule"
        );
    }

    /// Root cause H: the multi-list steal scan is not atomic, so a
    /// TryTake can miss *every* element — passing thread 0's slot before
    /// Add(10) lands there, and reaching thread 2's list after its owner
    /// took the 30 — and fail although the bag is non-empty at every
    /// possible linearization point. Line-Up flags the violation; the
    /// paper's developers classified this class of bag behaviour as
    /// intended ("the implementation is allowed to remove any one of the
    /// elements") and documented it instead of fixing it.
    #[test]
    fn bag_scan_miss_violates_deterministic_linearizability() {
        let target = ConcurrentBagTarget {
            variant: Variant::Pre,
        };
        let m = TestMatrix::from_columns(vec![
            vec![Invocation::with_int("Add", 10)],
            vec![Invocation::new("TryTake")],
            vec![Invocation::with_int("Add", 30), Invocation::new("TryTake")],
        ]);
        let report = check(&target, &m, &CheckOptions::new());
        assert!(
            !report.passed(),
            "root cause H (intentional nondeterminism) must be flagged"
        );
    }

    #[test]
    fn single_thread_column_passes() {
        // With one thread everything is deterministic.
        let target = ConcurrentBagTarget {
            variant: Variant::Fixed,
        };
        let m = TestMatrix::from_columns(vec![vec![
            Invocation::with_int("Add", 10),
            Invocation::new("TryTake"),
            Invocation::new("Count"),
        ]]);
        let report = check(&target, &m, &CheckOptions::new());
        assert!(report.passed(), "{:?}", report.violations);
    }
}
