//! `ConcurrentDictionary`: a striped-lock hash map.
//!
//! Buckets are guarded by a small set of stripe locks; `Count` and `Clear`
//! acquire *all* stripes (as the .NET original does) so they observe a
//! consistent snapshot.
//!
//! The **pre** variant carries root cause **F**: the element count is
//! maintained with a plain read-modify-write *outside* the bucket lock, so
//! concurrent `TryAdd`/`TryRemove` lose count updates and `Count` reports
//! values impossible under any serialization.

use lineup::{Invocation, SymmetryPolicy, TestInstance, TestTarget, Value};
use lineup_sync::{DataCell, Mutex};

use crate::support::{int_arg, try_result, Variant};

const STRIPES: usize = 2;

/// A striped-lock hash map from `i64` keys to `i64` values.
#[derive(Debug)]
pub struct ConcurrentDictionary {
    locks: Vec<Mutex>,
    buckets: Vec<DataCell<Vec<(i64, i64)>>>,
    /// Fixed: one counter per stripe, updated under the stripe lock and
    /// summed by `Count` while holding all stripes (the .NET scheme).
    stripe_counts: Vec<DataCell<i64>>,
    /// Pre: a single counter updated with an unlocked read-modify-write
    /// (root cause F).
    shared_count: DataCell<i64>,
    variant: Variant,
}

impl ConcurrentDictionary {
    /// Creates an empty dictionary (fixed variant).
    pub fn new() -> Self {
        ConcurrentDictionary::with_variant(Variant::Fixed)
    }

    /// Creates an empty dictionary of the given variant.
    pub fn with_variant(variant: Variant) -> Self {
        ConcurrentDictionary {
            locks: (0..STRIPES).map(|_| Mutex::new()).collect(),
            buckets: (0..STRIPES).map(|_| DataCell::new(Vec::new())).collect(),
            stripe_counts: (0..STRIPES).map(|_| DataCell::new(0)).collect(),
            shared_count: DataCell::new(0),
            variant,
        }
    }

    fn stripe(&self, key: i64) -> usize {
        (key.unsigned_abs() as usize) % STRIPES
    }

    /// Applies a count delta. In the fixed variant the caller holds the
    /// stripe lock and the delta lands on that stripe's counter; in the
    /// pre variant the unlocked read-modify-write on the shared counter
    /// races (root cause F).
    fn bump_count(&self, stripe: usize, delta: i64) {
        match self.variant {
            Variant::Fixed => self.stripe_counts[stripe].with_mut(|c| *c += delta),
            Variant::Pre => {
                let c = self.shared_count.get();
                self.shared_count.set(c + delta);
            }
        }
    }

    /// Inserts `key → value` if absent; returns whether it was inserted.
    pub fn try_add(&self, key: i64, value: i64) -> bool {
        let s = self.stripe(key);
        self.locks[s].acquire();
        let added = self.buckets[s].with_mut(|b| {
            if b.iter().any(|&(k, _)| k == key) {
                false
            } else {
                b.push((key, value));
                true
            }
        });
        match self.variant {
            Variant::Fixed => {
                if added {
                    self.bump_count(s, 1);
                }
                self.locks[s].release();
            }
            Variant::Pre => {
                // The count update escapes the critical section.
                self.locks[s].release();
                if added {
                    self.bump_count(s, 1);
                }
            }
        }
        added
    }

    /// Removes `key`; returns the removed value.
    pub fn try_remove(&self, key: i64) -> Option<i64> {
        let s = self.stripe(key);
        self.locks[s].acquire();
        let removed = self.buckets[s].with_mut(|b| {
            let pos = b.iter().position(|&(k, _)| k == key)?;
            Some(b.remove(pos).1)
        });
        match self.variant {
            Variant::Fixed => {
                if removed.is_some() {
                    self.bump_count(s, -1);
                }
                self.locks[s].release();
            }
            Variant::Pre => {
                self.locks[s].release();
                if removed.is_some() {
                    self.bump_count(s, -1);
                }
            }
        }
        removed
    }

    /// Looks up `key`.
    pub fn try_get(&self, key: i64) -> Option<i64> {
        let s = self.stripe(key);
        self.locks[s].acquire();
        let v = self.buckets[s].with(|b| b.iter().find(|&&(k, _)| k == key).map(|&(_, v)| v));
        self.locks[s].release();
        v
    }

    /// Indexer read (`dict[key]`); `None` models the .NET
    /// `KeyNotFoundException`.
    pub fn get_index(&self, key: i64) -> Option<i64> {
        self.try_get(key)
    }

    /// Indexer write (`dict[key] = value`): insert or overwrite.
    pub fn set_index(&self, key: i64, value: i64) {
        let s = self.stripe(key);
        self.locks[s].acquire();
        let added = self.buckets[s].with_mut(|b| {
            if let Some(slot) = b.iter_mut().find(|(k, _)| *k == key) {
                slot.1 = value;
                false
            } else {
                b.push((key, value));
                true
            }
        });
        match self.variant {
            Variant::Fixed => {
                if added {
                    self.bump_count(s, 1);
                }
                self.locks[s].release();
            }
            Variant::Pre => {
                self.locks[s].release();
                if added {
                    self.bump_count(s, 1);
                }
            }
        }
    }

    /// Updates `key` to `new` only when present with value `expected`.
    pub fn try_update(&self, key: i64, new: i64, expected: i64) -> bool {
        let s = self.stripe(key);
        self.locks[s].acquire();
        let updated = self.buckets[s].with_mut(|b| {
            if let Some(slot) = b.iter_mut().find(|(k, v)| *k == key && *v == expected) {
                slot.1 = new;
                true
            } else {
                false
            }
        });
        self.locks[s].release();
        updated
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: i64) -> bool {
        self.try_get(key).is_some()
    }

    /// The number of entries. Takes all stripe locks (as the .NET original
    /// does) and reads the maintained count.
    pub fn count(&self) -> i64 {
        for l in &self.locks {
            l.acquire();
        }
        let c = match self.variant {
            Variant::Fixed => self.stripe_counts.iter().map(DataCell::get).sum(),
            Variant::Pre => self.shared_count.get(),
        };
        for l in self.locks.iter().rev() {
            l.release();
        }
        c
    }

    /// Whether the dictionary is empty (same locking as `Count`).
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Removes all entries (takes all stripe locks).
    pub fn clear(&self) {
        for l in &self.locks {
            l.acquire();
        }
        for b in &self.buckets {
            b.with_mut(Vec::clear);
        }
        for c in &self.stripe_counts {
            c.set(0);
        }
        self.shared_count.set(0);
        for l in self.locks.iter().rev() {
            l.release();
        }
    }
}

impl Default for ConcurrentDictionary {
    fn default() -> Self {
        ConcurrentDictionary::new()
    }
}

/// Line-Up target for [`ConcurrentDictionary`]. Invocations follow
/// Table 1: for x ∈ {10, 20}: `TryAdd(x)`, `TryRemove(x)`, `TryGet(x)`,
/// `get[x]`, `set[x]`, `TryUpdate(x)`, `ContainsKey(x)`; plus `Count`,
/// `IsEmpty`, `Clear`.
#[derive(Debug, Clone, Copy)]
pub struct ConcurrentDictionaryTarget {
    /// Fixed or pre (root cause F).
    pub variant: Variant,
}

impl TestInstance for ConcurrentDictionary {
    fn invoke(&self, inv: &Invocation) -> Value {
        let key = || int_arg(inv);
        match inv.name.as_str() {
            "TryAdd" => Value::Bool(self.try_add(key(), key() * 100)),
            "TryRemove" => try_result(self.try_remove(key())),
            "TryGet" => try_result(self.try_get(key())),
            "get" => try_result(self.get_index(key())),
            "set" => {
                self.set_index(key(), key() * 100 + 1);
                Value::Unit
            }
            "TryUpdate" => Value::Bool(self.try_update(key(), key() * 100 + 2, key() * 100)),
            "ContainsKey" => Value::Bool(self.contains_key(key())),
            "Count" => Value::Int(self.count()),
            "IsEmpty" => Value::Bool(self.is_empty()),
            "Clear" => {
                self.clear();
                Value::Unit
            }
            other => panic!("ConcurrentDictionary: unknown operation {other}"),
        }
    }
}

impl TestTarget for ConcurrentDictionaryTarget {
    type Instance = ConcurrentDictionary;

    fn name(&self) -> &str {
        match self.variant {
            Variant::Fixed => "ConcurrentDictionary",
            Variant::Pre => "ConcurrentDictionary (Pre)",
        }
    }

    fn create(&self) -> ConcurrentDictionary {
        ConcurrentDictionary::with_variant(self.variant)
    }

    fn invocations(&self) -> Vec<Invocation> {
        let mut invs = Vec::new();
        for x in [10, 20] {
            for name in [
                "TryAdd",
                "TryRemove",
                "TryGet",
                "get",
                "set",
                "TryUpdate",
                "ContainsKey",
            ] {
                invs.push(Invocation::with_int(name, x));
            }
        }
        invs.push(Invocation::new("Count"));
        invs.push(Invocation::new("IsEmpty"));
        invs.push(Invocation::new("Clear"));
        invs
    }

    /// [`SymmetryPolicy::Full`]: key/value payloads only flow through
    /// equality on distinct fresh
    /// values, so threads running the same operation shapes are
    /// interchangeable up to renaming those values.
    fn symmetry_policy(&self) -> SymmetryPolicy {
        SymmetryPolicy::Full
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lineup::{check, CheckOptions, TestMatrix};

    #[test]
    fn unmodelled_dictionary_basics() {
        let d = ConcurrentDictionary::new();
        assert!(d.is_empty());
        assert!(d.try_add(10, 1000));
        assert!(!d.try_add(10, 9));
        assert_eq!(d.try_get(10), Some(1000));
        assert!(d.contains_key(10));
        assert!(!d.contains_key(20));
        assert!(d.try_update(10, 7, 1000));
        assert_eq!(d.try_get(10), Some(7));
        assert!(!d.try_update(10, 8, 1000));
        d.set_index(20, 5);
        assert_eq!(d.count(), 2);
        assert_eq!(d.try_remove(10), Some(7));
        assert_eq!(d.try_remove(10), None);
        d.clear();
        assert!(d.is_empty());
    }

    #[test]
    fn fixed_passes_add_remove_count() {
        let target = ConcurrentDictionaryTarget {
            variant: Variant::Fixed,
        };
        let m = TestMatrix::from_columns(vec![
            vec![Invocation::with_int("TryAdd", 10)],
            vec![Invocation::with_int("TryAdd", 20)],
        ])
        .with_finally(vec![Invocation::new("Count")]);
        let report = check(&target, &m, &CheckOptions::new());
        assert!(report.passed(), "{:?}", report.violations);
    }

    #[test]
    fn pre_fails_count_after_concurrent_adds() {
        // Root cause F: both adds succeed but a count update is lost; the
        // final Count of 1 matches no serialization.
        let target = ConcurrentDictionaryTarget {
            variant: Variant::Pre,
        };
        let m = TestMatrix::from_columns(vec![
            vec![Invocation::with_int("TryAdd", 10)],
            vec![Invocation::with_int("TryAdd", 20)],
        ])
        .with_finally(vec![Invocation::new("Count")]);
        let report = check(&target, &m, &CheckOptions::new());
        assert!(!report.passed(), "root cause F must be detected");
        assert!(matches!(
            report.first_violation(),
            Some(lineup::Violation::NoWitness { .. })
        ));
    }

    #[test]
    fn fixed_passes_same_key_contention() {
        let target = ConcurrentDictionaryTarget {
            variant: Variant::Fixed,
        };
        let m = TestMatrix::from_columns(vec![
            vec![
                Invocation::with_int("TryAdd", 10),
                Invocation::with_int("TryRemove", 10),
            ],
            vec![
                Invocation::with_int("TryAdd", 10),
                Invocation::with_int("ContainsKey", 10),
            ],
        ]);
        let report = check(&target, &m, &CheckOptions::new());
        assert!(report.passed(), "{:?}", report.violations);
    }

    #[test]
    fn fixed_passes_clear_vs_add() {
        let target = ConcurrentDictionaryTarget {
            variant: Variant::Fixed,
        };
        let m = TestMatrix::from_columns(vec![
            vec![Invocation::new("Clear"), Invocation::new("IsEmpty")],
            vec![Invocation::with_int("set", 20)],
        ])
        .with_init(vec![Invocation::with_int("TryAdd", 10)]);
        let report = check(&target, &m, &CheckOptions::new());
        assert!(report.passed(), "{:?}", report.violations);
    }

    #[test]
    fn fixed_passes_update_vs_get() {
        let target = ConcurrentDictionaryTarget {
            variant: Variant::Fixed,
        };
        let m = TestMatrix::from_columns(vec![
            vec![Invocation::with_int("TryUpdate", 10)],
            vec![
                Invocation::with_int("TryGet", 10),
                Invocation::with_int("get", 10),
            ],
        ])
        .with_init(vec![Invocation::with_int("TryAdd", 10)]);
        let report = check(&target, &m, &CheckOptions::new());
        assert!(report.passed(), "{:?}", report.violations);
    }
}
