#![allow(clippy::result_unit_err)] // modelled .NET exceptions are `Err(())` responses

//! `ConcurrentLinkedList`: a lock-based deque (the unreleased internal
//! class of the paper's Table 1).
//!
//! The **pre** variant carries root cause **G**: `RemoveFirst` checks for
//! emptiness *before* acquiring the lock (a time-of-check/time-of-use
//! flaw in the algorithm's logic). When another thread drains the list in
//! between, the unconditional removal inside the critical section fires on
//! an empty list and the operation crashes — Line-Up reports the panic as
//! a violation.

use lineup::{Invocation, TestInstance, TestTarget, Value};
use lineup_sync::{DataCell, Mutex};

use crate::support::{int_arg, try_result, Variant};

/// A doubly-ended list guarded by one lock.
#[derive(Debug)]
pub struct ConcurrentLinkedList {
    lock: Mutex,
    items: DataCell<std::collections::VecDeque<i64>>,
    variant: Variant,
}

impl ConcurrentLinkedList {
    /// Creates an empty list (fixed variant).
    pub fn new() -> Self {
        ConcurrentLinkedList::with_variant(Variant::Fixed)
    }

    /// Creates an empty list of the given variant.
    pub fn with_variant(variant: Variant) -> Self {
        ConcurrentLinkedList {
            lock: Mutex::new(),
            items: DataCell::new(std::collections::VecDeque::new()),
            variant,
        }
    }

    /// Prepends an element.
    pub fn add_first(&self, value: i64) {
        self.lock.acquire();
        self.items.with_mut(|l| l.push_front(value));
        self.lock.release();
    }

    /// Appends an element.
    pub fn add_last(&self, value: i64) {
        self.lock.acquire();
        self.items.with_mut(|l| l.push_back(value));
        self.lock.release();
    }

    /// Removes and returns the first element, or `None` when empty.
    pub fn remove_first(&self) -> Option<i64> {
        match self.variant {
            Variant::Fixed => {
                self.lock.acquire();
                let v = self.items.with_mut(|l| l.pop_front());
                self.lock.release();
                v
            }
            Variant::Pre => {
                // Root cause G: the emptiness check happens before the
                // lock is taken; the removal inside the critical section
                // assumes it still holds.
                if self.items.with(|l| l.is_empty()) {
                    return None;
                }
                self.lock.acquire();
                let v = self
                    .items
                    .with_mut(|l| l.pop_front())
                    .expect("ConcurrentLinkedList: removal from emptied list");
                self.lock.release();
                Some(v)
            }
        }
    }

    /// Removes and returns the last element, or `None` when empty.
    pub fn remove_last(&self) -> Option<i64> {
        self.lock.acquire();
        let v = self.items.with_mut(|l| l.pop_back());
        self.lock.release();
        v
    }

    /// Removes every element, returning how many were removed
    /// (the original's `RemoveList`).
    pub fn remove_list(&self) -> usize {
        self.lock.acquire();
        let n = self.items.with_mut(|l| {
            let n = l.len();
            l.clear();
            n
        });
        self.lock.release();
        n
    }

    /// Number of elements.
    pub fn count(&self) -> usize {
        self.lock.acquire();
        let n = self.items.with(|l| l.len());
        self.lock.release();
        n
    }
}

impl Default for ConcurrentLinkedList {
    fn default() -> Self {
        ConcurrentLinkedList::new()
    }
}

/// Line-Up target for [`ConcurrentLinkedList`]. Invocations follow
/// Table 1: `Count`, `AddFirst`, `AddLast`, `RemoveFirst`, `RemoveList`,
/// `RemoveLast`.
#[derive(Debug, Clone, Copy)]
pub struct ConcurrentLinkedListTarget {
    /// Fixed or pre (root cause G).
    pub variant: Variant,
}

impl TestInstance for ConcurrentLinkedList {
    fn invoke(&self, inv: &Invocation) -> Value {
        match inv.name.as_str() {
            "AddFirst" => {
                self.add_first(int_arg(inv));
                Value::Unit
            }
            "AddLast" => {
                self.add_last(int_arg(inv));
                Value::Unit
            }
            "RemoveFirst" => try_result(self.remove_first()),
            "RemoveLast" => try_result(self.remove_last()),
            "RemoveList" => Value::Int(self.remove_list() as i64),
            "Count" => Value::Int(self.count() as i64),
            other => panic!("ConcurrentLinkedList: unknown operation {other}"),
        }
    }
}

impl TestTarget for ConcurrentLinkedListTarget {
    type Instance = ConcurrentLinkedList;

    fn name(&self) -> &str {
        match self.variant {
            Variant::Fixed => "ConcurrentLinkedList",
            Variant::Pre => "ConcurrentLinkedList (Pre)",
        }
    }

    fn create(&self) -> ConcurrentLinkedList {
        ConcurrentLinkedList::with_variant(self.variant)
    }

    fn invocations(&self) -> Vec<Invocation> {
        vec![
            Invocation::with_int("AddFirst", 10),
            Invocation::with_int("AddLast", 20),
            Invocation::new("RemoveFirst"),
            Invocation::new("RemoveLast"),
            Invocation::new("RemoveList"),
            Invocation::new("Count"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lineup::{check, CheckOptions, TestMatrix};

    #[test]
    fn unmodelled_deque_basics() {
        let l = ConcurrentLinkedList::new();
        assert_eq!(l.remove_first(), None);
        l.add_first(2);
        l.add_first(1);
        l.add_last(3);
        assert_eq!(l.count(), 3);
        assert_eq!(l.remove_first(), Some(1));
        assert_eq!(l.remove_last(), Some(3));
        assert_eq!(l.remove_list(), 1);
        assert_eq!(l.count(), 0);
    }

    #[test]
    fn fixed_passes_remove_race() {
        let target = ConcurrentLinkedListTarget {
            variant: Variant::Fixed,
        };
        let m = TestMatrix::from_columns(vec![
            vec![Invocation::new("RemoveFirst")],
            vec![Invocation::new("RemoveList")],
        ])
        .with_init(vec![Invocation::with_int("AddLast", 10)]);
        let report = check(&target, &m, &CheckOptions::new());
        assert!(report.passed(), "{:?}", report.violations);
    }

    #[test]
    fn pre_crashes_on_remove_race() {
        // Root cause G: RemoveFirst sees one element, RemoveList drains
        // the list before the lock is taken, the unconditional pop fires
        // on an empty list.
        let target = ConcurrentLinkedListTarget {
            variant: Variant::Pre,
        };
        let m = TestMatrix::from_columns(vec![
            vec![Invocation::new("RemoveFirst")],
            vec![Invocation::new("RemoveList")],
        ])
        .with_init(vec![Invocation::with_int("AddLast", 10)]);
        let report = check(&target, &m, &CheckOptions::new());
        assert!(!report.passed(), "root cause G must be detected");
        assert!(matches!(
            report.first_violation(),
            Some(lineup::Violation::Panic { serial: false, .. })
        ));
    }

    #[test]
    fn fixed_passes_add_remove_ends() {
        let target = ConcurrentLinkedListTarget {
            variant: Variant::Fixed,
        };
        let m = TestMatrix::from_columns(vec![
            vec![
                Invocation::with_int("AddFirst", 10),
                Invocation::new("RemoveLast"),
            ],
            vec![
                Invocation::with_int("AddLast", 20),
                Invocation::new("Count"),
            ],
        ]);
        let report = check(&target, &m, &CheckOptions::new());
        assert!(report.passed(), "{:?}", report.violations);
    }
}
