//! `ConcurrentQueue`: a FIFO queue.
//!
//! The **fixed** variant is a lock-free Michael–Scott queue: nodes live in
//! an append-only arena and links are atomic indexes, so compare-and-swap
//! works on plain integers and indexes are never reused (no ABA).
//!
//! The **pre** variant carries root cause **B**, the paper's flagship
//! Fig. 1 bug: a coarse-lock queue whose `TryDequeue`/`TryTake` guards the
//! queue with a *timed* lock acquire (`Monitor.TryEnter(lock, timeout)`).
//! Under contention the timeout can fire, and the operation reports
//! failure *as if the queue were empty* — "caused by accidentally allowing
//! a lock acquire in TryTake to time out". A client then observes
//! `TryTake` failing on a queue that provably contains elements, which is
//! not linearizable with respect to any deterministic specification.

use lineup::{Invocation, SymmetryPolicy, TestInstance, TestTarget, Value};
use lineup_sync::{Atomic, DataCell, Mutex};

use crate::support::{int_arg, try_result, Variant};

const NIL: usize = usize::MAX;

/// One node of the Michael–Scott queue. Nodes are arena-allocated and
/// never freed during an execution, so indexes stay valid.
#[derive(Debug)]
struct Node {
    value: i64,
    next: Atomic<usize>,
}

/// The lock-free (fixed) queue.
#[derive(Debug)]
struct MsQueue {
    /// Append-only node arena. Pushing is not a schedule point (it models
    /// memory allocation, which is invisible to other threads until the
    /// node is linked with a CAS).
    arena: std::sync::Mutex<Vec<std::sync::Arc<Node>>>,
    head: Atomic<usize>,
    tail: Atomic<usize>,
}

impl MsQueue {
    fn new() -> Self {
        // Sentinel dummy node at index 0.
        let sentinel = std::sync::Arc::new(Node {
            value: 0,
            next: Atomic::new(NIL),
        });
        MsQueue {
            arena: std::sync::Mutex::new(vec![sentinel]),
            head: Atomic::new(0),
            tail: Atomic::new(0),
        }
    }

    fn node(&self, idx: usize) -> std::sync::Arc<Node> {
        std::sync::Arc::clone(&self.arena.lock().unwrap()[idx])
    }

    fn alloc(&self, value: i64) -> usize {
        let mut arena = self.arena.lock().unwrap();
        arena.push(std::sync::Arc::new(Node {
            value,
            next: Atomic::new(NIL),
        }));
        arena.len() - 1
    }

    fn enqueue(&self, value: i64) {
        let new = self.alloc(value);
        loop {
            let tail = self.tail.load();
            let tail_node = self.node(tail);
            let next = tail_node.next.load();
            if next != NIL {
                // Tail lagging: help advance it.
                let _ = self.tail.compare_exchange(tail, next);
                continue;
            }
            if tail_node.next.compare_exchange(NIL, new).is_ok() {
                let _ = self.tail.compare_exchange(tail, new);
                return;
            }
        }
    }

    fn try_dequeue(&self) -> Option<i64> {
        loop {
            let head = self.head.load();
            let tail = self.tail.load();
            let next = self.node(head).next.load();
            if next == NIL {
                return None;
            }
            if head == tail {
                // Tail lagging behind a non-empty queue: help.
                let _ = self.tail.compare_exchange(tail, next);
                continue;
            }
            let value = self.node(next).value;
            if self.head.compare_exchange(head, next).is_ok() {
                return Some(value);
            }
        }
    }

    fn try_peek(&self) -> Option<i64> {
        let head = self.head.load();
        let next = self.node(head).next.load();
        if next == NIL {
            None
        } else {
            Some(self.node(next).value)
        }
    }

    /// Snapshot of the queue contents (head to tail). Like the .NET
    /// original, `ToArray` takes a consistent snapshot; here we freeze the
    /// traversal against a head re-read loop.
    fn to_vec(&self) -> Vec<i64> {
        loop {
            let head = self.head.load();
            let mut out = Vec::new();
            let mut cur = self.node(head).next.load();
            while cur != NIL {
                let n = self.node(cur);
                out.push(n.value);
                cur = n.next.load();
            }
            // Retry if a dequeue moved the head mid-traversal.
            if self.head.load() == head {
                return out;
            }
        }
    }
}

/// The coarse-lock (pre) queue with the timed-acquire defect.
#[derive(Debug)]
struct LockedQueue {
    lock: Mutex,
    items: DataCell<std::collections::VecDeque<i64>>,
}

impl LockedQueue {
    fn new() -> Self {
        LockedQueue {
            lock: Mutex::new(),
            items: DataCell::new(std::collections::VecDeque::new()),
        }
    }

    fn enqueue(&self, value: i64) {
        self.lock.acquire();
        self.items.with_mut(|q| q.push_back(value));
        self.lock.release();
    }

    fn try_dequeue(&self) -> Option<i64> {
        // Root cause B (Fig. 1): the lock acquire may time out under
        // contention, and the timeout is (wrongly) reported as "queue
        // empty". The fix in the shipped release takes the lock
        // unconditionally.
        if !self.lock.acquire_timed() {
            return None;
        }
        let v = self.items.with_mut(|q| q.pop_front());
        self.lock.release();
        v
    }

    fn try_peek(&self) -> Option<i64> {
        self.lock.acquire();
        let v = self.items.with(|q| q.front().copied());
        self.lock.release();
        v
    }

    fn to_vec(&self) -> Vec<i64> {
        self.lock.acquire();
        let v = self.items.with(|q| q.iter().copied().collect());
        self.lock.release();
        v
    }
}

/// A FIFO queue with the .NET `ConcurrentQueue` surface (plus the
/// `Add`/`TryTake` aliases the paper's Fig. 1/Fig. 7 examples use).
#[derive(Debug)]
pub struct ConcurrentQueue {
    inner: QueueImpl,
}

#[derive(Debug)]
enum QueueImpl {
    Fixed(MsQueue),
    Pre(LockedQueue),
}

impl ConcurrentQueue {
    /// Creates an empty queue (fixed variant).
    pub fn new() -> Self {
        ConcurrentQueue::with_variant(Variant::Fixed)
    }

    /// Creates an empty queue of the given variant.
    pub fn with_variant(variant: Variant) -> Self {
        let inner = match variant {
            Variant::Fixed => QueueImpl::Fixed(MsQueue::new()),
            Variant::Pre => QueueImpl::Pre(LockedQueue::new()),
        };
        ConcurrentQueue { inner }
    }

    /// Appends `value` at the tail.
    pub fn enqueue(&self, value: i64) {
        match &self.inner {
            QueueImpl::Fixed(q) => q.enqueue(value),
            QueueImpl::Pre(q) => q.enqueue(value),
        }
    }

    /// Removes and returns the head element, or `None` when the queue is
    /// (observed as) empty.
    pub fn try_dequeue(&self) -> Option<i64> {
        match &self.inner {
            QueueImpl::Fixed(q) => q.try_dequeue(),
            QueueImpl::Pre(q) => q.try_dequeue(),
        }
    }

    /// Returns the head element without removing it.
    pub fn try_peek(&self) -> Option<i64> {
        match &self.inner {
            QueueImpl::Fixed(q) => q.try_peek(),
            QueueImpl::Pre(q) => q.try_peek(),
        }
    }

    /// Snapshot of the contents, head first.
    pub fn to_vec(&self) -> Vec<i64> {
        match &self.inner {
            QueueImpl::Fixed(q) => q.to_vec(),
            QueueImpl::Pre(q) => q.to_vec(),
        }
    }

    /// Number of elements (derived from the snapshot, as in the .NET
    /// original where `Count` walks the segments).
    pub fn count(&self) -> usize {
        self.to_vec().len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.try_peek().is_none()
    }
}

impl Default for ConcurrentQueue {
    fn default() -> Self {
        ConcurrentQueue::new()
    }
}

/// Line-Up target for [`ConcurrentQueue`]. Invocations follow Table 1
/// (`Count`, `IsEmpty`, `Enqueue`, `ToArray`, `TryDequeue`, `TryPeek`)
/// plus the Fig. 1 aliases `Add`/`TryTake`.
#[derive(Debug, Clone, Copy)]
pub struct ConcurrentQueueTarget {
    /// Fixed or pre (root cause B).
    pub variant: Variant,
}

impl TestInstance for ConcurrentQueue {
    fn invoke(&self, inv: &Invocation) -> Value {
        match inv.name.as_str() {
            "Enqueue" | "Add" => {
                self.enqueue(int_arg(inv));
                Value::Unit
            }
            "TryDequeue" | "TryTake" => try_result(self.try_dequeue()),
            "TryPeek" => try_result(self.try_peek()),
            "ToArray" => Value::int_seq(self.to_vec()),
            "Count" => Value::Int(self.count() as i64),
            "IsEmpty" => Value::Bool(self.is_empty()),
            other => panic!("ConcurrentQueue: unknown operation {other}"),
        }
    }
}

impl TestTarget for ConcurrentQueueTarget {
    type Instance = ConcurrentQueue;

    fn name(&self) -> &str {
        match self.variant {
            Variant::Fixed => "ConcurrentQueue",
            Variant::Pre => "ConcurrentQueue (Pre)",
        }
    }

    fn create(&self) -> ConcurrentQueue {
        ConcurrentQueue::with_variant(self.variant)
    }

    fn invocations(&self) -> Vec<Invocation> {
        vec![
            Invocation::with_int("Enqueue", 10),
            Invocation::with_int("Enqueue", 20),
            Invocation::new("TryDequeue"),
            Invocation::new("TryPeek"),
            Invocation::new("Count"),
            Invocation::new("IsEmpty"),
            Invocation::new("ToArray"),
        ]
    }

    /// [`SymmetryPolicy::Full`]: the queue's synchronization never
    /// inspects the enqueued payloads, so threads
    /// running the same operation shapes with distinct fresh values are
    /// interchangeable up to renaming those values.
    fn symmetry_policy(&self) -> SymmetryPolicy {
        SymmetryPolicy::Full
    }
}

/// The paper's Fig. 1 test: Thread 1 `Add(200); Add(400)`, Thread 2
/// `TryTake; TryTake`.
pub fn fig1_matrix() -> lineup::TestMatrix {
    lineup::TestMatrix::from_columns(vec![
        vec![
            Invocation::with_int("Add", 200),
            Invocation::with_int("Add", 400),
        ],
        vec![Invocation::new("TryTake"), Invocation::new("TryTake")],
    ])
}

/// A contended take-heavy test: one adder thread performing `ops` `Add`s
/// of *distinct* values, plus `takers` threads each performing `ops`
/// `TryTake`s.
///
/// Against the Pre queue this matrix hides the Fig. 1 timeout bug deep in
/// a schedule space far too large for exhaustive search: depth-first
/// exploration runs the adder column to completion first and backtracks
/// the deepest decisions first, so every violating schedule — which must
/// preempt the adder *mid-`Add`* (a shallow decision) while a taker's
/// timed acquire fires with no overlapping successful take — sits behind
/// an astronomically large linearizable tail of taker/taker contention
/// (by the time the tail reorders, the queue is legitimately empty, so a
/// failed `TryTake` has a witness). Randomized and coverage-guided
/// strategies sample shallow preemptions immediately. The distinct `Add`
/// values keep the histories unambiguous so the specialized log-linear
/// queue monitor can decide verdicts.
pub fn contended_matrix(takers: usize, ops: usize) -> lineup::TestMatrix {
    let mut columns = Vec::with_capacity(takers + 1);
    columns.push(
        (0..ops)
            .map(|i| Invocation::with_int("Add", 100 * (i as i64 + 1)))
            .collect(),
    );
    for _ in 0..takers {
        columns.push((0..ops).map(|_| Invocation::new("TryTake")).collect());
    }
    lineup::TestMatrix::from_columns(columns)
}

/// The 4×4 fuzzing benchmark matrix: one adder and three takers, four
/// operations each (see [`contended_matrix`]).
pub fn fuzz4x4_matrix() -> lineup::TestMatrix {
    contended_matrix(3, 4)
}

/// The 5×4 fuzzing benchmark matrix: one adder and four takers, four
/// operations each (see [`contended_matrix`]).
pub fn fuzz5x4_matrix() -> lineup::TestMatrix {
    contended_matrix(4, 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lineup::{check, CheckOptions, TestMatrix};

    #[test]
    fn unmodelled_fifo_order() {
        for variant in [Variant::Fixed, Variant::Pre] {
            let q = ConcurrentQueue::with_variant(variant);
            assert!(q.is_empty());
            assert_eq!(q.try_dequeue(), None);
            q.enqueue(1);
            q.enqueue(2);
            q.enqueue(3);
            assert_eq!(q.count(), 3);
            assert_eq!(q.try_peek(), Some(1));
            assert_eq!(q.to_vec(), vec![1, 2, 3]);
            assert_eq!(q.try_dequeue(), Some(1));
            assert_eq!(q.try_dequeue(), Some(2));
            assert_eq!(q.try_dequeue(), Some(3));
            assert_eq!(q.try_dequeue(), None);
        }
    }

    #[test]
    fn fixed_passes_fig1() {
        let target = ConcurrentQueueTarget {
            variant: Variant::Fixed,
        };
        let report = check(&target, &fig1_matrix(), &CheckOptions::new());
        assert!(report.passed(), "{:?}", report.violations);
    }

    #[test]
    fn pre_fails_fig1_with_spurious_fail() {
        // The Fig. 1 violation: TryTake fails although the queue is
        // non-empty in every consistent serialization.
        let target = ConcurrentQueueTarget {
            variant: Variant::Pre,
        };
        let report = check(&target, &fig1_matrix(), &CheckOptions::new());
        assert!(!report.passed(), "root cause B must be detected");
        let v = report.first_violation().unwrap();
        match v {
            lineup::Violation::NoWitness { history, .. } => {
                // Some TryTake returned Fail in the violating history.
                assert!(history
                    .ops
                    .iter()
                    .any(|op| op.invocation.name == "TryTake" && op.response == Some(Value::Fail)));
            }
            other => panic!("expected NoWitness, got {other:?}"),
        }
    }

    #[test]
    fn fixed_passes_enqueue_dequeue_race() {
        let target = ConcurrentQueueTarget {
            variant: Variant::Fixed,
        };
        let m = TestMatrix::from_columns(vec![
            vec![
                Invocation::with_int("Enqueue", 10),
                Invocation::new("TryDequeue"),
            ],
            vec![
                Invocation::with_int("Enqueue", 20),
                Invocation::new("TryDequeue"),
            ],
        ]);
        let report = check(&target, &m, &CheckOptions::new());
        assert!(report.passed(), "{:?}", report.violations);
    }

    #[test]
    fn fixed_passes_observers() {
        let target = ConcurrentQueueTarget {
            variant: Variant::Fixed,
        };
        let m = TestMatrix::from_columns(vec![
            vec![
                Invocation::with_int("Enqueue", 10),
                Invocation::new("Count"),
            ],
            vec![Invocation::new("ToArray"), Invocation::new("IsEmpty")],
        ]);
        let report = check(&target, &m, &CheckOptions::new());
        assert!(report.passed(), "{:?}", report.violations);
    }

    #[test]
    fn contended_matrix_shape() {
        let m = contended_matrix(3, 4);
        assert_eq!(m.columns.len(), 4, "one adder plus three takers");
        assert!(m.columns.iter().all(|c| c.len() == 4));
        assert_eq!(m.columns[0][0], Invocation::with_int("Add", 100));
        assert_eq!(m.columns[0][3], Invocation::with_int("Add", 400));
        let values: std::collections::HashSet<_> = m.columns[0]
            .iter()
            .map(|inv| format!("{:?}", inv.args))
            .collect();
        assert_eq!(
            values.len(),
            4,
            "adds must be distinct for the specialized monitor"
        );
        for taker in &m.columns[1..] {
            assert!(taker.iter().all(|inv| inv.name == "TryTake"));
        }
        assert_eq!(fuzz4x4_matrix().columns.len(), 4);
        assert_eq!(fuzz5x4_matrix().columns.len(), 5);
    }

    #[test]
    fn fixed_passes_small_contended_matrix() {
        // The fixed queue is linearizable on a (small, exhaustively
        // checkable) instance of the contended shape.
        let target = ConcurrentQueueTarget {
            variant: Variant::Fixed,
        };
        let report = check(&target, &contended_matrix(1, 2), &CheckOptions::new());
        assert!(report.passed(), "{:?}", report.violations);
    }

    #[test]
    fn pre_fails_small_contended_matrix() {
        // The seeded bug is present in every instance of the shape; the
        // big 4x4/5x4 instances merely hide it from exhaustive search.
        let target = ConcurrentQueueTarget {
            variant: Variant::Pre,
        };
        let report = check(&target, &contended_matrix(1, 2), &CheckOptions::new());
        assert!(!report.passed(), "root cause B must be detected");
    }

    #[test]
    fn pre_passes_without_contention_on_take() {
        // A single-threaded column cannot trigger the timeout: serial
        // executions are deterministic (the completeness prerequisite).
        let target = ConcurrentQueueTarget {
            variant: Variant::Pre,
        };
        let m = TestMatrix::from_columns(vec![vec![
            Invocation::with_int("Add", 200),
            Invocation::new("TryTake"),
            Invocation::new("TryTake"),
        ]]);
        let report = check(&target, &m, &CheckOptions::new());
        assert!(report.passed(), "{:?}", report.violations);
    }
}
