//! `ConcurrentStack`: a Treiber stack with atomic range operations.
//!
//! `PushRange` links the new nodes privately and publishes them with a
//! single CAS; `TryPopRange` unlinks a whole chain with a single CAS —
//! both atomic, as in the shipped .NET implementation.
//!
//! The **pre** variant carries root cause **D**: `TryPopRange` pops
//! elements *one at a time* in a loop. A concurrent pop can interleave
//! between two iterations, so the returned "range" is not a contiguous
//! stack segment in any serialization.

use lineup::{Invocation, SymmetryPolicy, TestInstance, TestTarget, Value};
use lineup_sync::Atomic;

use crate::support::{int_arg, try_result, Variant};

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Node {
    value: i64,
    next: Atomic<usize>,
}

/// A Treiber stack over an append-only arena (indexes are never reused,
/// so integer CAS is ABA-free).
#[derive(Debug)]
pub struct ConcurrentStack {
    arena: std::sync::Mutex<Vec<std::sync::Arc<Node>>>,
    top: Atomic<usize>,
    variant: Variant,
}

impl ConcurrentStack {
    /// Creates an empty stack (fixed variant).
    pub fn new() -> Self {
        ConcurrentStack::with_variant(Variant::Fixed)
    }

    /// Creates an empty stack of the given variant.
    pub fn with_variant(variant: Variant) -> Self {
        ConcurrentStack {
            arena: std::sync::Mutex::new(Vec::new()),
            top: Atomic::new(NIL),
            variant,
        }
    }

    fn node(&self, idx: usize) -> std::sync::Arc<Node> {
        std::sync::Arc::clone(&self.arena.lock().unwrap()[idx])
    }

    fn alloc(&self, value: i64) -> usize {
        let mut arena = self.arena.lock().unwrap();
        arena.push(std::sync::Arc::new(Node {
            value,
            next: Atomic::new(NIL),
        }));
        arena.len() - 1
    }

    /// Pushes one element.
    pub fn push(&self, value: i64) {
        let new = self.alloc(value);
        loop {
            let top = self.top.load();
            // Linking the private node is not an interleaving point: the
            // node is unpublished. Write through the atomic anyway for a
            // uniform representation.
            self.node(new).next.store(top);
            if self.top.compare_exchange(top, new).is_ok() {
                return;
            }
        }
    }

    /// Pushes several elements as one atomic operation: `values[0]` ends
    /// up on top, matching .NET's `PushRange`.
    pub fn push_range(&self, values: &[i64]) {
        if values.is_empty() {
            return;
        }
        // Build the private chain: values[0] -> values[1] -> ...
        let nodes: Vec<usize> = values.iter().map(|&v| self.alloc(v)).collect();
        for w in nodes.windows(2) {
            self.node(w[0]).next.store(w[1]);
        }
        let head = nodes[0];
        let tail = *nodes.last().expect("nonempty");
        loop {
            let top = self.top.load();
            self.node(tail).next.store(top);
            if self.top.compare_exchange(top, head).is_ok() {
                return;
            }
        }
    }

    /// Pops one element.
    pub fn try_pop(&self) -> Option<i64> {
        loop {
            let top = self.top.load();
            if top == NIL {
                return None;
            }
            let node = self.node(top);
            let next = node.next.load();
            if self.top.compare_exchange(top, next).is_ok() {
                return Some(node.value);
            }
        }
    }

    /// Pops up to `n` elements, topmost first.
    ///
    /// Fixed: unlinks the whole chain with one CAS (atomic). Pre (root
    /// cause D): pops one element at a time — concurrent operations can
    /// interleave between iterations.
    pub fn try_pop_range(&self, n: usize) -> Vec<i64> {
        match self.variant {
            Variant::Fixed => loop {
                let top = self.top.load();
                if top == NIL || n == 0 {
                    return Vec::new();
                }
                // Walk up to n nodes privately (published nodes' links are
                // immutable and indexes are never reused, so the walk is
                // consistent as long as `top` has not moved — which the
                // CAS verifies).
                let mut out = Vec::with_capacity(n);
                let mut cur = top;
                for _ in 0..n {
                    if cur == NIL {
                        break;
                    }
                    let node = self.node(cur);
                    out.push(node.value);
                    cur = node.next.load();
                }
                if self.top.compare_exchange(top, cur).is_ok() {
                    return out;
                }
            },
            Variant::Pre => {
                let mut out = Vec::with_capacity(n);
                for _ in 0..n {
                    match self.try_pop() {
                        Some(v) => out.push(v),
                        None => break,
                    }
                }
                out
            }
        }
    }

    /// Returns the top element without removing it.
    pub fn try_peek(&self) -> Option<i64> {
        let top = self.top.load();
        if top == NIL {
            None
        } else {
            Some(self.node(top).value)
        }
    }

    /// Snapshot of the stack, top first.
    pub fn to_vec(&self) -> Vec<i64> {
        let mut out = Vec::new();
        let mut cur = self.top.load();
        while cur != NIL {
            let node = self.node(cur);
            out.push(node.value);
            cur = node.next.load();
        }
        out
    }

    /// Number of elements.
    pub fn count(&self) -> usize {
        self.to_vec().len()
    }

    /// Removes all elements (a single swap of the top pointer, atomic as
    /// in the original).
    pub fn clear(&self) {
        self.top.swap(NIL);
    }
}

impl Default for ConcurrentStack {
    fn default() -> Self {
        ConcurrentStack::new()
    }
}

/// Line-Up target for [`ConcurrentStack`]. Invocations follow Table 1:
/// `Clear`, `Count`, `Push`, `PushRangeTen` (a two-element range here),
/// `TryPop`, `TryPopRangeOne/Two/Four`, `TryPeek`, `ToArray`.
#[derive(Debug, Clone, Copy)]
pub struct ConcurrentStackTarget {
    /// Fixed or pre (root cause D).
    pub variant: Variant,
}

impl TestInstance for ConcurrentStack {
    fn invoke(&self, inv: &Invocation) -> Value {
        match inv.name.as_str() {
            "Push" => {
                self.push(int_arg(inv));
                Value::Unit
            }
            "PushRangeTen" => {
                // The paper's harness pushes a fixed range; two elements
                // keep state spaces small while exercising the same path.
                self.push_range(&[int_arg(inv), int_arg(inv) + 1]);
                Value::Unit
            }
            "TryPop" => try_result(self.try_pop()),
            "TryPopRangeOne" => Value::int_seq(self.try_pop_range(1)),
            "TryPopRangeTwo" => Value::int_seq(self.try_pop_range(2)),
            "TryPopRangeFour" => Value::int_seq(self.try_pop_range(4)),
            "TryPeek" => try_result(self.try_peek()),
            "ToArray" | "ToArrayOrderBy" => Value::int_seq(self.to_vec()),
            "Count" => Value::Int(self.count() as i64),
            "Clear" => {
                self.clear();
                Value::Unit
            }
            other => panic!("ConcurrentStack: unknown operation {other}"),
        }
    }
}

impl TestTarget for ConcurrentStackTarget {
    type Instance = ConcurrentStack;

    fn name(&self) -> &str {
        match self.variant {
            Variant::Fixed => "ConcurrentStack",
            Variant::Pre => "ConcurrentStack (Pre)",
        }
    }

    fn create(&self) -> ConcurrentStack {
        ConcurrentStack::with_variant(self.variant)
    }

    fn invocations(&self) -> Vec<Invocation> {
        vec![
            Invocation::with_int("Push", 10),
            Invocation::with_int("Push", 20),
            Invocation::with_int("PushRangeTen", 30),
            Invocation::new("TryPop"),
            Invocation::new("TryPopRangeTwo"),
            Invocation::new("TryPeek"),
            Invocation::new("Count"),
            Invocation::new("Clear"),
            Invocation::new("ToArray"),
        ]
    }

    /// [`SymmetryPolicy::Full`]: the stack's synchronization never
    /// inspects the pushed payloads, so threads
    /// running the same operation shapes with distinct fresh values are
    /// interchangeable up to renaming those values.
    fn symmetry_policy(&self) -> SymmetryPolicy {
        SymmetryPolicy::Full
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lineup::{check, CheckOptions, TestMatrix};

    #[test]
    fn unmodelled_lifo_order() {
        for variant in [Variant::Fixed, Variant::Pre] {
            let s = ConcurrentStack::with_variant(variant);
            assert_eq!(s.try_pop(), None);
            s.push(1);
            s.push(2);
            assert_eq!(s.try_peek(), Some(2));
            assert_eq!(s.to_vec(), vec![2, 1]);
            assert_eq!(s.try_pop(), Some(2));
            assert_eq!(s.try_pop(), Some(1));
            assert_eq!(s.try_pop(), None);
        }
    }

    #[test]
    fn unmodelled_ranges() {
        let s = ConcurrentStack::new();
        s.push_range(&[1, 2, 3]); // 1 on top
        assert_eq!(s.to_vec(), vec![1, 2, 3]);
        assert_eq!(s.try_pop_range(2), vec![1, 2]);
        assert_eq!(s.try_pop_range(5), vec![3]);
        assert_eq!(s.try_pop_range(1), Vec::<i64>::new());
        s.push(9);
        s.clear();
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn fixed_passes_pop_range_race() {
        let target = ConcurrentStackTarget {
            variant: Variant::Fixed,
        };
        let m = TestMatrix::from_columns(vec![
            vec![Invocation::new("TryPopRangeTwo")],
            vec![Invocation::new("TryPop")],
        ])
        .with_init(vec![
            Invocation::with_int("Push", 1),
            Invocation::with_int("Push", 2),
            Invocation::with_int("Push", 3),
        ]);
        let report = check(&target, &m, &CheckOptions::new());
        assert!(report.passed(), "{:?}", report.violations);
    }

    #[test]
    fn pre_fails_pop_range_race() {
        // Root cause D: stack [3,2,1] (3 on top). TryPopRangeTwo pops 3,
        // a concurrent TryPop takes 2, the range continues with 1:
        // [3, 1] is not a contiguous segment in any serialization.
        let target = ConcurrentStackTarget {
            variant: Variant::Pre,
        };
        let m = TestMatrix::from_columns(vec![
            vec![Invocation::new("TryPopRangeTwo")],
            vec![Invocation::new("TryPop")],
        ])
        .with_init(vec![
            Invocation::with_int("Push", 1),
            Invocation::with_int("Push", 2),
            Invocation::with_int("Push", 3),
        ]);
        let report = check(&target, &m, &CheckOptions::new());
        assert!(!report.passed(), "root cause D must be detected");
    }

    #[test]
    fn fixed_passes_push_race() {
        let target = ConcurrentStackTarget {
            variant: Variant::Fixed,
        };
        let m = TestMatrix::from_columns(vec![
            vec![Invocation::with_int("Push", 10), Invocation::new("TryPop")],
            vec![Invocation::with_int("PushRangeTen", 30)],
        ]);
        let report = check(&target, &m, &CheckOptions::new());
        assert!(report.passed(), "{:?}", report.violations);
    }

    #[test]
    fn fixed_passes_clear_race() {
        let target = ConcurrentStackTarget {
            variant: Variant::Fixed,
        };
        let m = TestMatrix::from_columns(vec![
            vec![Invocation::new("Clear"), Invocation::new("Count")],
            vec![Invocation::with_int("Push", 10), Invocation::new("TryPeek")],
        ]);
        let report = check(&target, &m, &CheckOptions::new());
        assert!(report.passed(), "{:?}", report.violations);
    }
}
