#![allow(clippy::result_unit_err)] // modelled .NET exceptions are `Err(())` responses

//! `CountdownEvent`: a synchronization primitive that becomes *set* once
//! it has been signalled an initial number of times. `Wait` blocks until
//! the count reaches zero; `AddCount`/`TryAddCount` increase the count
//! (only while not yet set).
//!
//! The **pre** variant carries root cause **E**: `Signal` decrements the
//! count with a plain load/store pair instead of an interlocked
//! decrement, so concurrent signals can be lost — the event never becomes
//! set, `Wait` sleeps forever, and `CurrentCount` misreports.

use lineup::{Invocation, TestInstance, TestTarget, Value};
use lineup_sync::{Atomic, Monitor};

use crate::support::{int_arg, Variant};

/// A countdown event in the style of .NET's `CountdownEvent`.
#[derive(Debug)]
pub struct CountdownEvent {
    count: Atomic<i64>,
    monitor: Monitor,
    variant: Variant,
}

impl CountdownEvent {
    /// Creates an event requiring `initial` signals.
    pub fn new(initial: i64) -> Self {
        CountdownEvent::with_variant(initial, Variant::Fixed)
    }

    /// Creates an event of the given variant.
    pub fn with_variant(initial: i64, variant: Variant) -> Self {
        assert!(initial >= 0, "initial count must be non-negative");
        CountdownEvent {
            count: Atomic::new(initial),
            monitor: Monitor::new(),
            variant,
        }
    }

    /// The number of outstanding signals.
    pub fn current_count(&self) -> i64 {
        self.count.load()
    }

    /// Whether the event is set (count has reached zero).
    pub fn is_set(&self) -> bool {
        self.count.load() == 0
    }

    /// Registers `n` signals. Returns `Ok(true)` when this call set the
    /// event, `Ok(false)` when signals remain outstanding, and `Err(())`
    /// when signalling more than the outstanding count (where the .NET
    /// original throws `InvalidOperationException` — modelled as an error
    /// response so Line-Up can treat the exception as an observable
    /// outcome).
    pub fn signal(&self, n: i64) -> Result<bool, ()> {
        assert!(n > 0, "signal requires a positive count");
        match self.variant {
            Variant::Fixed => loop {
                let c = self.count.load();
                if c < n {
                    return Err(());
                }
                if self.count.compare_exchange(c, c - n).is_ok() {
                    if c - n == 0 {
                        self.monitor.enter();
                        self.monitor.pulse_all();
                        self.monitor.exit();
                        return Ok(true);
                    }
                    return Ok(false);
                }
            },
            // Root cause E: a plain read-modify-write. Two concurrent
            // signals can observe the same value and both store count-n,
            // losing a decrement: the event never sets.
            Variant::Pre => {
                let c = self.count.load();
                if c < n {
                    return Err(());
                }
                self.count.store(c - n);
                if c - n == 0 {
                    self.monitor.enter();
                    self.monitor.pulse_all();
                    self.monitor.exit();
                    return Ok(true);
                }
                Ok(false)
            }
        }
    }

    /// Increases the outstanding count by `n` unless the event is already
    /// set; returns whether the count was increased.
    pub fn try_add_count(&self, n: i64) -> bool {
        assert!(n > 0, "add requires a positive count");
        loop {
            let c = self.count.load();
            if c == 0 {
                return false;
            }
            if self.count.compare_exchange(c, c + n).is_ok() {
                return true;
            }
        }
    }

    /// Blocks until the event is set.
    pub fn wait(&self) {
        if self.is_set() {
            return;
        }
        self.monitor.enter();
        while self.count.load() != 0 {
            self.monitor.wait();
        }
        self.monitor.exit();
    }

    /// Non-blocking poll (`Wait(0)` in .NET): whether the event is set.
    pub fn try_wait(&self) -> bool {
        self.is_set()
    }
}

/// Line-Up target for [`CountdownEvent`]. Invocations follow Table 1:
/// `Signal(x)`, `AddCount(x)`, `TryAddCount(x)` for x ∈ {1, 2}, plus
/// `IsSet`, `Wait`, `Wait(0)`, `CurrentCount`.
#[derive(Debug, Clone, Copy)]
pub struct CountdownEventTarget {
    /// Fixed or pre (root cause E).
    pub variant: Variant,
    /// Initial signal count for fresh instances.
    pub initial: i64,
}

impl TestInstance for CountdownEvent {
    fn invoke(&self, inv: &Invocation) -> Value {
        match (inv.name.as_str(), inv.args.len()) {
            ("Signal", 0) => match self.signal(1) {
                Ok(set) => Value::Bool(set),
                Err(()) => Value::Str("InvalidOperationException".into()),
            },
            ("Signal", 1) => match self.signal(int_arg(inv)) {
                Ok(set) => Value::Bool(set),
                Err(()) => Value::Str("InvalidOperationException".into()),
            },
            ("AddCount", 0) => Value::Bool(self.try_add_count(1)),
            ("AddCount", 1) => Value::Bool(self.try_add_count(int_arg(inv))),
            ("TryAddCount", 0) => Value::Bool(self.try_add_count(1)),
            ("TryAddCount", 1) => Value::Bool(self.try_add_count(int_arg(inv))),
            ("IsSet", _) => Value::Bool(self.is_set()),
            ("Wait", 0) => {
                self.wait();
                Value::Unit
            }
            ("Wait", 1) if int_arg(inv) == 0 => Value::Bool(self.try_wait()),
            ("CurrentCount", _) => Value::Int(self.current_count()),
            (other, _) => panic!("CountdownEvent: unknown operation {other}"),
        }
    }
}

impl TestTarget for CountdownEventTarget {
    type Instance = CountdownEvent;

    fn name(&self) -> &str {
        match self.variant {
            Variant::Fixed => "CountdownEvent",
            Variant::Pre => "CountdownEvent (Pre)",
        }
    }

    fn create(&self) -> CountdownEvent {
        CountdownEvent::with_variant(self.initial, self.variant)
    }

    fn invocations(&self) -> Vec<Invocation> {
        vec![
            Invocation::new("Signal"),
            Invocation::with_int("Signal", 2),
            Invocation::with_int("AddCount", 1),
            Invocation::with_int("TryAddCount", 1),
            Invocation::new("IsSet"),
            Invocation::new("Wait"),
            Invocation::with_int("Wait", 0),
            Invocation::new("CurrentCount"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lineup::{check, CheckOptions, TestMatrix};

    fn signal() -> Invocation {
        Invocation::new("Signal")
    }

    #[test]
    fn unmodelled_countdown_basics() {
        let e = CountdownEvent::new(2);
        assert_eq!(e.current_count(), 2);
        assert!(!e.is_set());
        assert_eq!(e.signal(1), Ok(false));
        assert_eq!(e.signal(1), Ok(true));
        assert!(e.is_set());
        assert!(e.try_wait());
        assert!(!e.try_add_count(1), "cannot add once set");
    }

    #[test]
    fn signal_below_zero_is_an_error() {
        assert_eq!(CountdownEvent::new(0).signal(1), Err(()));
    }

    #[test]
    fn fixed_passes_two_signals_and_wait() {
        let target = CountdownEventTarget {
            variant: Variant::Fixed,
            initial: 2,
        };
        let m = TestMatrix::from_columns(vec![
            vec![signal()],
            vec![signal()],
            vec![Invocation::new("Wait")],
        ]);
        let report = check(&target, &m, &CheckOptions::new());
        assert!(report.passed(), "{:?}", report.violations);
        assert!(
            report.spec.stuck_count() > 0,
            "Wait-first serial runs block"
        );
    }

    #[test]
    fn pre_fails_with_lost_signal() {
        // Root cause E: two concurrent non-atomic signals lose one
        // decrement; either Wait hangs or CurrentCount/IsSet misreport.
        let target = CountdownEventTarget {
            variant: Variant::Pre,
            initial: 2,
        };
        let m = TestMatrix::from_columns(vec![
            vec![signal()],
            vec![signal()],
            vec![Invocation::new("Wait")],
        ]);
        let report = check(&target, &m, &CheckOptions::new());
        assert!(!report.passed());
    }

    #[test]
    fn pre_fails_even_without_blocking_ops() {
        // The lost decrement is also a safety violation visible through
        // CurrentCount: after both signals return, the count must be 0 in
        // every serialization, but a run observes 1.
        let target = CountdownEventTarget {
            variant: Variant::Pre,
            initial: 2,
        };
        let m = TestMatrix::from_columns(vec![vec![signal()], vec![signal()]])
            .with_finally(vec![Invocation::new("CurrentCount")]);
        let report = check(&target, &m, &CheckOptions::new());
        assert!(!report.passed());
        assert!(matches!(
            report.first_violation(),
            Some(lineup::Violation::NoWitness { .. })
        ));
    }

    #[test]
    fn fixed_passes_add_count_race() {
        let target = CountdownEventTarget {
            variant: Variant::Fixed,
            initial: 1,
        };
        let m = TestMatrix::from_columns(vec![
            vec![Invocation::with_int("TryAddCount", 1), signal()],
            vec![signal(), Invocation::new("IsSet")],
        ]);
        let report = check(&target, &m, &CheckOptions::new());
        assert!(report.passed(), "{:?}", report.violations);
    }
}
