//! The paper's pedagogical counters: a correct monitor-based counter
//! (whose specification automaton is the paper's Fig. 3), the buggy
//! `Counter1` of §2.2.1 (unsynchronized increment), and the buggy
//! `Counter2` of §2.2.2 (`get` never releases the lock, producing stuck
//! histories — Fig. 4).

use lineup::{Invocation, TestInstance, TestTarget, Value};
use lineup_sync::{Atomic, DataCell, Monitor, Mutex};

use crate::support::int_arg;

/// A correct concurrent counter with the semantics of the paper's Fig. 3
/// specification automaton: `inc`, `get`, `set(x)` always proceed, and
/// `dec` blocks while the count is zero (like a semaphore).
#[derive(Debug)]
pub struct Counter {
    monitor: Monitor,
    count: DataCell<i64>,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter {
            monitor: Monitor::new(),
            count: DataCell::new(0),
        }
    }

    /// Increments the count.
    pub fn inc(&self) {
        self.monitor.enter();
        self.count.set(self.count.get() + 1);
        self.monitor.pulse_all();
        self.monitor.exit();
    }

    /// Decrements the count, blocking while it is zero.
    pub fn dec(&self) {
        self.monitor.enter();
        while self.count.get() == 0 {
            self.monitor.wait();
        }
        self.count.set(self.count.get() - 1);
        self.monitor.exit();
    }

    /// Returns the current count.
    pub fn get(&self) -> i64 {
        self.monitor.enter();
        let v = self.count.get();
        self.monitor.exit();
        v
    }

    /// Sets the count.
    pub fn set(&self, v: i64) {
        self.monitor.enter();
        self.count.set(v);
        self.monitor.pulse_all();
        self.monitor.exit();
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

/// The buggy counter of §2.2.1: `inc` performs an unsynchronized
/// read-modify-write (`count = count + 1` with no lock), so concurrent
/// increments can be lost. Linearizability (even the classic Def. 1)
/// detects this.
#[derive(Debug)]
pub struct Counter1 {
    count: Atomic<i64>,
}

impl Counter1 {
    /// Creates the buggy counter at zero.
    pub fn new() -> Self {
        Counter1 {
            count: Atomic::new(0),
        }
    }

    /// The buggy increment: a non-atomic load/store pair.
    pub fn inc(&self) {
        let v = self.count.load();
        self.count.store(v + 1);
    }

    /// Reads the count.
    pub fn get(&self) -> i64 {
        self.count.load()
    }
}

impl Default for Counter1 {
    fn default() -> Self {
        Counter1::new()
    }
}

/// The buggy counter of §2.2.2 (Fig. 4): `get` acquires the lock and
/// **never releases it**, so any later operation blocks forever. The
/// resulting stuck histories are perfectly linearizable under the classic
/// Def. 1 — only the generalized (blocking-aware) definition of §2.3 even
/// represents them. (Note, as the paper's formalism implies, `Counter2`
/// *is* deterministically linearizable — with respect to a specification
/// in which `get` poisons the counter — so `lineup::check` passes it; the
/// defect is exposed by *differential* checking against the correct
/// counter's specification, or by simply looking at the stuck histories.)
#[derive(Debug)]
pub struct Counter2 {
    lock: Mutex,
    count: DataCell<i64>,
}

impl Counter2 {
    /// Creates the buggy counter at zero.
    pub fn new() -> Self {
        Counter2 {
            lock: Mutex::new(),
            count: DataCell::new(0),
        }
    }

    /// Increments under the lock (correct).
    pub fn inc(&self) {
        self.lock.acquire();
        self.count.set(self.count.get() + 1);
        self.lock.release();
    }

    /// The bug: acquires the lock and returns without releasing it.
    pub fn get(&self) -> i64 {
        self.lock.acquire();
        self.count.get()
        // missing: self.lock.release()
    }
}

impl Default for Counter2 {
    fn default() -> Self {
        Counter2::new()
    }
}

/// Which counter implementation a [`CounterTarget`] drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterKind {
    /// The correct [`Counter`].
    Correct,
    /// The lost-update [`Counter1`] (§2.2.1).
    LostUpdate,
    /// The stuck-lock [`Counter2`] (§2.2.2, Fig. 4).
    StuckLock,
}

/// Line-Up target over the three counters. Invocations: `inc`, `get`,
/// `set(x)`, `dec` (the latter only for the correct counter, whose `dec`
/// blocks at zero per Fig. 3).
#[derive(Debug, Clone, Copy)]
pub struct CounterTarget {
    /// Which implementation to test.
    pub kind: CounterKind,
}

/// Instance of [`CounterTarget`].
#[derive(Debug)]
pub enum CounterInstance {
    /// Correct counter instance.
    Correct(Counter),
    /// `Counter1` instance.
    LostUpdate(Counter1),
    /// `Counter2` instance.
    StuckLock(Counter2),
}

impl TestInstance for CounterInstance {
    fn invoke(&self, inv: &Invocation) -> Value {
        match (self, inv.name.as_str()) {
            (CounterInstance::Correct(c), "inc") => {
                c.inc();
                Value::Unit
            }
            (CounterInstance::Correct(c), "dec") => {
                c.dec();
                Value::Unit
            }
            (CounterInstance::Correct(c), "get") => Value::Int(c.get()),
            (CounterInstance::Correct(c), "set") => {
                c.set(int_arg(inv));
                Value::Unit
            }
            (CounterInstance::LostUpdate(c), "inc") => {
                c.inc();
                Value::Unit
            }
            (CounterInstance::LostUpdate(c), "get") => Value::Int(c.get()),
            (CounterInstance::StuckLock(c), "inc") => {
                c.inc();
                Value::Unit
            }
            (CounterInstance::StuckLock(c), "get") => Value::Int(c.get()),
            (_, other) => panic!("Counter: unknown operation {other}"),
        }
    }
}

impl TestTarget for CounterTarget {
    type Instance = CounterInstance;

    fn name(&self) -> &str {
        match self.kind {
            CounterKind::Correct => "Counter",
            CounterKind::LostUpdate => "Counter1",
            CounterKind::StuckLock => "Counter2",
        }
    }

    fn create(&self) -> CounterInstance {
        match self.kind {
            CounterKind::Correct => CounterInstance::Correct(Counter::new()),
            CounterKind::LostUpdate => CounterInstance::LostUpdate(Counter1::new()),
            CounterKind::StuckLock => CounterInstance::StuckLock(Counter2::new()),
        }
    }

    fn invocations(&self) -> Vec<Invocation> {
        match self.kind {
            CounterKind::Correct => vec![
                Invocation::new("inc"),
                Invocation::new("get"),
                Invocation::new("dec"),
                Invocation::with_int("set", 0),
            ],
            _ => vec![Invocation::new("inc"), Invocation::new("get")],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lineup::{check, check_against_spec, synthesize_spec, CheckOptions, TestMatrix};

    fn inc() -> Invocation {
        Invocation::new("inc")
    }
    fn get() -> Invocation {
        Invocation::new("get")
    }
    fn dec() -> Invocation {
        Invocation::new("dec")
    }

    #[test]
    fn unmodelled_counter_basics() {
        let c = Counter::new();
        c.inc();
        c.inc();
        assert_eq!(c.get(), 2);
        c.dec();
        assert_eq!(c.get(), 1);
        c.set(7);
        assert_eq!(c.get(), 7);
    }

    #[test]
    fn correct_counter_passes_check() {
        let target = CounterTarget {
            kind: CounterKind::Correct,
        };
        let m = TestMatrix::from_columns(vec![vec![inc(), get()], vec![inc()]]);
        assert!(check(&target, &m, &CheckOptions::new()).passed());
    }

    #[test]
    fn correct_counter_dec_blocks_at_zero() {
        // dec ∥ inc: dec may block serially (stuck serial history) and the
        // concurrent behaviors must match — the check passes.
        let target = CounterTarget {
            kind: CounterKind::Correct,
        };
        let m = TestMatrix::from_columns(vec![vec![dec()], vec![inc()]]);
        let report = check(&target, &m, &CheckOptions::new());
        assert!(report.passed(), "{:?}", report.violations);
        assert!(
            report.spec.stuck_count() > 0,
            "serial dec-first histories are stuck"
        );
    }

    #[test]
    fn counter1_fails_check() {
        // The §2.2.1 scenario.
        let target = CounterTarget {
            kind: CounterKind::LostUpdate,
        };
        let m = TestMatrix::from_columns(vec![vec![inc(), get()], vec![inc()]]);
        let report = check(&target, &m, &CheckOptions::new());
        assert!(!report.passed());
        assert!(matches!(
            report.first_violation(),
            Some(lineup::Violation::NoWitness { .. })
        ));
    }

    #[test]
    fn counter2_passes_check_but_produces_stuck_histories() {
        // As §2.2.2's formalism implies: Counter2 is deterministically
        // linearizable (its serial behavior blocks the same way), so the
        // self-synthesized check passes — but its spec contains stuck
        // histories where none are expected of a counter.
        let target = CounterTarget {
            kind: CounterKind::StuckLock,
        };
        let m = TestMatrix::from_columns(vec![vec![inc(), get()], vec![inc()]]);
        let report = check(&target, &m, &CheckOptions::new());
        assert!(report.passed(), "{:?}", report.violations);
        assert!(report.spec.stuck_count() > 0, "get poisons the counter");
    }

    #[test]
    fn counter2_fails_differential_check_against_correct_counter() {
        // Differential checking exposes Counter2: synthesize the spec from
        // the correct counter, then check Counter2's concurrent behavior
        // against it. The stuck histories have no witness.
        let correct = CounterTarget {
            kind: CounterKind::Correct,
        };
        let buggy = CounterTarget {
            kind: CounterKind::StuckLock,
        };
        let m = TestMatrix::from_columns(vec![vec![inc(), get()], vec![inc()]]);
        let (spec, _, none) = synthesize_spec(&correct, &m);
        assert!(none.is_none());
        let (violations, _) = check_against_spec(&buggy, &m, &spec, &CheckOptions::new());
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, lineup::Violation::StuckNoWitness { .. })),
            "{violations:?}"
        );
    }
}
