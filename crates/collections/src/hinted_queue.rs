//! `HintedQueue`: a coarse-lock FIFO queue with a lock-free *size hint*
//! fast path — and a deliberately deep seeded defect for the
//! coverage-guided schedule fuzzer benchmark (`lineup-bench --bin
//! strategies`).
//!
//! Both variants guard the queue itself with a plain (untimed) mutex, so
//! the Fig. 1 timeout defect is absent. The difference is the *hint*: an
//! approximate element count consulted by `TryTake` before taking the
//! lock, so that takes on an (apparently) empty queue return without
//! contending — the shape of the real-world "check the count outside the
//! lock" optimization behind the paper's root cause F.
//!
//! * **fixed** — the hint is updated inside the critical section. The
//!   hint then never underestimates the element count by more than the
//!   sentinel slack, the fast path never fires spuriously, and the queue
//!   is linearizable.
//! * **pre** — `Add` updates the hint *after* releasing the lock, with a
//!   plain load/store read-modify-write. Concurrent `Add`s can interleave
//!   their RMWs and lose increments. One lost increment is still harmless
//!   — the hint starts with one element of sentinel slack, so phantom
//!   emptiness (`hint <= 0` while the queue holds an element) provably
//!   requires **at least two** lost increments, followed by enough
//!   successful takes to drain the corrupted hint, followed by a take
//!   that trusts it. No single preemption exposes the bug; a *chain* of
//!   independent races does. That is exactly the regime where exhaustive
//!   DFS drowns (the races hide behind shallow decisions in an enormous
//!   schedule tree) and where coverage-guided fuzzing outruns blind
//!   sampling: each partial corruption is a new scheduler state, enters
//!   the corpus, and is extended instead of being rediscovered from
//!   scratch.
//!
//! Successful takes decrement the hint with an atomic `fetch_sub`, and a
//! failed locked pop does not touch it, so takers can never corrupt the
//! hint themselves — the *only* route to a violation is the adder-adder
//! increment race, twice.

use lineup::{Invocation, TestInstance, TestTarget, Value};
use lineup_sync::{Atomic, DataCell, Mutex};

use crate::support::{int_arg, try_result, Variant};

/// Extra elements the hint over-reports from the start: the fast path
/// claims emptiness only when `hint <= 0`, so a fresh queue (hint =
/// `HINT_SLACK`, no elements) still routes the first takes through the
/// (correct) locked pop. One lost increment erodes the slack; only the
/// second can produce phantom emptiness.
pub const HINT_SLACK: i64 = 1;

/// The hinted queue (see the module docs).
#[derive(Debug)]
pub struct HintedQueue {
    lock: Mutex,
    items: DataCell<std::collections::VecDeque<i64>>,
    hint: Atomic<i64>,
    variant: Variant,
}

impl HintedQueue {
    /// Creates an empty queue of the given variant.
    pub fn with_variant(variant: Variant) -> Self {
        HintedQueue {
            lock: Mutex::new(),
            items: DataCell::new(std::collections::VecDeque::new()),
            hint: Atomic::new(HINT_SLACK),
            variant,
        }
    }

    /// Appends `value` at the tail.
    pub fn enqueue(&self, value: i64) {
        self.lock.acquire();
        self.items.with_mut(|q| q.push_back(value));
        match self.variant {
            Variant::Fixed => {
                // Inside the critical section the RMW is serialized with
                // every other hint increment.
                let h = self.hint.load();
                self.hint.store(h + 1);
                self.lock.release();
            }
            Variant::Pre => {
                self.lock.release();
                // The seeded defect: a plain read-modify-write outside
                // the lock. Two concurrent enqueues can both read the
                // same hint and lose an increment.
                let h = self.hint.load();
                self.hint.store(h + 1);
            }
        }
    }

    /// Removes and returns the head element, or `None` when the queue is
    /// (observed as) empty.
    pub fn try_dequeue(&self) -> Option<i64> {
        // Fast path: trust the hint and skip the lock entirely when the
        // queue looks empty. Sound as long as the hint never undercounts
        // past its slack — which the pre variant's increment race breaks.
        if self.hint.load() <= 0 {
            return None;
        }
        self.lock.acquire();
        let v = self.items.with_mut(|q| q.pop_front());
        self.lock.release();
        if v.is_some() {
            // Atomic decrement: takers cannot lose each other's updates,
            // and a stale interleaving can only leave the hint too high
            // (routing takes through the correct locked pop), never too
            // low.
            self.hint.fetch_sub(1);
        }
        v
    }

    /// Snapshot of the contents, head first.
    pub fn to_vec(&self) -> Vec<i64> {
        self.lock.acquire();
        let v = self.items.with(|q| q.iter().copied().collect());
        self.lock.release();
        v
    }
}

/// Line-Up target for [`HintedQueue`]: `Add`/`Enqueue` and
/// `TryTake`/`TryDequeue` only, keeping histories on the specialized
/// log-linear queue checker's fast path.
#[derive(Debug, Clone, Copy)]
pub struct HintedQueueTarget {
    /// Fixed or pre (lost hint increments).
    pub variant: Variant,
}

impl TestInstance for HintedQueue {
    fn invoke(&self, inv: &Invocation) -> Value {
        match inv.name.as_str() {
            "Enqueue" | "Add" => {
                self.enqueue(int_arg(inv));
                Value::Unit
            }
            "TryDequeue" | "TryTake" => try_result(self.try_dequeue()),
            other => panic!("HintedQueue: unknown operation {other}"),
        }
    }
}

impl TestTarget for HintedQueueTarget {
    type Instance = HintedQueue;

    fn name(&self) -> &str {
        match self.variant {
            Variant::Fixed => "HintedQueue",
            Variant::Pre => "HintedQueue (Pre)",
        }
    }

    fn create(&self) -> HintedQueue {
        HintedQueue::with_variant(self.variant)
    }

    fn invocations(&self) -> Vec<Invocation> {
        vec![
            Invocation::with_int("Add", 100),
            Invocation::with_int("Add", 200),
            Invocation::new("TryTake"),
        ]
    }
}

/// The fuzzing benchmark matrix: two adder threads (two `Add`s each, all
/// values globally distinct so histories stay unambiguous for the
/// specialized queue checker) plus `takers` threads of four `TryTake`s.
/// `takers = 2` gives the 4×4 benchmark, `takers = 3` the 5×4 one.
///
/// A violation needs two lost hint increments — two separately-scheduled
/// adder-adder RMW races — before the takers drain the corrupted hint and
/// one of them trusts it on a non-empty queue. Exhaustive DFS runs the
/// first adder to completion before ever interleaving it and backtracks
/// deepest-first, so every violating schedule sits behind shallow
/// decisions it reaches only after exhausting an astronomical
/// linearizable tail.
pub fn fuzz_matrix(takers: usize) -> lineup::TestMatrix {
    let mut columns = Vec::with_capacity(takers + 2);
    for adder in 0..2i64 {
        columns.push(vec![
            Invocation::with_int("Add", 100 * (2 * adder + 1)),
            Invocation::with_int("Add", 100 * (2 * adder + 2)),
        ]);
    }
    for _ in 0..takers {
        columns.push((0..4).map(|_| Invocation::new("TryTake")).collect());
    }
    lineup::TestMatrix::from_columns(columns)
}

/// The 4×4 fuzzing benchmark matrix (see [`fuzz_matrix`]).
pub fn fuzz4x4_matrix() -> lineup::TestMatrix {
    fuzz_matrix(2)
}

/// The 5×4 fuzzing benchmark matrix (see [`fuzz_matrix`]).
pub fn fuzz5x4_matrix() -> lineup::TestMatrix {
    fuzz_matrix(3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lineup::{check, CheckOptions, TestMatrix};

    #[test]
    fn unmodelled_fifo_order() {
        for variant in [Variant::Fixed, Variant::Pre] {
            let q = HintedQueue::with_variant(variant);
            assert_eq!(q.try_dequeue(), None);
            q.enqueue(1);
            q.enqueue(2);
            q.enqueue(3);
            assert_eq!(q.to_vec(), vec![1, 2, 3]);
            assert_eq!(q.try_dequeue(), Some(1));
            assert_eq!(q.try_dequeue(), Some(2));
            assert_eq!(q.try_dequeue(), Some(3));
            assert_eq!(q.try_dequeue(), None);
        }
    }

    #[test]
    fn fuzz_matrix_shape() {
        let m = fuzz4x4_matrix();
        assert_eq!(m.columns.len(), 4);
        assert!(m.columns.iter().all(|c| c.len() <= 4));
        assert_eq!(m.columns.iter().map(Vec::len).sum::<usize>(), 12);
        let adds: Vec<String> = m.columns[..2]
            .iter()
            .flatten()
            .map(|inv| format!("{:?}", inv.args))
            .collect();
        let distinct: std::collections::HashSet<_> = adds.iter().collect();
        assert_eq!(distinct.len(), 4, "Add values must be globally distinct");
        assert_eq!(fuzz5x4_matrix().columns.len(), 5);
    }

    #[test]
    fn fixed_passes_concurrent_adds_and_takes() {
        let target = HintedQueueTarget {
            variant: Variant::Fixed,
        };
        let m = TestMatrix::from_columns(vec![
            vec![Invocation::with_int("Add", 100), Invocation::new("TryTake")],
            vec![Invocation::with_int("Add", 200), Invocation::new("TryTake")],
        ]);
        let report = check(
            &target,
            &m,
            &CheckOptions::new().with_preemption_bound(None),
        );
        assert!(report.passed(), "{:?}", report.violations);
    }

    #[test]
    fn pre_survives_a_single_increment_race() {
        // The sentinel slack absorbs one lost increment: with only two
        // Adds in the whole test at most one increment race can happen,
        // so the pre variant is exhaustively linearizable here. The bug
        // needs a *chain* of two races — that depth is the point of the
        // workload.
        let target = HintedQueueTarget {
            variant: Variant::Pre,
        };
        let m = TestMatrix::from_columns(vec![
            vec![Invocation::with_int("Add", 100), Invocation::new("TryTake")],
            vec![Invocation::with_int("Add", 200), Invocation::new("TryTake")],
        ]);
        let report = check(
            &target,
            &m,
            &CheckOptions::new().with_preemption_bound(None),
        );
        assert!(
            report.passed(),
            "one lost increment must stay inside the slack: {:?}",
            report.violations
        );
    }
}
