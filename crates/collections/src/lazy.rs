//! `Lazy`: lazily-initialized value with double-checked locking
//! (`LazyInitialization` in the paper's Table 1; no seeded defect).
//!
//! The double-checked fast path (volatile flag read before the lock) is
//! another §5.6-style pattern that is correct but not conflict-
//! serializable.

use lineup::{Invocation, TestInstance, TestTarget, Value};
use lineup_sync::{DataCell, Mutex, VolatileCell};

/// A lazily-initialized `i64` whose factory runs at most once.
#[derive(Debug)]
pub struct Lazy {
    /// Volatile "created" flag for the lock-free fast path.
    created: VolatileCell<bool>,
    lock: Mutex,
    value: DataCell<i64>,
    /// What the factory produces (fixed at construction so the synthesized
    /// specification stays deterministic).
    factory_value: i64,
    /// How many times the factory ran — must end up ≤ 1.
    factory_runs: DataCell<i64>,
}

impl Lazy {
    /// Creates a lazy cell whose factory produces `factory_value`.
    pub fn new(factory_value: i64) -> Self {
        Lazy {
            created: VolatileCell::new(false),
            lock: Mutex::new(),
            value: DataCell::new(0),
            factory_value,
            factory_runs: DataCell::new(0),
        }
    }

    /// Forces initialization and returns the value (.NET `Lazy<T>.Value`).
    pub fn value(&self) -> i64 {
        // Double-checked locking: racy volatile read, then lock + re-check.
        if self.created.read() {
            return self.value.get();
        }
        self.lock.acquire();
        if !self.created.read() {
            // Run the factory.
            self.factory_runs.with_mut(|n| *n += 1);
            self.value.set(self.factory_value);
            self.created.write(true);
        }
        let v = self.value.get();
        self.lock.release();
        v
    }

    /// Whether the value has been created (.NET `IsValueCreated`).
    pub fn is_value_created(&self) -> bool {
        self.created.read()
    }

    /// Renders the value if created (.NET `ToString`).
    pub fn to_display(&self) -> String {
        if self.created.read() {
            self.value.get().to_string()
        } else {
            "ValueNotCreated".to_string()
        }
    }

    /// How many times the factory ran (test hook; must never exceed 1).
    pub fn factory_runs(&self) -> i64 {
        self.factory_runs.get()
    }
}

/// Line-Up target for [`Lazy`]. Invocations follow Table 1: `Value`,
/// `ToString`, `IsValueCreated`.
#[derive(Debug, Clone, Copy)]
pub struct LazyTarget;

impl TestInstance for Lazy {
    fn invoke(&self, inv: &Invocation) -> Value {
        match inv.name.as_str() {
            "Value" => Value::Int(self.value()),
            "IsValueCreated" => Value::Bool(self.is_value_created()),
            "ToString" => Value::Str(self.to_display()),
            other => panic!("Lazy: unknown operation {other}"),
        }
    }
}

impl TestTarget for LazyTarget {
    type Instance = Lazy;

    fn name(&self) -> &str {
        "Lazy Initialization"
    }

    fn create(&self) -> Lazy {
        Lazy::new(42)
    }

    fn invocations(&self) -> Vec<Invocation> {
        vec![
            Invocation::new("Value"),
            Invocation::new("ToString"),
            Invocation::new("IsValueCreated"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lineup::{check, CheckOptions, TestMatrix};
    use std::ops::ControlFlow;

    #[test]
    fn unmodelled_lazy_basics() {
        let l = Lazy::new(7);
        assert!(!l.is_value_created());
        assert_eq!(l.to_display(), "ValueNotCreated");
        assert_eq!(l.value(), 7);
        assert!(l.is_value_created());
        assert_eq!(l.to_display(), "7");
        assert_eq!(l.value(), 7);
        assert_eq!(l.factory_runs(), 1);
    }

    #[test]
    fn lazy_passes_check() {
        let m = TestMatrix::from_columns(vec![
            vec![Invocation::new("Value"), Invocation::new("IsValueCreated")],
            vec![Invocation::new("Value"), Invocation::new("ToString")],
        ]);
        let report = check(&LazyTarget, &m, &CheckOptions::new());
        assert!(report.passed(), "{:?}", report.violations);
    }

    /// The factory runs at most once in every schedule.
    #[test]
    fn factory_runs_at_most_once_under_contention() {
        let slot: std::rc::Rc<std::cell::RefCell<Option<std::sync::Arc<Lazy>>>> =
            Default::default();
        let slot2 = std::rc::Rc::clone(&slot);
        lineup_sched::explore(
            &lineup_sched::Config::exhaustive(),
            move |ex| {
                let l = std::sync::Arc::new(Lazy::new(5));
                *slot2.borrow_mut() = Some(std::sync::Arc::clone(&l));
                for _ in 0..2 {
                    let l = std::sync::Arc::clone(&l);
                    ex.spawn(move || {
                        assert_eq!(l.value(), 5);
                    });
                }
            },
            |run| {
                assert_eq!(run.outcome, lineup_sched::RunOutcome::Complete);
                let l = slot.borrow().clone().unwrap();
                assert_eq!(l.factory_runs(), 1);
                ControlFlow::Continue(())
            },
        );
    }
}
