//! The thirteen .NET-Framework-4.0-style concurrent classes used as
//! Line-Up's evaluation subjects (paper Table 1), re-implemented in Rust
//! against the instrumented `lineup-sync` primitives — each in a **fixed**
//! variant (modelled on the Beta 2 behaviour) and, where the paper found a
//! root cause, a **pre** variant (modelled on the CTP "Parallel
//! Extensions preview") seeded with the same class of defect:
//!
//! | Class | Pre root cause (paper §5.2) |
//! |---|---|
//! | [`manual_reset_event`] | **A** — CAS computes the new state from a re-read of the shared state → lost wakeup (Fig. 9) |
//! | [`concurrent_queue`] | **B** — timed lock acquire can time out → `TryTake` fails on a non-empty queue (Fig. 1) |
//! | [`semaphore_slim`] | **C** — `Release(n)` pulses a single waiter → other waiters sleep forever |
//! | [`concurrent_stack`] | **D** — `TryPopRange` pops one-at-a-time → non-contiguous ranges |
//! | [`countdown_event`] | **E** — `Signal` decrements with a non-atomic read-modify-write → lost signal |
//! | [`concurrent_dictionary`] | **F** — count maintained outside the bucket lock → `Count` misreports |
//! | [`concurrent_linked_list`] | **G** — `RemoveFirst` checks emptiness before locking → crash on the race |
//! | [`concurrent_bag`] | **H** — *intentional*: `TryTake` may take any element |
//! | [`blocking_collection`] | **I, J** — *intentional*: `Count`/`TryTake` may observe an inconsistent snapshot; **K** — *intentional*: `CompleteAdding` takes effect late |
//! | [`barrier`] | **L** — *intentional*: `SignalAndWait` is inherently nonlinearizable |
//! | [`lazy`], [`task_completion_source`], [`cancellation_token_source`] | — (no seeded defect) |
//! | [`hinted_queue`] | *synthetic* — unsynchronized size-hint RMW; phantom emptiness needs a **chain** of two lost increments (the coverage-fuzzing benchmark workload, not a Table 2 root cause) |
//!
//! Every class module exposes the data structure itself plus a
//! [`lineup::TestTarget`] adapter; the [`registry`] enumerates all class/
//! variant pairs for the Table 1 / Table 2 reproduction binaries.
//!
//! The [`counter`] module additionally contains the paper's pedagogical
//! `Counter1` (§2.2.1) and `Counter2` (§2.2.2) examples.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod barrier;
pub mod blocking_collection;
pub mod cancellation_token_source;
pub mod concurrent_bag;
pub mod concurrent_dictionary;
pub mod concurrent_linked_list;
pub mod concurrent_queue;
pub mod concurrent_stack;
pub mod countdown_event;
pub mod counter;
pub mod hinted_queue;
pub mod lazy;
pub mod manual_reset_event;
pub mod registry;
pub mod semaphore_slim;
pub mod support;
pub mod task_completion_source;

pub use registry::{all_classes, ClassEntry, RootCause, RootCauseKind, Variant};
