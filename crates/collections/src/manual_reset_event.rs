//! `ManualResetEvent` (modelled on .NET's `ManualResetEventSlim`): a
//! manually-reset signal. `Wait` blocks until the event is set; `Set`
//! wakes all waiters; `Reset` clears the signal.
//!
//! The **pre** variant carries root cause **A** of the paper (§5.2.1):
//! the waiter-registration compare-and-swap computes its new state from a
//! *re-read* of the shared state instead of the local copy — "a pernicious
//! typographical error". Under the Fig. 9 schedule
//! (`Wait ∥ Set; Reset; Set`) the registration writes a corrupted state
//! with the signaled bit set but a waiter count of zero, the final `Set`
//! therefore pulses nobody, and the waiter sleeps forever. "Even when the
//! bug is known, it is very hard to design a test harness that exposes
//! it: the value of state needs to change between the two reads but
//! needs to be set to the first value before the CAS operation."

use lineup::{Invocation, TestInstance, TestTarget, Value};
use lineup_sync::{Atomic, Monitor};

use crate::support::Variant;

/// Combined-state encoding: bit 0 = signaled, bits 1.. = waiter count.
const SIGNALED: i64 = 1;
const WAITER_UNIT: i64 = 2;

fn is_signaled(state: i64) -> bool {
    state & SIGNALED != 0
}

fn waiters(state: i64) -> i64 {
    state / WAITER_UNIT
}

/// A manual-reset event with a combined atomic state word plus a monitor
/// for sleeping waiters.
#[derive(Debug)]
pub struct ManualResetEvent {
    state: Atomic<i64>,
    monitor: Monitor,
    variant: Variant,
}

impl ManualResetEvent {
    /// Creates an unset event (fixed variant).
    pub fn new() -> Self {
        ManualResetEvent::with_variant(Variant::Fixed)
    }

    /// Creates an unset event of the given variant.
    pub fn with_variant(variant: Variant) -> Self {
        ManualResetEvent {
            state: Atomic::new(0),
            monitor: Monitor::new(),
            variant,
        }
    }

    /// Whether the event is currently set.
    pub fn is_set(&self) -> bool {
        is_signaled(self.state.load())
    }

    /// Sets the event, waking all registered waiters.
    pub fn set(&self) {
        loop {
            let s = self.state.load();
            if self.state.compare_exchange(s, s | SIGNALED).is_ok() {
                // Wake sleepers only when the snapshot says some exist —
                // the optimization that makes a corrupted waiter count
                // fatal in the pre variant.
                if waiters(s) > 0 {
                    self.monitor.enter();
                    self.monitor.pulse_all();
                    self.monitor.exit();
                }
                return;
            }
        }
    }

    /// Resets (clears) the event.
    pub fn reset(&self) {
        loop {
            let s = self.state.load();
            if self.state.compare_exchange(s, s & !SIGNALED).is_ok() {
                return;
            }
        }
    }

    /// Blocks until the event is set. (`WaitOne` in the .NET API is an
    /// alias.)
    pub fn wait(&self) {
        // Lock-free fast path.
        if is_signaled(self.state.load()) {
            return;
        }
        self.monitor.enter();
        loop {
            let local = self.state.load();
            if is_signaled(local) {
                break;
            }
            // Register as a waiter in the combined state, so Set knows to
            // pulse. The two variants differ *only* in how the new value
            // is computed:
            let newstate = match self.variant {
                // Correct: compute the new value from the local copy.
                Variant::Fixed => local + WAITER_UNIT,
                // Root cause A (§5.2.1): "the shared variable state is
                // read the second time when computing the new value". If
                // a Set lands between the two reads and a Reset restores
                // the first value before the CAS, the CAS succeeds but
                // writes SIGNALED-with-zero-waiters instead of
                // unsignaled-with-one-waiter: the sleeper below is
                // invisible to every future Set.
                Variant::Pre => {
                    let fresh = self.state.load();
                    if is_signaled(fresh) {
                        fresh // "already signaled: nothing to register"
                    } else {
                        fresh + WAITER_UNIT
                    }
                }
            };
            if self.state.compare_exchange(local, newstate).is_err() {
                continue;
            }
            // Sleep until pulsed (holding the monitor across registration
            // makes the pulse un-losable), then deregister and re-check.
            self.monitor.wait();
            self.state
                .fetch_update(|s| if waiters(s) > 0 { s - WAITER_UNIT } else { s });
        }
        self.monitor.exit();
    }
}

impl Default for ManualResetEvent {
    fn default() -> Self {
        ManualResetEvent::new()
    }
}

/// Line-Up target for [`ManualResetEvent`]. Invocations follow Table 1:
/// `Set`, `Wait`, `Reset`, `IsSet`, `WaitOne`.
#[derive(Debug, Clone, Copy)]
pub struct ManualResetEventTarget {
    /// Fixed or pre (root cause A).
    pub variant: Variant,
}

impl TestInstance for ManualResetEvent {
    fn invoke(&self, inv: &Invocation) -> Value {
        match inv.name.as_str() {
            "Set" => {
                self.set();
                Value::Unit
            }
            "Reset" => {
                self.reset();
                Value::Unit
            }
            "IsSet" => Value::Bool(self.is_set()),
            "Wait" | "WaitOne" => {
                self.wait();
                Value::Unit
            }
            other => panic!("ManualResetEvent: unknown operation {other}"),
        }
    }
}

impl TestTarget for ManualResetEventTarget {
    type Instance = ManualResetEvent;

    fn name(&self) -> &str {
        match self.variant {
            Variant::Fixed => "ManualResetEvent",
            Variant::Pre => "ManualResetEvent (Pre)",
        }
    }

    fn create(&self) -> ManualResetEvent {
        ManualResetEvent::with_variant(self.variant)
    }

    fn invocations(&self) -> Vec<Invocation> {
        vec![
            Invocation::new("Set"),
            Invocation::new("Wait"),
            Invocation::new("Reset"),
            Invocation::new("IsSet"),
            Invocation::new("WaitOne"),
        ]
    }
}

/// The Fig. 9 test: Thread 1 `Wait`s while Thread 2 performs
/// `Set; Reset; Set`. "Irrespective of the interleaving between the two
/// threads, one expects Thread 1 to be eventually unblocked."
pub fn fig9_matrix() -> lineup::TestMatrix {
    lineup::TestMatrix::from_columns(vec![
        vec![Invocation::new("Wait")],
        vec![
            Invocation::new("Set"),
            Invocation::new("Reset"),
            Invocation::new("Set"),
        ],
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use lineup::{check, CheckOptions, TestMatrix};

    #[test]
    fn unmodelled_set_reset() {
        let e = ManualResetEvent::new();
        assert!(!e.is_set());
        e.set();
        assert!(e.is_set());
        e.wait(); // already set: returns immediately
        e.reset();
        assert!(!e.is_set());
    }

    #[test]
    fn fixed_passes_fig9() {
        let target = ManualResetEventTarget {
            variant: Variant::Fixed,
        };
        let report = check(&target, &fig9_matrix(), &CheckOptions::new());
        assert!(report.passed(), "{:?}", report.violations);
    }

    #[test]
    fn pre_fails_fig9_with_stuck_wait() {
        let target = ManualResetEventTarget {
            variant: Variant::Pre,
        };
        let report = check(&target, &fig9_matrix(), &CheckOptions::new());
        assert!(!report.passed(), "root cause A must be detected");
        let v = report.first_violation().unwrap();
        match v {
            lineup::Violation::StuckNoWitness {
                history, pending, ..
            } => {
                assert_eq!(history.ops[*pending].invocation.name, "Wait");
            }
            other => panic!("expected a stuck-history violation, got {other:?}"),
        }
    }

    #[test]
    fn fixed_passes_waiter_vs_setter() {
        let target = ManualResetEventTarget {
            variant: Variant::Fixed,
        };
        let m = TestMatrix::from_columns(vec![
            vec![Invocation::new("Wait")],
            vec![Invocation::new("Set")],
        ]);
        let report = check(&target, &m, &CheckOptions::new());
        assert!(report.passed(), "{:?}", report.violations);
        // Serial Wait-first blocks: the spec has stuck histories.
        assert!(report.spec.stuck_count() > 0);
    }

    #[test]
    fn fixed_passes_two_waiters() {
        let target = ManualResetEventTarget {
            variant: Variant::Fixed,
        };
        let m = TestMatrix::from_columns(vec![
            vec![Invocation::new("Wait")],
            vec![Invocation::new("Wait")],
            vec![Invocation::new("Set")],
        ]);
        let report = check(&target, &m, &CheckOptions::new());
        assert!(report.passed(), "{:?}", report.violations);
    }

    #[test]
    fn is_set_observes_reset() {
        let target = ManualResetEventTarget {
            variant: Variant::Fixed,
        };
        let m = TestMatrix::from_columns(vec![
            vec![Invocation::new("IsSet")],
            vec![Invocation::new("Set"), Invocation::new("Reset")],
        ]);
        assert!(check(&target, &m, &CheckOptions::new()).passed());
    }
}
