//! The class registry: every class/variant pair of the evaluation, with
//! the metadata the Table 1 / Table 2 reproduction binaries need.

use std::sync::Arc;

use lineup::{AdtKind, ErasedTarget, Invocation, SymmetryPolicy, TestMatrix};

pub use crate::support::Variant;

use crate::barrier::BarrierTarget;
use crate::blocking_collection::BlockingCollectionTarget;
use crate::cancellation_token_source::CancellationTokenSourceTarget;
use crate::concurrent_bag::ConcurrentBagTarget;
use crate::concurrent_dictionary::ConcurrentDictionaryTarget;
use crate::concurrent_linked_list::ConcurrentLinkedListTarget;
use crate::concurrent_queue::ConcurrentQueueTarget;
use crate::concurrent_stack::ConcurrentStackTarget;
use crate::countdown_event::CountdownEventTarget;
use crate::lazy::LazyTarget;
use crate::manual_reset_event::ManualResetEventTarget;
use crate::semaphore_slim::SemaphoreSlimTarget;
use crate::task_completion_source::TaskCompletionSourceTarget;

/// The root causes of Table 2, A through L.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RootCause {
    /// ManualResetEvent: CAS computes new state from a re-read (Fig. 9).
    A,
    /// ConcurrentQueue: timed lock acquire times out in TryTake (Fig. 1).
    B,
    /// SemaphoreSlim: Release pulses one waiter instead of all.
    C,
    /// ConcurrentStack: TryPopRange pops non-atomically.
    D,
    /// CountdownEvent: Signal decrements with a non-atomic RMW.
    E,
    /// ConcurrentDictionary: count maintained outside the bucket lock.
    F,
    /// ConcurrentLinkedList: RemoveFirst checks emptiness before locking.
    G,
    /// ConcurrentBag: TryTake may take (or miss) any element.
    H,
    /// BlockingCollection: Count may observe an inconsistent snapshot.
    I,
    /// BlockingCollection: TryTake may fail on a non-empty collection.
    J,
    /// BlockingCollection: CompleteAdding takes effect after returning.
    K,
    /// Barrier: SignalAndWait is inherently nonlinearizable.
    L,
}

/// The three categories of §5.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootCauseKind {
    /// A genuine implementation error (7 of the paper's 12).
    Bug,
    /// Intentional nondeterminism (3 of 12): documented, not fixed.
    IntentionalNondeterminism,
    /// Intentional nonlinearizability (2 of 12).
    IntentionalNonlinearizability,
}

impl RootCause {
    /// The §5.2 classification of this root cause.
    pub fn kind(self) -> RootCauseKind {
        match self {
            RootCause::A
            | RootCause::B
            | RootCause::C
            | RootCause::D
            | RootCause::E
            | RootCause::F
            | RootCause::G => RootCauseKind::Bug,
            RootCause::H | RootCause::I | RootCause::J => RootCauseKind::IntentionalNondeterminism,
            RootCause::K | RootCause::L => RootCauseKind::IntentionalNonlinearizability,
        }
    }

    /// A one-line description for reports.
    pub fn description(self) -> &'static str {
        match self {
            RootCause::A => "CAS computes new state from a re-read of the shared state",
            RootCause::B => "timed lock acquire can time out, TryTake fails spuriously",
            RootCause::C => "Release pulses a single waiter instead of all",
            RootCause::D => "TryPopRange pops elements one at a time",
            RootCause::E => "Signal decrements with a non-atomic read-modify-write",
            RootCause::F => "element count maintained outside the bucket lock",
            RootCause::G => "RemoveFirst checks emptiness before taking the lock",
            RootCause::H => "TryTake may take (or miss) any element (unordered bag)",
            RootCause::I => "Count may observe an inconsistent snapshot",
            RootCause::J => "TryTake may fail although the collection is non-empty",
            RootCause::K => "CompleteAdding takes effect after the method returns",
            RootCause::L => "SignalAndWait is not equivalent to any serial execution",
        }
    }
}

/// One class/variant row of the evaluation.
pub struct ClassEntry {
    /// Class name with the Table 2 "(Pre)" marker where applicable.
    pub name: &'static str,
    /// Variant of the implementation.
    pub variant: Variant,
    /// Lines of code of the implementing module (the paper's Table 1 LOC
    /// column; ours counts the Rust module including its tests).
    pub loc: usize,
    /// Root causes Line-Up is expected to expose on this entry.
    pub expected_root_causes: &'static [RootCause],
    /// The abstract data type this class implements, for the specialized
    /// monitor fast path (`None` for classes outside the four supported
    /// kinds — they always take the general search). The annotation
    /// claims ideal-ADT behavior *serially*, which holds for the Pre
    /// variants too: their seeded defects are concurrency races.
    pub adt_kind: Option<AdtKind>,
    target: Arc<dyn ErasedTarget + Send + Sync>,
}

impl std::fmt::Debug for ClassEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClassEntry")
            .field("name", &self.name)
            .field("variant", &self.variant)
            .field("loc", &self.loc)
            .field("expected_root_causes", &self.expected_root_causes)
            .finish()
    }
}

impl ClassEntry {
    /// The checking facade for this class.
    pub fn target(&self) -> &(dyn ErasedTarget + Send + Sync) {
        &*self.target
    }

    /// A shareable handle to the target (for parallel drivers).
    pub fn target_arc(&self) -> Arc<dyn ErasedTarget + Send + Sync> {
        Arc::clone(&self.target)
    }

    /// The class's thread-symmetry annotation (see [`SymmetryPolicy`]):
    /// how far symmetric-schedule pruning and canonical history
    /// deduplication may go when checking it. Data-independent
    /// collections (queue, stack, dictionary) declare
    /// [`SymmetryPolicy::Full`]; `ConcurrentBag` disables symmetry
    /// entirely because its per-thread steal slots make behaviour depend
    /// on thread identity; everything else keeps the literal-column
    /// default.
    pub fn symmetry_policy(&self) -> SymmetryPolicy {
        self.target.symmetry_policy()
    }

    /// Targeted regression test matrices known to exercise this entry's
    /// root causes (paper §4.3: "the user is always free to specify test
    /// matrices directly, a useful feature for testing very specific
    /// scenarios or for writing regression tests"). Empty for entries
    /// without expected root causes. The first matrix is the canonical
    /// demo; classes with several root causes get one matrix per cause.
    pub fn regression_matrices(&self) -> Vec<TestMatrix> {
        if self.expected_root_causes.is_empty() {
            return Vec::new();
        }
        let inv = Invocation::new;
        let inv_i = Invocation::with_int;
        let ms = match self.name.trim_end_matches(" (Pre)") {
            "ManualResetEvent" => vec![TestMatrix::from_columns(vec![
                vec![inv("Wait")],
                vec![inv("Set"), inv("Reset"), inv("Set")],
            ])],
            "SemaphoreSlim" => vec![TestMatrix::from_columns(vec![
                vec![inv("Wait")],
                vec![inv("Wait")],
                vec![inv_i("Release", 2)],
            ])],
            "CountdownEvent" => vec![TestMatrix::from_columns(vec![
                vec![inv("Signal")],
                vec![inv("Signal")],
                vec![inv("Wait")],
            ])],
            "ConcurrentDictionary" => vec![TestMatrix::from_columns(vec![
                vec![inv_i("TryAdd", 10)],
                vec![inv_i("TryAdd", 20)],
            ])
            .with_finally(vec![inv("Count")])],
            "ConcurrentQueue" => vec![TestMatrix::from_columns(vec![
                vec![inv_i("Enqueue", 200), inv_i("Enqueue", 400)],
                vec![inv("TryDequeue"), inv("TryDequeue")],
            ])],
            "ConcurrentStack" => vec![TestMatrix::from_columns(vec![
                vec![inv("TryPopRangeTwo")],
                vec![inv("TryPop")],
            ])
            .with_init(vec![inv_i("Push", 1), inv_i("Push", 2), inv_i("Push", 3)])],
            "ConcurrentLinkedList" => vec![TestMatrix::from_columns(vec![
                vec![inv("RemoveFirst")],
                vec![inv("RemoveList")],
            ])
            .with_init(vec![inv_i("AddLast", 10)])],
            "BlockingCollection" => vec![
                // K: CompleteAdding's effect lands after it returns.
                TestMatrix::from_columns(vec![
                    vec![inv("CompleteAdding")],
                    vec![inv_i("TryAdd", 10)],
                    vec![inv_i("TryAdd", 20)],
                ]),
                // I: Count observes an inconsistent snapshot.
                TestMatrix::from_columns(vec![
                    vec![inv("Count")],
                    vec![inv("Take"), inv_i("Add", 30), inv("Take")],
                ])
                .with_init(vec![inv_i("Add", 10), inv_i("Add", 20)]),
                // J: TryTake fails on a never-empty collection.
                TestMatrix::from_columns(vec![
                    vec![inv("TryTake")],
                    vec![inv("Take"), inv_i("Add", 30), inv("Take")],
                ])
                .with_init(vec![inv_i("Add", 10), inv_i("Add", 20)]),
            ],
            "ConcurrentBag" => vec![TestMatrix::from_columns(vec![
                vec![inv_i("Add", 10)],
                vec![inv("TryTake")],
                vec![inv_i("Add", 30), inv("TryTake")],
            ])],
            "Barrier" => vec![TestMatrix::from_columns(vec![
                vec![inv("SignalAndWait")],
                vec![inv("SignalAndWait")],
            ])],
            _ => Vec::new(),
        };
        ms
    }

    /// The canonical regression matrix (the first of
    /// [`regression_matrices`](ClassEntry::regression_matrices)).
    pub fn regression_matrix(&self) -> Option<TestMatrix> {
        self.regression_matrices().into_iter().next()
    }

    /// The methods checked (the invocation names of the catalog — the
    /// paper's Table 1 "Methods checked" column).
    pub fn methods(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .target
            .invocations()
            .iter()
            .map(|i| i.to_string())
            .collect();
        names.dedup();
        names
    }
}

macro_rules! entry {
    ($name:expr, $variant:expr, $file:expr, $causes:expr, $target:expr) => {
        entry!($name, $variant, $file, $causes, $target, None)
    };
    ($name:expr, $variant:expr, $file:expr, $causes:expr, $target:expr, $kind:expr) => {
        ClassEntry {
            name: $name,
            variant: $variant,
            loc: include_str!($file).lines().count(),
            expected_root_causes: $causes,
            adt_kind: $kind,
            target: Arc::new($target),
        }
    };
}

/// All class/variant pairs of the evaluation: the 13 classes of Table 1
/// (Beta-2-like fixed variants) plus the 7 CTP-like "(Pre)" variants that
/// carry the seeded bugs A–G. Root causes H–L live in the shipped
/// variants, as in the paper.
pub fn all_classes() -> Vec<ClassEntry> {
    use RootCause as RC;
    vec![
        entry!(
            "Lazy Initialization",
            Variant::Fixed,
            "lazy.rs",
            &[],
            LazyTarget
        ),
        entry!(
            "ManualResetEvent",
            Variant::Fixed,
            "manual_reset_event.rs",
            &[],
            ManualResetEventTarget {
                variant: Variant::Fixed
            }
        ),
        entry!(
            "ManualResetEvent (Pre)",
            Variant::Pre,
            "manual_reset_event.rs",
            &[RC::A],
            ManualResetEventTarget {
                variant: Variant::Pre
            }
        ),
        entry!(
            "SemaphoreSlim",
            Variant::Fixed,
            "semaphore_slim.rs",
            &[],
            SemaphoreSlimTarget {
                variant: Variant::Fixed,
                initial: 0,
            }
        ),
        entry!(
            "SemaphoreSlim (Pre)",
            Variant::Pre,
            "semaphore_slim.rs",
            &[RC::C],
            SemaphoreSlimTarget {
                variant: Variant::Pre,
                initial: 0,
            }
        ),
        entry!(
            "CountdownEvent",
            Variant::Fixed,
            "countdown_event.rs",
            &[],
            CountdownEventTarget {
                variant: Variant::Fixed,
                initial: 2,
            }
        ),
        entry!(
            "CountdownEvent (Pre)",
            Variant::Pre,
            "countdown_event.rs",
            &[RC::E],
            CountdownEventTarget {
                variant: Variant::Pre,
                initial: 2,
            }
        ),
        entry!(
            "ConcurrentDictionary",
            Variant::Fixed,
            "concurrent_dictionary.rs",
            &[],
            ConcurrentDictionaryTarget {
                variant: Variant::Fixed
            },
            Some(AdtKind::Set)
        ),
        entry!(
            "ConcurrentDictionary (Pre)",
            Variant::Pre,
            "concurrent_dictionary.rs",
            &[RC::F],
            ConcurrentDictionaryTarget {
                variant: Variant::Pre
            },
            Some(AdtKind::Set)
        ),
        entry!(
            "ConcurrentQueue",
            Variant::Fixed,
            "concurrent_queue.rs",
            &[],
            ConcurrentQueueTarget {
                variant: Variant::Fixed
            },
            Some(AdtKind::Queue)
        ),
        entry!(
            "ConcurrentQueue (Pre)",
            Variant::Pre,
            "concurrent_queue.rs",
            &[RC::B],
            ConcurrentQueueTarget {
                variant: Variant::Pre
            },
            Some(AdtKind::Queue)
        ),
        entry!(
            "ConcurrentStack",
            Variant::Fixed,
            "concurrent_stack.rs",
            &[],
            ConcurrentStackTarget {
                variant: Variant::Fixed
            },
            Some(AdtKind::Stack)
        ),
        entry!(
            "ConcurrentStack (Pre)",
            Variant::Pre,
            "concurrent_stack.rs",
            &[RC::D],
            ConcurrentStackTarget {
                variant: Variant::Pre
            },
            Some(AdtKind::Stack)
        ),
        entry!(
            "ConcurrentLinkedList",
            Variant::Fixed,
            "concurrent_linked_list.rs",
            &[],
            ConcurrentLinkedListTarget {
                variant: Variant::Fixed
            }
        ),
        entry!(
            "ConcurrentLinkedList (Pre)",
            Variant::Pre,
            "concurrent_linked_list.rs",
            &[RC::G],
            ConcurrentLinkedListTarget {
                variant: Variant::Pre
            }
        ),
        entry!(
            "BlockingCollection",
            Variant::Fixed,
            "blocking_collection.rs",
            &[RC::I, RC::J, RC::K],
            BlockingCollectionTarget { capacity: 2 }
        ),
        entry!(
            "ConcurrentBag",
            Variant::Fixed,
            "concurrent_bag.rs",
            &[RC::H],
            ConcurrentBagTarget {
                variant: Variant::Fixed
            }
        ),
        entry!(
            "TaskCompletionSource",
            Variant::Fixed,
            "task_completion_source.rs",
            &[],
            TaskCompletionSourceTarget
        ),
        entry!(
            "CancellationTokenSource",
            Variant::Fixed,
            "cancellation_token_source.rs",
            &[],
            CancellationTokenSourceTarget
        ),
        entry!(
            "Barrier",
            Variant::Fixed,
            "barrier.rs",
            &[RC::L],
            BarrierTarget { participants: 2 }
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_thirteen_classes() {
        let entries = all_classes();
        let classes: std::collections::BTreeSet<&str> = entries
            .iter()
            .map(|e| e.name.trim_end_matches(" (Pre)"))
            .collect();
        assert_eq!(classes.len(), 13, "{classes:?}");
    }

    #[test]
    fn registry_covers_all_twelve_root_causes() {
        let entries = all_classes();
        let causes: std::collections::BTreeSet<RootCause> = entries
            .iter()
            .flat_map(|e| e.expected_root_causes.iter().copied())
            .collect();
        assert_eq!(causes.len(), 12);
    }

    #[test]
    fn seven_bugs_three_nondet_two_nonlin() {
        use std::collections::BTreeSet;
        let causes: BTreeSet<RootCause> = all_classes()
            .iter()
            .flat_map(|e| e.expected_root_causes.iter().copied())
            .collect();
        let bugs = causes
            .iter()
            .filter(|c| c.kind() == RootCauseKind::Bug)
            .count();
        let nondet = causes
            .iter()
            .filter(|c| c.kind() == RootCauseKind::IntentionalNondeterminism)
            .count();
        let nonlin = causes
            .iter()
            .filter(|c| c.kind() == RootCauseKind::IntentionalNonlinearizability)
            .count();
        assert_eq!((bugs, nondet, nonlin), (7, 3, 2));
    }

    #[test]
    fn symmetry_annotations_match_the_class_semantics() {
        for e in all_classes() {
            let expected = match e.name.trim_end_matches(" (Pre)") {
                // Data-independent collections: payloads are opaque.
                "ConcurrentQueue" | "ConcurrentStack" | "ConcurrentDictionary" => {
                    SymmetryPolicy::Full
                }
                // Thread-identity-sensitive: per-thread steal slots.
                "ConcurrentBag" => SymmetryPolicy::Disabled,
                _ => SymmetryPolicy::ThreadsOnly,
            };
            assert_eq!(e.symmetry_policy(), expected, "{}", e.name);
        }
    }

    #[test]
    fn entries_expose_methods_and_loc() {
        for e in all_classes() {
            assert!(!e.methods().is_empty(), "{} has methods", e.name);
            assert!(e.loc > 50, "{} has substance", e.name);
            assert!(!e.target().invocations().is_empty());
        }
    }

    #[test]
    fn every_seeded_entry_has_a_regression_matrix() {
        for e in all_classes() {
            assert_eq!(
                e.regression_matrix().is_some(),
                !e.expected_root_causes.is_empty(),
                "{}",
                e.name
            );
        }
    }

    #[test]
    fn total_method_count_is_substantial() {
        // The paper checks 90 methods across 13 classes; our catalogs are
        // in the same ballpark.
        let total: usize = all_classes()
            .iter()
            .filter(|e| e.variant == Variant::Fixed)
            .map(|e| e.methods().len())
            .sum();
        assert!(total >= 60, "got {total}");
    }
}
