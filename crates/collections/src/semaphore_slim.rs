//! `SemaphoreSlim`: a counting semaphore. `Wait` blocks while the count is
//! zero; `Release(n)` returns permits and wakes sleepers; `Wait(0)` is a
//! non-blocking try-acquire.
//!
//! The fixed variant includes the **timing optimization** the paper calls
//! out in §5.6 (pattern 2): `Wait(0)` and `CurrentCount` read the count
//! with a volatile load *before* taking the lock (double-checked-locking
//! style). This "does not affect correctness, but breaks serializability"
//! — the conflict-serializability comparison checker flags it while
//! Line-Up correctly passes it.
//!
//! The **pre** variant carries root cause **C**: `Release(n)` wakes
//! sleepers with a single `Pulse` regardless of `n`, so when two waiters
//! sleep and both permits arrive at once, one waiter sleeps forever — a
//! liveness bug only the generalized (blocking-aware) linearizability of
//! §2.3 can detect.

use lineup::{Invocation, TestInstance, TestTarget, Value};
use lineup_sync::{Monitor, VolatileCell};

use crate::support::{int_arg, Variant};

/// A counting semaphore in the style of .NET's `SemaphoreSlim`.
#[derive(Debug)]
pub struct SemaphoreSlim {
    monitor: Monitor,
    /// The permit count. Volatile so the lock-free fast paths are
    /// well-defined reads (no data race), as in the original.
    count: VolatileCell<i64>,
    variant: Variant,
}

impl SemaphoreSlim {
    /// Creates a semaphore with the given initial permit count.
    pub fn new(initial: i64) -> Self {
        SemaphoreSlim::with_variant(initial, Variant::Fixed)
    }

    /// Creates a semaphore of the given variant.
    pub fn with_variant(initial: i64, variant: Variant) -> Self {
        SemaphoreSlim {
            monitor: Monitor::new(),
            count: VolatileCell::new(initial),
            variant,
        }
    }

    /// The current permit count (lock-free volatile read — the §5.6
    /// pattern-2 optimization).
    pub fn current_count(&self) -> i64 {
        self.count.read()
    }

    /// Acquires one permit, blocking while none are available.
    pub fn wait(&self) {
        self.monitor.enter();
        while self.count.read() == 0 {
            self.monitor.wait();
        }
        self.count.write(self.count.read() - 1);
        self.monitor.exit();
    }

    /// Tries to acquire one permit without blocking (`Wait(0)` in .NET);
    /// returns whether a permit was taken.
    pub fn try_wait(&self) -> bool {
        // Timing optimization (§5.6 pattern 2): check the count before
        // taking the lock; bail out without synchronizing when empty.
        if self.count.read() == 0 {
            return false;
        }
        self.monitor.enter();
        let ok = self.count.read() > 0;
        if ok {
            self.count.write(self.count.read() - 1);
        }
        self.monitor.exit();
        ok
    }

    /// Releases `n` permits, waking sleepers.
    pub fn release(&self, n: i64) {
        assert!(n > 0, "release requires a positive permit count");
        self.monitor.enter();
        self.count.write(self.count.read() + n);
        match self.variant {
            // Correct: wake everyone; woken threads re-check the count.
            Variant::Fixed => self.monitor.pulse_all(),
            // Root cause C: a single pulse regardless of n. With two
            // sleepers and Release(2), one waiter is never woken.
            Variant::Pre => self.monitor.pulse(),
        }
        self.monitor.exit();
    }
}

/// Line-Up target for [`SemaphoreSlim`]. Invocations follow Table 1:
/// `CurrentCount`, `Release`, `Release(2)`, `Wait`, `Wait(0)`.
#[derive(Debug, Clone, Copy)]
pub struct SemaphoreSlimTarget {
    /// Fixed or pre (root cause C).
    pub variant: Variant,
    /// Initial permit count for fresh instances.
    pub initial: i64,
}

impl TestInstance for SemaphoreSlim {
    fn invoke(&self, inv: &Invocation) -> Value {
        match (inv.name.as_str(), inv.args.len()) {
            ("CurrentCount", _) => Value::Int(self.current_count()),
            ("Wait", 0) => {
                self.wait();
                Value::Unit
            }
            // Wait(0): the non-blocking variant.
            ("Wait", 1) if int_arg(inv) == 0 => Value::Bool(self.try_wait()),
            ("Release", 0) => {
                self.release(1);
                Value::Unit
            }
            ("Release", 1) => {
                self.release(int_arg(inv));
                Value::Unit
            }
            (other, _) => panic!("SemaphoreSlim: unknown operation {other}"),
        }
    }
}

impl TestTarget for SemaphoreSlimTarget {
    type Instance = SemaphoreSlim;

    fn name(&self) -> &str {
        match self.variant {
            Variant::Fixed => "SemaphoreSlim",
            Variant::Pre => "SemaphoreSlim (Pre)",
        }
    }

    fn create(&self) -> SemaphoreSlim {
        SemaphoreSlim::with_variant(self.initial, self.variant)
    }

    fn invocations(&self) -> Vec<Invocation> {
        vec![
            Invocation::new("CurrentCount"),
            Invocation::new("Release"),
            Invocation::with_int("Release", 2),
            Invocation::new("Wait"),
            Invocation::with_int("Wait", 0),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lineup::{check, CheckOptions, TestMatrix};

    fn wait() -> Invocation {
        Invocation::new("Wait")
    }
    fn release2() -> Invocation {
        Invocation::with_int("Release", 2)
    }

    #[test]
    fn unmodelled_semaphore_basics() {
        let s = SemaphoreSlim::new(1);
        assert_eq!(s.current_count(), 1);
        s.wait();
        assert_eq!(s.current_count(), 0);
        assert!(!s.try_wait());
        s.release(2);
        assert!(s.try_wait());
        assert_eq!(s.current_count(), 1);
    }

    #[test]
    #[should_panic(expected = "positive permit count")]
    fn release_zero_rejected() {
        SemaphoreSlim::new(0).release(0);
    }

    #[test]
    fn fixed_passes_two_waiters_release2() {
        let target = SemaphoreSlimTarget {
            variant: Variant::Fixed,
            initial: 0,
        };
        let m = TestMatrix::from_columns(vec![vec![wait()], vec![wait()], vec![release2()]]);
        let report = check(&target, &m, &CheckOptions::new());
        assert!(report.passed(), "{:?}", report.violations);
        // Serial schedules where a Wait runs first get stuck.
        assert!(report.spec.stuck_count() > 0);
    }

    #[test]
    fn pre_fails_two_waiters_release2() {
        // Root cause C: Release(2) pulses once; the second sleeper never
        // wakes even though a permit is available.
        let target = SemaphoreSlimTarget {
            variant: Variant::Pre,
            initial: 0,
        };
        let m = TestMatrix::from_columns(vec![vec![wait()], vec![wait()], vec![release2()]]);
        let report = check(&target, &m, &CheckOptions::new());
        assert!(!report.passed());
        assert!(matches!(
            report.first_violation(),
            Some(lineup::Violation::StuckNoWitness { .. })
        ));
    }

    #[test]
    fn fixed_fast_path_try_wait_passes() {
        let target = SemaphoreSlimTarget {
            variant: Variant::Fixed,
            initial: 1,
        };
        let m = TestMatrix::from_columns(vec![
            vec![
                Invocation::with_int("Wait", 0),
                Invocation::new("CurrentCount"),
            ],
            vec![Invocation::new("Release"), Invocation::with_int("Wait", 0)],
        ]);
        let report = check(&target, &m, &CheckOptions::new());
        assert!(report.passed(), "{:?}", report.violations);
    }

    #[test]
    fn pre_passes_single_waiter() {
        // With one waiter, a single pulse suffices: the pre bug needs two
        // sleepers to manifest (min dimension > 1x2).
        let target = SemaphoreSlimTarget {
            variant: Variant::Pre,
            initial: 0,
        };
        let m = TestMatrix::from_columns(vec![vec![wait()], vec![Invocation::new("Release")]]);
        let report = check(&target, &m, &CheckOptions::new());
        assert!(report.passed(), "{:?}", report.violations);
    }
}
