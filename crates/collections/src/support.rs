//! Small shared helpers for the target adapters.

use lineup::{Invocation, Value};

/// Extracts the single integer argument of an invocation.
///
/// # Panics
///
/// Panics (caught by Line-Up and reported) when the argument is missing or
/// not an integer — adapters are exercised only with their own catalogs.
pub fn int_arg(inv: &Invocation) -> i64 {
    match inv.args.first() {
        Some(Value::Int(v)) => *v,
        other => panic!("{}: expected integer argument, got {other:?}", inv.name),
    }
}

/// `Some(v)` on success, [`Value::Fail`] on failure — the shape of the
/// .NET `bool TryX(out T value)` methods.
pub fn try_result(v: Option<i64>) -> Value {
    match v {
        Some(v) => Value::some(Value::Int(v)),
        None => Value::Fail,
    }
}

/// Renders a `bool` as a [`Value`].
pub fn bool_value(b: bool) -> Value {
    Value::Bool(b)
}

/// The variant of a class implementation under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// The corrected implementation (models the Beta 2 release).
    Fixed,
    /// The preview implementation with the seeded root cause (models the
    /// CTP release; Table 2 marks these classes "(Pre)").
    Pre,
}

impl Variant {
    /// Suffix used in class names, matching Table 2 ("(Pre)" markers).
    pub fn suffix(self) -> &'static str {
        match self {
            Variant::Fixed => "",
            Variant::Pre => " (Pre)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_arg_reads_first_int() {
        assert_eq!(int_arg(&Invocation::with_int("Add", 200)), 200);
    }

    #[test]
    #[should_panic(expected = "expected integer argument")]
    fn int_arg_panics_without_arg() {
        int_arg(&Invocation::new("Add"));
    }

    #[test]
    fn try_result_shapes() {
        assert_eq!(try_result(Some(5)), Value::some(Value::Int(5)));
        assert_eq!(try_result(None), Value::Fail);
    }

    #[test]
    fn variant_suffixes() {
        assert_eq!(Variant::Fixed.suffix(), "");
        assert_eq!(Variant::Pre.suffix(), " (Pre)");
    }
}
