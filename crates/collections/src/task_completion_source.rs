#![allow(clippy::result_unit_err)] // modelled .NET exceptions are `Err(())` responses

//! `TaskCompletionSource`: a one-shot completion cell — exactly one of
//! result / cancellation / exception wins; `Wait` blocks until completion.
//! (No seeded defect; Table 1 lists it in the Beta 2 set.)

use lineup::{Invocation, TestInstance, TestTarget, Value};
use lineup_sync::{spin, Atomic, DataCell, Monitor};

use crate::support::int_arg;

/// Completion states.
const PENDING: i64 = 0;
const RESULT: i64 = 1;
const CANCELED: i64 = 2;
const FAULTED: i64 = 3;
/// A completer won the pending→X race and is publishing its payload;
/// readers treat this as still pending.
const COMMITTING: i64 = 4;

/// A one-shot completion source in the style of .NET's
/// `TaskCompletionSource<int>`.
#[derive(Debug)]
pub struct TaskCompletionSource {
    state: Atomic<i64>,
    result: DataCell<i64>,
    monitor: Monitor,
}

impl TaskCompletionSource {
    /// Creates a pending source.
    pub fn new() -> Self {
        TaskCompletionSource {
            state: Atomic::new(PENDING),
            result: DataCell::new(0),
            monitor: Monitor::new(),
        }
    }

    /// Waits out a concurrent completer's publication window and returns
    /// the settled state. Reporting "already completed" (or reading the
    /// result) *before* the winner's effect is visible would not be
    /// linearizable: a caller could observe `TrySetCanceled == false`
    /// followed by `TryResult == Fail`, which matches no serialization.
    fn settled_state(&self) -> i64 {
        let mut s = self.state.load();
        spin::spin_until(|| {
            s = self.state.load();
            s != COMMITTING
        });
        s
    }

    fn complete(&self, state: i64, result: Option<i64>) -> bool {
        // Win the one-shot race first (pending → committing), then publish
        // the payload, then the final state: losers can never clobber the
        // winner's payload, and readers only observe the payload after the
        // final state is visible.
        if self.state.compare_exchange(PENDING, COMMITTING).is_err() {
            // Lost the race: wait until the winner's effect is visible
            // before reporting completion (linearize after the winner).
            self.settled_state();
            return false;
        }
        if let Some(r) = result {
            self.result.set(r);
        }
        self.state.store(state);
        self.monitor.enter();
        self.monitor.pulse_all();
        self.monitor.exit();
        true
    }

    /// Attempts to complete with a result; `false` if already completed.
    pub fn try_set_result(&self, value: i64) -> bool {
        self.complete(RESULT, Some(value))
    }

    /// Attempts to cancel; `false` if already completed.
    pub fn try_set_canceled(&self) -> bool {
        self.complete(CANCELED, None)
    }

    /// Attempts to fault; `false` if already completed.
    pub fn try_set_exception(&self) -> bool {
        self.complete(FAULTED, None)
    }

    /// Completes with a result. Returns `Err(())` when already completed
    /// (the .NET original throws).
    pub fn set_result(&self, value: i64) -> Result<(), ()> {
        if self.try_set_result(value) {
            Ok(())
        } else {
            Err(())
        }
    }

    /// Cancels. Returns `Err(())` when already completed.
    pub fn set_canceled(&self) -> Result<(), ()> {
        if self.try_set_canceled() {
            Ok(())
        } else {
            Err(())
        }
    }

    /// Faults. Returns `Err(())` when already completed.
    pub fn set_exception(&self) -> Result<(), ()> {
        if self.try_set_exception() {
            Ok(())
        } else {
            Err(())
        }
    }

    /// Blocks until completed; returns the final state and result.
    pub fn wait(&self) -> (i64, i64) {
        self.monitor.enter();
        while matches!(self.state.load(), PENDING | COMMITTING) {
            self.monitor.wait();
        }
        self.monitor.exit();
        let s = self.state.load();
        let r = if s == RESULT { self.result.get() } else { 0 };
        (s, r)
    }

    /// Non-blocking result query: the result when completed with one.
    pub fn try_result(&self) -> Option<i64> {
        if self.settled_state() == RESULT {
            Some(self.result.get())
        } else {
            None
        }
    }

    /// The observed exception state (None while pending / non-faulted).
    pub fn exception(&self) -> Option<&'static str> {
        match self.settled_state() {
            FAULTED => Some("Exception"),
            CANCELED => Some("TaskCanceledException"),
            _ => None,
        }
    }
}

impl Default for TaskCompletionSource {
    fn default() -> Self {
        TaskCompletionSource::new()
    }
}

/// Line-Up target for [`TaskCompletionSource`]. Invocations follow
/// Table 1: `Exception`, `TrySetCanceled`, `TrySetException`,
/// `TrySetResult`, `SetCanceled`, `SetException`, `SetResult`, `Wait`,
/// `TryResult`.
#[derive(Debug, Clone, Copy)]
pub struct TaskCompletionSourceTarget;

impl TestInstance for TaskCompletionSource {
    fn invoke(&self, inv: &Invocation) -> Value {
        let err = || Value::Str("InvalidOperationException".into());
        match inv.name.as_str() {
            "TrySetResult" => Value::Bool(self.try_set_result(int_arg(inv))),
            "TrySetCanceled" => Value::Bool(self.try_set_canceled()),
            "TrySetException" => Value::Bool(self.try_set_exception()),
            "SetResult" => match self.set_result(int_arg(inv)) {
                Ok(()) => Value::Unit,
                Err(()) => err(),
            },
            "SetCanceled" => match self.set_canceled() {
                Ok(()) => Value::Unit,
                Err(()) => err(),
            },
            "SetException" => match self.set_exception() {
                Ok(()) => Value::Unit,
                Err(()) => err(),
            },
            "Wait" => {
                let (s, r) = self.wait();
                Value::Seq(vec![Value::Int(s), Value::Int(r)])
            }
            "TryResult" => match self.try_result() {
                Some(v) => Value::some(Value::Int(v)),
                None => Value::Fail,
            },
            "Exception" => match self.exception() {
                Some(e) => Value::Str(e.into()),
                None => Value::Fail,
            },
            other => panic!("TaskCompletionSource: unknown operation {other}"),
        }
    }
}

impl TestTarget for TaskCompletionSourceTarget {
    type Instance = TaskCompletionSource;

    fn name(&self) -> &str {
        "TaskCompletionSource"
    }

    fn create(&self) -> TaskCompletionSource {
        TaskCompletionSource::new()
    }

    fn invocations(&self) -> Vec<Invocation> {
        vec![
            Invocation::with_int("TrySetResult", 10),
            Invocation::new("TrySetCanceled"),
            Invocation::new("TrySetException"),
            Invocation::with_int("SetResult", 20),
            Invocation::new("Wait"),
            Invocation::new("TryResult"),
            Invocation::new("Exception"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lineup::{check, CheckOptions, TestMatrix};

    #[test]
    fn unmodelled_one_shot_semantics() {
        let t = TaskCompletionSource::new();
        assert_eq!(t.try_result(), None);
        assert_eq!(t.exception(), None);
        assert!(t.try_set_result(5));
        assert!(!t.try_set_result(6));
        assert!(!t.try_set_canceled());
        assert_eq!(t.try_result(), Some(5));
        assert_eq!(t.wait(), (RESULT, 5));
        assert_eq!(t.set_result(9), Err(()));
    }

    #[test]
    fn unmodelled_cancellation() {
        let t = TaskCompletionSource::new();
        assert_eq!(t.set_canceled(), Ok(()));
        assert_eq!(t.exception(), Some("TaskCanceledException"));
        assert_eq!(t.try_result(), None);
    }

    #[test]
    fn racing_completers_pass_check() {
        let m = TestMatrix::from_columns(vec![
            vec![Invocation::with_int("TrySetResult", 10)],
            vec![Invocation::new("TrySetCanceled")],
            vec![Invocation::new("Wait")],
        ]);
        let report = check(&TaskCompletionSourceTarget, &m, &CheckOptions::new());
        assert!(report.passed(), "{:?}", report.violations);
        assert!(report.spec.stuck_count() > 0, "Wait-first blocks serially");
    }

    #[test]
    fn observers_pass_check() {
        let m = TestMatrix::from_columns(vec![
            vec![
                Invocation::with_int("TrySetResult", 10),
                Invocation::new("TryResult"),
            ],
            vec![Invocation::new("Exception"), Invocation::new("TryResult")],
        ]);
        let report = check(&TaskCompletionSourceTarget, &m, &CheckOptions::new());
        assert!(report.passed(), "{:?}", report.violations);
    }
}
