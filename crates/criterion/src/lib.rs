//! A minimal, offline drop-in for the subset of the `criterion` crate API
//! this workspace's benches use. The build environment cannot fetch
//! crates.io, so the real `criterion` cannot be resolved; this stub keeps
//! `cargo bench` runnable and self-contained.
//!
//! It measures each benchmark as `sample_size` timed closure invocations
//! and prints the mean wall time — no warmup, outlier rejection, or
//! statistical analysis.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// True when the binary was invoked by `cargo test` (which passes
/// `--test` to `harness = false` bench targets): run each benchmark once
/// as a smoke test instead of timing it.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Top-level benchmark driver (mirrors `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed invocations make up one measurement.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = BenchmarkGroup {
            name: String::new(),
            sample_size: self.sample_size,
        };
        group.bench_function(id, f);
    }
}

/// A named benchmark identifier, `function_name/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Overrides the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        self.report(&id.0, &b);
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        self.report(&id.to_string(), &b);
    }

    /// Closes the group (kept for API compatibility).
    pub fn finish(self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let full = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        if b.samples == 0 {
            println!("{full:<48} (no measurement)");
        } else {
            let mean = b.total / b.samples as u32;
            println!("{full:<48} mean {mean:>12.2?}  ({} samples)", b.samples);
        }
    }
}

/// Times closure invocations (mirrors `criterion::Bencher`).
pub struct Bencher {
    requested: usize,
    samples: usize,
    total: Duration,
}

impl Bencher {
    fn new(requested: usize) -> Self {
        Bencher {
            requested,
            samples: 0,
            total: Duration::ZERO,
        }
    }

    /// Measures `f` over the configured number of invocations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let n = if test_mode() { 1 } else { self.requested };
        let start = Instant::now();
        for _ in 0..n {
            black_box(f());
        }
        self.total = start.elapsed();
        self.samples = n;
    }
}

/// Declares a function that runs the listed benchmark targets (mirrors
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` running the listed groups (mirrors
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_demo(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50u64), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn group_and_macros_compile_and_run() {
        criterion_group! {
            name = benches;
            config = Criterion::default().sample_size(2);
            targets = bench_demo
        }
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }
}
