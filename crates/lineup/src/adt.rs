//! ADT-kind annotations and per-path monitor statistics.
//!
//! The Wing–Gong monitor in `lineup-monitor` is complete but worst-case
//! exponential. For histories over a *known* abstract data type whose
//! values are unambiguous (no value inserted twice), linearizability is
//! decidable in O(n log n) by decrease-and-conquer algorithms (Lee &
//! Mathur; Abdulla et al. — see PAPERS.md). This module holds the shared
//! vocabulary for that fast path: which ADT a target implements
//! ([`AdtKind`]), why a specialized check may decline and fall back to the
//! general search ([`FallbackReason`]), and counters describing which path
//! each monitor check took ([`MonitorPathStats`]).
//!
//! The types live in the core crate (rather than `lineup-monitor`) so the
//! registry of collection classes can annotate targets, and so
//! [`PhaseStats`](crate::PhaseStats) can report path counters, without
//! either depending on the monitor crate.

use std::fmt;

/// The abstract data type a test target implements, as far as the
/// specialized linearizability checkers are concerned.
///
/// Annotating a target with an `AdtKind` is a *claim*: executed serially,
/// the target behaves like the ideal ADT (FIFO queue, LIFO stack, set
/// keyed by integer, or min-priority-queue). The specialized checkers
/// decide linearizability against the ideal semantics, so an incorrect
/// annotation can produce verdicts that differ from the replay-oracle
/// search. All registry collections satisfy the claim: their injected
/// bugs are concurrency races, and serial replays see ideal behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdtKind {
    /// FIFO queue: `Enqueue`/`Add` and `TryDequeue`/`TryTake`.
    Queue,
    /// LIFO stack: `Push` and `TryPop`.
    Stack,
    /// Set / dictionary keyed by integer: `TryAdd`, `TryRemove`,
    /// `ContainsKey`.
    Set,
    /// Min-priority-queue: `Insert` and `ExtractMin`.
    PriorityQueue,
}

impl AdtKind {
    /// All kinds, in a fixed order (useful for bench sweeps).
    pub const ALL: [AdtKind; 4] = [
        AdtKind::Queue,
        AdtKind::Stack,
        AdtKind::Set,
        AdtKind::PriorityQueue,
    ];

    /// A short lowercase label, stable across runs (used in bench JSON).
    pub fn label(self) -> &'static str {
        match self {
            AdtKind::Queue => "queue",
            AdtKind::Stack => "stack",
            AdtKind::Set => "set",
            AdtKind::PriorityQueue => "pqueue",
        }
    }
}

impl fmt::Display for AdtKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Why a monitor check took the general Wing–Gong path instead of the
/// specialized log-linear checker.
///
/// Fallback is always *conservative*: the specialized checker only
/// returns a definite verdict when it is sure, so routing an ambiguous
/// history to the general search preserves the monitor's completeness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FallbackReason {
    /// The monitor has no ADT-kind annotation for this target.
    Unregistered,
    /// The history has pending (stuck) calls the specialized algorithm
    /// cannot complete.
    PendingOps,
    /// The check requested the asynchronous relaxation (§5 of the paper),
    /// which the specialized checkers do not model.
    AsyncRelaxation,
    /// An operation's name, argument shape, or response shape is outside
    /// the specialized checker's alphabet (e.g. `Count`, `ToArray`).
    UnknownOp,
    /// A value was inserted more than once, so matching insertions to
    /// removals is ambiguous.
    DuplicateValue,
    /// The specialized checker's sound accept/reject procedures were both
    /// inconclusive on this history (possible for stack and
    /// priority-queue, whose greedy accept is incomplete).
    Inconclusive,
}

impl FallbackReason {
    /// Number of distinct reasons (size of the histogram).
    pub const COUNT: usize = 6;

    /// All reasons, indexed consistently with [`FallbackReason::index`].
    pub const ALL: [FallbackReason; Self::COUNT] = [
        FallbackReason::Unregistered,
        FallbackReason::PendingOps,
        FallbackReason::AsyncRelaxation,
        FallbackReason::UnknownOp,
        FallbackReason::DuplicateValue,
        FallbackReason::Inconclusive,
    ];

    /// Position of this reason in [`MonitorPathStats::fallback_reasons`].
    pub fn index(self) -> usize {
        match self {
            FallbackReason::Unregistered => 0,
            FallbackReason::PendingOps => 1,
            FallbackReason::AsyncRelaxation => 2,
            FallbackReason::UnknownOp => 3,
            FallbackReason::DuplicateValue => 4,
            FallbackReason::Inconclusive => 5,
        }
    }

    /// A short lowercase label, stable across runs (used in bench JSON).
    pub fn label(self) -> &'static str {
        match self {
            FallbackReason::Unregistered => "unregistered",
            FallbackReason::PendingOps => "pending_ops",
            FallbackReason::AsyncRelaxation => "async_relaxation",
            FallbackReason::UnknownOp => "unknown_op",
            FallbackReason::DuplicateValue => "duplicate_value",
            FallbackReason::Inconclusive => "inconclusive",
        }
    }
}

impl fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Counters describing which path monitor checks took: the specialized
/// log-linear checker, or the general Wing–Gong search (and why).
///
/// Exposed on [`PhaseStats`](crate::PhaseStats) when the check uses a
/// monitor backend, and on the monitor's own stats snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MonitorPathStats {
    /// Checks decided end-to-end by a specialized checker.
    pub specialized_checks: u64,
    /// Checks routed to the general Wing–Gong search.
    pub fallback_checks: u64,
    /// Histogram of fallback reasons, indexed by
    /// [`FallbackReason::index`].
    pub fallback_reasons: [u64; FallbackReason::COUNT],
}

impl MonitorPathStats {
    /// Records one check that fell back to the general search.
    pub fn record_fallback(&mut self, reason: FallbackReason) {
        // Saturating: a long-running online monitor accumulates counters
        // indefinitely, and a pegged statistic beats an overflow panic.
        self.fallback_checks = self.fallback_checks.saturating_add(1);
        let slot = &mut self.fallback_reasons[reason.index()];
        *slot = slot.saturating_add(1);
    }

    /// Records one check decided by a specialized checker.
    pub fn record_specialized(&mut self) {
        self.specialized_checks = self.specialized_checks.saturating_add(1);
    }

    /// Count for a single fallback reason.
    pub fn fallbacks_for(&self, reason: FallbackReason) -> u64 {
        self.fallback_reasons[reason.index()]
    }

    /// Counters accumulated since an earlier snapshot (saturating, so a
    /// stale snapshot never underflows).
    pub fn diff_since(&self, earlier: &MonitorPathStats) -> MonitorPathStats {
        let mut reasons = [0u64; FallbackReason::COUNT];
        for (i, slot) in reasons.iter_mut().enumerate() {
            *slot = self.fallback_reasons[i].saturating_sub(earlier.fallback_reasons[i]);
        }
        MonitorPathStats {
            specialized_checks: self
                .specialized_checks
                .saturating_sub(earlier.specialized_checks),
            fallback_checks: self.fallback_checks.saturating_sub(earlier.fallback_checks),
            fallback_reasons: reasons,
        }
    }

    /// Adds another set of counters into this one (saturating).
    pub fn merge(&mut self, other: &MonitorPathStats) {
        self.specialized_checks = self
            .specialized_checks
            .saturating_add(other.specialized_checks);
        self.fallback_checks = self.fallback_checks.saturating_add(other.fallback_checks);
        for (slot, add) in self.fallback_reasons.iter_mut().zip(other.fallback_reasons) {
            *slot = slot.saturating_add(add);
        }
    }

    /// Total checks recorded, across both paths.
    pub fn total_checks(&self) -> u64 {
        self.specialized_checks.saturating_add(self.fallback_checks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reason_indices_match_all_order() {
        for (i, reason) in FallbackReason::ALL.iter().enumerate() {
            assert_eq!(reason.index(), i);
        }
    }

    #[test]
    fn record_diff_and_merge_round_trip() {
        let mut a = MonitorPathStats::default();
        a.record_specialized();
        a.record_specialized();
        a.record_fallback(FallbackReason::DuplicateValue);
        let snapshot = a.clone();
        a.record_fallback(FallbackReason::UnknownOp);
        a.record_specialized();

        let delta = a.diff_since(&snapshot);
        assert_eq!(delta.specialized_checks, 1);
        assert_eq!(delta.fallback_checks, 1);
        assert_eq!(delta.fallbacks_for(FallbackReason::UnknownOp), 1);
        assert_eq!(delta.fallbacks_for(FallbackReason::DuplicateValue), 0);

        let mut merged = snapshot.clone();
        merged.merge(&delta);
        assert_eq!(merged, a);
        assert_eq!(merged.total_checks(), 5);
    }
}
