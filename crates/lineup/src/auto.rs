//! Automatic test generation: `AutoCheck` (paper Fig. 6) and
//! `RandomCheck` (paper Fig. 8, §4.3).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::check::{check, CheckOptions, CheckReport};
use crate::matrix::TestMatrix;
use crate::target::{Invocation, TestTarget};

/// Bounds for [`auto_check`]. The paper's `AutoCheck` loops forever on a
/// correct implementation (footnote 3: no algorithm for an undecidable
/// problem can be sound, complete, and terminating); the limits make it a
/// practical procedure.
#[derive(Debug, Clone)]
pub struct AutoCheckLimits {
    /// Largest `n` to try: tests are drawn from `M(I_n, n×n)` for
    /// `n = 1, 2, …, max_n`, where `I_n` is the first `n` invocations of
    /// the target's catalog.
    pub max_n: usize,
    /// Upper bound on the total number of tests checked.
    pub max_tests: u64,
    /// Options passed to every [`check`].
    pub options: CheckOptions,
}

impl Default for AutoCheckLimits {
    fn default() -> Self {
        AutoCheckLimits {
            max_n: 2,
            max_tests: 1_000,
            options: CheckOptions::new(),
        }
    }
}

/// The algorithm `AutoCheck(X)` of Fig. 6, bounded: for `n = 1, 2, …`,
/// checks every test in `M(I_n, n×n)` and returns the first failing
/// report. Returns `Ok(tests_run)` if every test within the limits
/// passed.
///
/// Completeness carries over from [`check`] (Theorem 5); soundness
/// (Theorem 7) holds in the limit `max_n, max_tests → ∞`.
///
/// # Example
///
/// ```
/// use lineup::auto::{auto_check, AutoCheckLimits};
/// use lineup::doc_support::BuggyCounterTarget;
///
/// let failure = auto_check(&BuggyCounterTarget, &AutoCheckLimits::default());
/// assert!(failure.is_err(), "the buggy counter is caught automatically");
/// ```
pub fn auto_check<T: TestTarget>(
    target: &T,
    limits: &AutoCheckLimits,
) -> Result<u64, Box<CheckReport>> {
    let catalog = target.invocations();
    let mut tests_run = 0u64;
    for n in 1..=limits.max_n {
        let i_n: Vec<Invocation> = catalog.iter().take(n).cloned().collect();
        for m in TestMatrix::enumerate(&i_n, n, n) {
            if tests_run >= limits.max_tests {
                return Ok(tests_run);
            }
            tests_run += 1;
            let report = check(target, &m, &limits.options);
            if !report.passed() {
                return Err(Box::new(report));
            }
        }
    }
    Ok(tests_run)
}

/// Configuration for [`random_check`] (the paper's Fig. 8 plus the §4.3
/// extensions: caller-provided invocation lists and init/final sequences).
#[derive(Debug, Clone)]
pub struct RandomCheckConfig {
    /// Matrix rows (invocations per thread). The paper's evaluation uses 3.
    pub rows: usize,
    /// Matrix columns (threads). The paper's evaluation uses 3.
    pub cols: usize,
    /// Sample size `k`: number of random tests drawn uniformly from
    /// `M(I, rows×cols)`. The paper's evaluation uses 100 per class.
    pub samples: usize,
    /// RNG seed, so runs are reproducible.
    pub seed: u64,
    /// Representative invocations `I` to draw from; `None` uses the
    /// target's full catalog.
    pub invocations: Option<Vec<Invocation>>,
    /// Init sequence prepended to every test (state preparation, §4.3).
    pub init: Vec<Invocation>,
    /// Final sequence appended to every test (§4.3).
    pub finally: Vec<Invocation>,
    /// Stop at the first failing test (the literal Fig. 8 behaviour) or
    /// check the whole sample (useful for statistics like Table 2).
    pub stop_at_first_failure: bool,
    /// Options passed to every [`check`].
    pub options: CheckOptions,
}

impl RandomCheckConfig {
    /// The paper's evaluation setup: 100 random 3×3 tests (§5.1).
    pub fn paper_defaults(seed: u64) -> Self {
        RandomCheckConfig {
            rows: 3,
            cols: 3,
            samples: 100,
            seed,
            invocations: None,
            init: Vec::new(),
            finally: Vec::new(),
            stop_at_first_failure: false,
            options: CheckOptions::new(),
        }
    }

    /// A quick configuration with a smaller sample.
    pub fn quick(seed: u64, samples: usize) -> Self {
        RandomCheckConfig {
            samples,
            stop_at_first_failure: true,
            ..RandomCheckConfig::paper_defaults(seed)
        }
    }
}

/// Lightweight summary of one checked test within a random sample.
#[derive(Debug, Clone)]
pub struct TestSummary {
    /// The test matrix.
    pub matrix: TestMatrix,
    /// Whether the check passed.
    pub passed: bool,
    /// The first violation, when the test failed.
    pub violation: Option<crate::check::Violation>,
    /// Phase-1 statistics.
    pub phase1: crate::check::PhaseStats,
    /// Phase-2 statistics.
    pub phase2: crate::check::PhaseStats,
}

/// The result of a [`random_check`] sample.
#[derive(Debug, Clone)]
pub struct RandomCheckResult {
    /// Per-test summaries, in sample order (possibly truncated when
    /// stopping at the first failure).
    pub summaries: Vec<TestSummary>,
    /// The first failing report, if any test failed.
    pub first_failure: Option<Box<CheckReport>>,
}

impl RandomCheckResult {
    /// Whether every checked test passed (the PASS of Fig. 8).
    pub fn passed(&self) -> bool {
        self.first_failure.is_none()
    }

    /// Number of tests that passed / failed.
    pub fn counts(&self) -> (usize, usize) {
        let failed = self.summaries.iter().filter(|s| !s.passed).count();
        (self.summaries.len() - failed, failed)
    }
}

/// The algorithm `RandomCheck(X, I, i, j, n)` of Fig. 8: draws a uniform
/// random sample of tests from `M(I, rows×cols)` and checks each one.
/// Like `Check`, it is complete (any failure is conclusive) but sampling
/// forfeits the soundness guarantee (§4.3) — and gains embarrassing
/// parallelism and practicality in exchange.
pub fn random_check<T: TestTarget>(target: &T, config: &RandomCheckConfig) -> RandomCheckResult {
    let invocations = config
        .invocations
        .clone()
        .unwrap_or_else(|| target.invocations());
    assert!(
        !invocations.is_empty(),
        "random_check needs at least one invocation"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut summaries = Vec::with_capacity(config.samples);
    let mut first_failure = None;

    for _ in 0..config.samples {
        let mut columns = vec![Vec::with_capacity(config.rows); config.cols];
        for col in &mut columns {
            for _ in 0..config.rows {
                col.push(invocations[rng.gen_range(0..invocations.len())].clone());
            }
        }
        let matrix = TestMatrix::from_columns(columns)
            .with_init(config.init.clone())
            .with_finally(config.finally.clone());
        let report = check(target, &matrix, &config.options);
        let passed = report.passed();
        summaries.push(TestSummary {
            matrix,
            passed,
            violation: report.first_violation().cloned(),
            phase1: report.phase1.clone(),
            phase2: report.phase2.clone(),
        });
        if !passed && first_failure.is_none() {
            first_failure = Some(Box::new(report));
            if config.stop_at_first_failure {
                break;
            }
        }
    }
    RandomCheckResult {
        summaries,
        first_failure,
    }
}

/// Parallel [`random_check`]: "another big practical benefit of random
/// sampling is that it is embarrassingly parallel: it is very easy to
/// distribute the various tests and let each core run Check independently"
/// (paper §4.3).
///
/// The sample is split into `workers` chunks, each checked on its own OS
/// thread with a seed derived from `config.seed` and the chunk index —
/// so the *set* of tests differs from the sequential run with the same
/// seed, but is itself reproducible. Summaries are returned in chunk
/// order; `first_failure` is the first failure of the earliest failing
/// chunk.
///
/// # Panics
///
/// Panics if `workers` is zero.
pub fn random_check_parallel<T: TestTarget>(
    target: &T,
    config: &RandomCheckConfig,
    workers: usize,
) -> RandomCheckResult {
    assert!(workers > 0, "need at least one worker");
    let workers = workers.min(config.samples.max(1));
    let chunk = config.samples.div_ceil(workers);
    let results: Vec<RandomCheckResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let mut cfg = config.clone();
                cfg.samples = chunk.min(config.samples.saturating_sub(w * chunk));
                cfg.seed = config
                    .seed
                    .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(w as u64 + 1));
                scope.spawn(move || random_check(target, &cfg))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    });
    let mut summaries = Vec::new();
    let mut first_failure = None;
    for r in results {
        summaries.extend(r.summaries);
        if first_failure.is_none() {
            first_failure = r.first_failure;
        }
    }
    RandomCheckResult {
        summaries,
        first_failure,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc_support::{BuggyCounterTarget, CounterTarget};

    #[test]
    fn auto_check_passes_correct_counter() {
        let limits = AutoCheckLimits {
            max_n: 2,
            max_tests: 50,
            options: CheckOptions::new(),
        };
        let r = auto_check(&CounterTarget, &limits);
        assert!(r.is_ok());
        assert!(r.unwrap() > 0);
    }

    #[test]
    fn auto_check_catches_buggy_counter() {
        let r = auto_check(&BuggyCounterTarget, &AutoCheckLimits::default());
        let report = r.expect_err("buggy counter must fail");
        assert!(!report.passed());
        // The failing test is small (small scope hypothesis: n = 2).
        assert!(report.matrix.operation_count() <= 4);
    }

    #[test]
    fn random_check_catches_buggy_counter() {
        let cfg = RandomCheckConfig {
            rows: 2,
            cols: 2,
            samples: 20,
            seed: 1,
            stop_at_first_failure: true,
            ..RandomCheckConfig::paper_defaults(1)
        };
        let r = random_check(&BuggyCounterTarget, &cfg);
        assert!(!r.passed());
        let (passed, failed) = r.counts();
        assert_eq!(failed, 1, "stops at first failure");
        let _ = passed;
    }

    #[test]
    fn random_check_passes_correct_counter() {
        let cfg = RandomCheckConfig {
            rows: 2,
            cols: 2,
            samples: 10,
            seed: 42,
            ..RandomCheckConfig::paper_defaults(42)
        };
        let r = random_check(&CounterTarget, &cfg);
        assert!(r.passed());
        assert_eq!(r.summaries.len(), 10);
    }

    #[test]
    fn parallel_random_check_covers_the_sample() {
        for (samples, workers) in [(9, 4), (5, 4), (1, 8), (8, 3)] {
            let cfg = RandomCheckConfig {
                rows: 2,
                cols: 2,
                samples,
                seed: 11,
                ..RandomCheckConfig::paper_defaults(11)
            };
            let r = random_check_parallel(&CounterTarget, &cfg, workers);
            assert!(r.passed());
            assert_eq!(
                r.summaries.len(),
                samples,
                "all samples checked across {workers} workers"
            );
        }
    }

    #[test]
    fn parallel_random_check_finds_bugs() {
        let cfg = RandomCheckConfig {
            rows: 2,
            cols: 2,
            samples: 16,
            seed: 5,
            ..RandomCheckConfig::paper_defaults(5)
        };
        let r = random_check_parallel(&BuggyCounterTarget, &cfg, 4);
        assert!(!r.passed());
    }

    #[test]
    fn parallel_random_check_is_reproducible() {
        let cfg = RandomCheckConfig {
            rows: 2,
            cols: 2,
            samples: 8,
            seed: 3,
            ..RandomCheckConfig::paper_defaults(3)
        };
        let a = random_check_parallel(&CounterTarget, &cfg, 3);
        let b = random_check_parallel(&CounterTarget, &cfg, 3);
        let ms: Vec<_> = a.summaries.iter().map(|s| s.matrix.clone()).collect();
        let ns: Vec<_> = b.summaries.iter().map(|s| s.matrix.clone()).collect();
        assert_eq!(ms, ns);
    }

    #[test]
    fn random_check_is_reproducible() {
        let cfg = RandomCheckConfig {
            rows: 2,
            cols: 2,
            samples: 5,
            seed: 7,
            ..RandomCheckConfig::paper_defaults(7)
        };
        let a = random_check(&CounterTarget, &cfg);
        let b = random_check(&CounterTarget, &cfg);
        let ms: Vec<_> = a.summaries.iter().map(|s| s.matrix.clone()).collect();
        let ns: Vec<_> = b.summaries.iter().map(|s| s.matrix.clone()).collect();
        assert_eq!(ms, ns);
    }
}
