//! The two-phase Line-Up check (paper Fig. 5): synthesize the sequential
//! specification from serial executions, then verify every concurrent
//! execution against it.

use std::collections::{BTreeMap, HashSet};
use std::fmt;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use lineup_sched::{
    AbandonConfirm, Backend, Config, ExploreStats, LexCancel, RunOutcome, StealPool, StealSkip,
    StealTask, StealingStrategy, StrategyKind,
};

use crate::adt::MonitorPathStats;
use crate::harness::{explore_matrix, explore_matrix_with_strategy};
use crate::history::{History, HistoryCache, OpIndex};
use crate::matrix::{SymmetryGroups, TestMatrix};
use crate::spec::{Nondeterminism, ObservationSet, SerialHistory, SpecIndex};
use crate::target::TestTarget;
use crate::witness::{find_witness, WitnessQuery};

/// An alternative witness backend for phase 2: instead of searching the
/// pre-enumerated observation set ([`find_witness`]), a monitor decides
/// directly whether a history is linearizable with respect to an
/// executable sequential oracle (the `lineup-monitor` crate provides the
/// Wing–Gong-style implementation).
///
/// A monitor must agree with the witness search on every history the
/// model checker can record for a *deterministic* target — phase 2 only
/// runs after the determinism check, so implementations may assume the
/// sequential behavior is a function of the invocation sequence.
pub trait HistoryMonitor: Send + Sync {
    /// Whether the *complete* history is linearizable: some interleaving
    /// of the per-thread operation sequences, respecting the history's
    /// precedence order (relaxed for `async_methods`, see
    /// [`CheckOptions::async_methods`]), replays against the sequential
    /// oracle with matching responses (Definition 1).
    fn check_full(&self, history: &History, async_methods: &[String]) -> bool;

    /// Whether `H[e]` — the complete operations plus the pending operation
    /// `e` — has a stuck linearization: the complete operations linearize
    /// as in [`check_full`](HistoryMonitor::check_full) and the oracle
    /// then *blocks* on `e`'s invocation (Definition 2).
    fn check_stuck(&self, history: &History, pending: OpIndex, async_methods: &[String]) -> bool;

    /// Cumulative counters describing which path the monitor's checks
    /// took (specialized log-linear checker vs general search) since the
    /// monitor was created. `None` (the default) when the monitor has no
    /// notion of paths; checkers use this to fill
    /// [`PhaseStats::monitor_paths`].
    fn path_stats(&self) -> Option<MonitorPathStats> {
        None
    }
}

/// A cloneable handle to a [`HistoryMonitor`], carried inside
/// [`CheckOptions`].
#[derive(Clone)]
pub struct MonitorHandle(pub Arc<dyn HistoryMonitor>);

impl fmt::Debug for MonitorHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("MonitorHandle(..)")
    }
}

/// Options controlling one [`check`] call.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Preemption bound for phase 2 (the paper uses the CHESS default of 2
    /// "except where it performed unacceptably slow", §5.4). Phase 1 is
    /// never bounded, preserving the completeness guarantee of Theorem 5.
    /// `None` explores phase 2 exhaustively.
    pub preemption_bound: Option<usize>,
    /// Optional cap on phase-2 runs (a soundness/time trade-off on top of
    /// preemption bounding; violations found remain conclusive).
    pub max_phase2_runs: Option<u64>,
    /// Stop at the first violation (default) or keep exploring and report
    /// all distinct violations.
    pub stop_at_first_violation: bool,
    /// Iterative context bounding (Musuvathi & Qadeer, PLDI 2007 — the
    /// search order CHESS itself uses): run phase 2 at preemption bounds
    /// 0, 1, …, [`preemption_bound`](CheckOptions::preemption_bound) in
    /// sequence, stopping at the first violation. Shallow bugs are found
    /// with the fewest preemptions (smallest counterexamples) and with
    /// less exploration; the final iteration gives the same coverage as a
    /// direct bounded search.
    pub iterative_bounding: bool,
    /// Methods declared *asynchronous*: their effects may linearize after
    /// the method has returned (the paper's §6 future-work item on
    /// "asynchronous methods, such as the cancel method", and the shape of
    /// root cause K — `CompleteAdding`'s effects land "well after the
    /// method has returned"). Precedence constraints from these methods to
    /// later operations are dropped during witness search. Use sparingly:
    /// it weakens the check for the listed methods.
    pub async_methods: Vec<String>,
    /// Methods declared as *nondeterministic under interference*: a
    /// [`Value::Fail`](crate::Value) response from one of these methods is
    /// accepted whenever the operation overlaps another operation, by
    /// deleting it from the history before witness search. This implements
    /// the paper's future-work item on "nondeterministic methods, such as
    /// methods that may fail on interference", and encodes the
    /// documentation fix the .NET developers chose for root causes I and J
    /// (§5.2.2) — e.g. declaring `TryTake` spurious makes the
    /// BlockingCollection's intentional behaviour pass. Use sparingly: it
    /// weakens the check for the listed methods.
    pub spurious_failures: Vec<String>,
    /// Number of OS worker threads for phase-2 exploration. `1` (the
    /// default) runs the classic serial depth-first search; `n > 1` runs a
    /// work-stealing exploration: one worker starts on the whole schedule
    /// tree, and an idle worker flags a victim (chosen by deterministic
    /// round-robin) which splits its *deepest unexplored branch point* —
    /// shipping the decision prefix plus accumulated sleep sets so
    /// partial-order reduction stays sound across the steal. Prefix
    /// replays happen only on actual steals, lazily on the thief's side.
    /// The set of violation histories is identical to the serial one, and
    /// with
    /// [`stop_at_first_violation`](CheckOptions::stop_at_first_violation)
    /// the reported violation is the serial one too (the lexicographically
    /// least violating decision vector wins deterministically). Phase 1
    /// always runs serially: its observation-set insertion order feeds the
    /// determinism check and must match the paper's sequential
    /// enumeration.
    pub workers: usize,
    /// Decision depth of the legacy static-frontier split
    /// ([`lineup_sched::split_frontier`]; `None` uses
    /// [`Config::DEFAULT_SPLIT_DEPTH`]). The work-stealing checker splits
    /// dynamically and ignores this; it is kept for callers driving the
    /// frontier API directly.
    pub split_depth: Option<usize>,
    /// Dynamic partial-order reduction for phase 2 (default `true`):
    /// sleep sets plus happens-before-guided backtracking prune schedules
    /// that only reorder independent transitions, which cannot change the
    /// recorded history. Only engages for exhaustive (unbounded)
    /// exploration — preemption-bounded search keeps its full enumeration,
    /// because sleep sets are unsound under preemption bounding. Phase 1
    /// (serial mode) is never reduced.
    pub por: bool,
    /// Thread-symmetry reduction for phase 2 (default `true`): threads
    /// whose matrix columns are identical up to value renaming (see
    /// [`crate::SymmetryPolicy`] and
    /// [`TestMatrix::symmetry_groups`]) are interchangeable, so
    /// (a) among never-started symmetric threads only the lowest-indexed
    /// may be scheduled first — the skipped orders yield renamings of
    /// explored histories — and (b) the phase-2 verdict cache keys on the
    /// *canonical* form of each history
    /// ([`SymmetryGroups::canonicalize`]), so one witness search covers a
    /// whole renaming class and violation lists report one history per
    /// class. Schedule pruning only engages where sleep sets would
    /// (exhaustive DFS-family exploration, no preemption bound); the
    /// canonical verdict cache is active whenever this flag is on. Targets
    /// whose behaviour depends on thread identity opt out via
    /// [`crate::SymmetryPolicy::Disabled`] regardless of this flag.
    pub symmetry: bool,
    /// Same-thread continuation fast path in the scheduler (default
    /// `true`): when the strategy keeps the baton on the running thread,
    /// the schedule point is recorded inline without a park/unpark pair.
    /// Purely a debug knob — the explored schedules, histories, and
    /// verdicts are identical either way (`tests/handoff_equivalence.rs`
    /// asserts this); disabling it only forces every step through a slot
    /// handoff.
    pub fast_path: bool,
    /// Execution backend for phase-2 exploration (default
    /// [`Backend::default_backend`]: fibers where supported, OS threads
    /// elsewhere). Under [`Backend::Fibers`] every virtual thread runs on
    /// a recycled userspace stack and a baton handoff is a direct stack
    /// switch; the explored schedules, histories, and verdicts are
    /// byte-identical across backends (`tests/backend_equivalence.rs`
    /// asserts this).
    pub backend: Backend,
    /// Run estimate below which parallel exploration skips frontier
    /// splitting and runs serially (default 256): a tiny schedule tree is
    /// explored faster by one worker than by replaying prefixes into
    /// every subtree. Measured by probing the serial exploration up to
    /// this many runs before committing to a split; `runs` is identical
    /// either way. `0` disables the probe and always splits. Only read
    /// when [`workers`](CheckOptions::workers) `> 1`.
    pub parallel_probe_runs: u64,
    /// Alternative witness backend (see [`HistoryMonitor`]). When set,
    /// phase 2 asks the monitor for every history verdict instead of
    /// searching the enumerated observation set; spuriously-failed
    /// operations are still removed first, but no sub-test specification
    /// is synthesized (the monitor's oracle is test-independent). Phase 1
    /// still runs: the observation set feeds the determinism check, which
    /// the monitor's oracle-replay model relies on.
    pub witness_monitor: Option<MonitorHandle>,
    /// Exploration strategy for phase 2 (default
    /// [`StrategyKind::Dfs`]: the exhaustive depth-first search the paper
    /// builds on). Randomized strategies ([`StrategyKind::Random`],
    /// [`StrategyKind::Pct`], [`StrategyKind::Coverage`]) sample schedules
    /// instead of enumerating them — they need
    /// [`max_phase2_runs`](CheckOptions::max_phase2_runs) set or they run
    /// until their own budget expires, and they trade the exhaustiveness
    /// guarantee for fast bug-finding on schedule spaces too large to
    /// enumerate. Violations found remain conclusive (Theorem 5 needs only
    /// the violating execution, not coverage). Phase 1 always enumerates
    /// serially regardless of this setting, and parallel work-stealing
    /// ([`workers`](CheckOptions::workers) `> 1`) only engages for
    /// [`StrategyKind::Dfs`] — the stealing engine partitions the DFS
    /// tree, which sampling strategies do not have.
    pub strategy: StrategyKind,
}

impl CheckOptions {
    /// The paper's defaults: preemption bound 2, stop at first violation.
    pub fn new() -> Self {
        CheckOptions {
            preemption_bound: Some(2),
            max_phase2_runs: None,
            stop_at_first_violation: true,
            iterative_bounding: false,
            async_methods: Vec::new(),
            spurious_failures: Vec::new(),
            workers: 1,
            split_depth: None,
            por: true,
            symmetry: true,
            fast_path: true,
            backend: Backend::default_backend(),
            parallel_probe_runs: 256,
            witness_monitor: None,
            strategy: StrategyKind::Dfs,
        }
    }

    /// Sets the preemption bound, builder style (`None` = unbounded).
    pub fn with_preemption_bound(mut self, bound: Option<usize>) -> Self {
        self.preemption_bound = bound;
        self
    }

    /// Caps phase-2 runs, builder style.
    pub fn with_max_phase2_runs(mut self, runs: u64) -> Self {
        self.max_phase2_runs = Some(runs);
        self
    }

    /// Collect all violations instead of stopping at the first.
    pub fn collect_all_violations(mut self) -> Self {
        self.stop_at_first_violation = false;
        self
    }

    /// Enables iterative context bounding (see
    /// [`CheckOptions::iterative_bounding`]).
    pub fn with_iterative_bounding(mut self) -> Self {
        self.iterative_bounding = true;
        self
    }

    /// Declares methods whose effects may land after they return (see
    /// [`CheckOptions::async_methods`]).
    pub fn with_async_methods<I, S>(mut self, methods: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.async_methods = methods.into_iter().map(Into::into).collect();
        self
    }

    /// Declares methods whose failed responses may occur spuriously under
    /// interference (see [`CheckOptions::spurious_failures`]).
    pub fn with_spurious_failures<I, S>(mut self, methods: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.spurious_failures = methods.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the number of phase-2 worker threads (see
    /// [`CheckOptions::workers`]), builder style. `n` must be at least 1.
    pub fn with_workers(mut self, n: usize) -> Self {
        assert!(n >= 1, "workers must be at least 1");
        self.workers = n;
        self
    }

    /// Sets the frontier split depth for parallel exploration (see
    /// [`CheckOptions::split_depth`]), builder style.
    pub fn with_split_depth(mut self, depth: usize) -> Self {
        self.split_depth = Some(depth);
        self
    }

    /// Enables or disables partial-order reduction for phase 2 (see
    /// [`CheckOptions::por`]), builder style.
    pub fn with_por(mut self, enabled: bool) -> Self {
        self.por = enabled;
        self
    }

    /// Enables or disables thread-symmetry reduction (see
    /// [`CheckOptions::symmetry`]), builder style.
    pub fn with_symmetry(mut self, enabled: bool) -> Self {
        self.symmetry = enabled;
        self
    }

    /// Enables or disables the scheduler's same-thread continuation fast
    /// path (see [`CheckOptions::fast_path`]), builder style.
    pub fn with_fast_path(mut self, enabled: bool) -> Self {
        self.fast_path = enabled;
        self
    }

    /// Selects the execution backend (see [`CheckOptions::backend`]),
    /// builder style.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the run estimate below which parallel exploration stays
    /// serial (see [`CheckOptions::parallel_probe_runs`]), builder style.
    pub fn with_parallel_probe_runs(mut self, runs: u64) -> Self {
        self.parallel_probe_runs = runs;
        self
    }

    /// Uses a [`HistoryMonitor`] as the phase-2 witness backend (see
    /// [`CheckOptions::witness_monitor`]), builder style.
    pub fn with_monitor_backend(mut self, monitor: Arc<dyn HistoryMonitor>) -> Self {
        self.witness_monitor = Some(MonitorHandle(monitor));
        self
    }

    /// Selects the phase-2 exploration strategy (see
    /// [`CheckOptions::strategy`]), builder style. Randomized strategies
    /// should be paired with
    /// [`with_max_phase2_runs`](CheckOptions::with_max_phase2_runs).
    pub fn with_strategy(mut self, strategy: StrategyKind) -> Self {
        self.strategy = strategy;
        self
    }
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions::new()
    }
}

/// A violation of deterministic linearizability. By Theorem 5 any reported
/// violation proves the implementation is not linearizable with respect to
/// *any* deterministic sequential specification — there are no false
/// alarms.
#[derive(Debug, Clone)]
pub enum Violation {
    /// Phase 1 found two serial histories diverging at a call: the
    /// component itself is nondeterministic (Fig. 5 line 4).
    Nondeterminism(Nondeterminism),
    /// A complete concurrent history has no serial witness in the
    /// synthesized specification `A` (Fig. 5 line 8 / Definition 1).
    NoWitness {
        /// The violating history.
        history: History,
        /// Scheduler decisions reproducing the execution (see
        /// [`crate::replay_matrix`]).
        decisions: Vec<usize>,
    },
    /// A stuck concurrent history has a pending operation `e` such that
    /// `H[e]` has no stuck serial witness in `B` (Fig. 5 line 13 /
    /// Definition 2): the operation blocked although the specification
    /// never blocks it there.
    StuckNoWitness {
        /// The violating stuck history.
        history: History,
        /// The pending operation without justification.
        pending: OpIndex,
        /// Scheduler decisions reproducing the execution.
        decisions: Vec<usize>,
    },
    /// The component panicked during the phase indicated (assertion
    /// failure, index out of bounds, …) — also a real defect.
    Panic {
        /// Rendered panic message.
        message: String,
        /// The (partial) history up to the panic.
        history: History,
        /// `true` when the panic occurred during serial (phase 1)
        /// execution.
        serial: bool,
        /// Scheduler decisions reproducing the execution.
        decisions: Vec<usize>,
    },
}

/// Statistics of one phase of a check.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Number of executions explored.
    pub runs: u64,
    /// Distinct complete ("full") histories observed.
    pub full_histories: usize,
    /// Distinct stuck histories observed.
    pub stuck_histories: usize,
    /// Runs cut short by partial-order reduction (sleep sets): schedules
    /// proven Mazurkiewicz-equivalent to an already-explored one. Included
    /// in [`runs`](Self::runs); always zero in phase 1 and when
    /// [`CheckOptions::with_por`] is off or disengaged.
    pub sleep_prunes: u64,
    /// Candidate threads masked by thread-symmetry reduction at schedule
    /// points: each masked thread is a sibling subtree not explored
    /// because its schedules are value-renamings of the chosen
    /// representative's (see [`CheckOptions::symmetry`]). Always zero in
    /// phase 1, and whenever symmetry pruning is off or disengaged
    /// (preemption-bounded or sampled exploration).
    pub symmetry_prunes: u64,
    /// Phase-2 verdict-cache hits: runs whose (canonicalized) history had
    /// already received a witness-search verdict through another schedule
    /// or a symmetric renaming. Always zero in phase 1.
    pub phase2_cache_hits: u64,
    /// Total schedule points across all runs of the phase.
    pub total_steps: u64,
    /// Schedule points that took the scheduler's same-thread continuation
    /// fast path (no park/unpark — see [`CheckOptions::fast_path`]).
    /// Included in [`total_steps`](Self::total_steps).
    pub fast_path_steps: u64,
    /// Baton handoffs performed through a wakeup slot (cross-thread
    /// switches, plus every step when the fast path is disabled).
    pub handoffs: u64,
    /// Runs spent re-executing decision prefixes during the legacy static
    /// frontier enumeration. The work-stealing checker never enumerates a
    /// frontier, so this is always zero for both serial and parallel
    /// checks; it is kept so reports remain comparable with historical
    /// data from the frontier era.
    pub frontier_replays: u64,
    /// Subtrees split off by victims servicing steal requests during a
    /// parallel (work-stealing) exploration. Always zero for serial
    /// checks. At least [`steals`](Self::steals): every claimed stolen
    /// task was split off first, but a split task may go unclaimed when
    /// the exploration is cancelled early.
    pub splits: u64,
    /// Stolen subtree tasks actually claimed by a thief worker. Always
    /// zero for serial checks.
    pub steals: u64,
    /// Times a worker parked waiting for work during a parallel
    /// exploration (one per wait, so a long idle period counts many
    /// parks). Always zero for serial checks.
    pub idle_parks: u64,
    /// Prefix replays begun for claimed stolen tasks — the lazy,
    /// thief-side re-execution of the shipped decision prefix. At most
    /// [`steals`](Self::steals) (a cancelled thief may skip its replay);
    /// always zero for serial checks.
    pub steal_replays: u64,
    /// `1` when the serial probe answered the whole check (the space fit
    /// within [`CheckOptions::parallel_probe_runs`] runs, so no workers
    /// were spawned), `0` otherwise. Always zero for serial checks.
    pub probe_skips: u64,
    /// Which path the monitor backend's checks took during this phase
    /// (specialized log-linear checker vs Wing–Gong fallback, with a
    /// fallback-reason histogram). All-zero when the phase ran without a
    /// monitor backend, or with one that does not report paths.
    pub monitor_paths: MonitorPathStats,
    /// Corpus entries held by the coverage-guided strategy at the end of
    /// the phase (see [`StrategyKind::Coverage`]). Zero for every other
    /// strategy.
    pub corpus_size: u64,
    /// Bits set in the coverage strategy's schedule-signature bitmap at
    /// the end of the phase. Zero for every other strategy.
    pub coverage_bits: u64,
    /// Mutated schedules executed by the coverage strategy during the
    /// phase (runs that replayed a corpus parent before diverging, as
    /// opposed to fresh random runs). Zero for every other strategy.
    pub mutations: u64,
    /// Wall-clock time spent.
    pub duration: Duration,
}

/// The result of checking one test matrix.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Name of the checked component.
    pub target_name: String,
    /// The test matrix.
    pub matrix: TestMatrix,
    /// Violations found (empty = PASS).
    pub violations: Vec<Violation>,
    /// The synthesized sequential specification (the observation set of
    /// §4.2, persistable via [`crate::observation`]).
    pub spec: ObservationSet,
    /// Phase-1 statistics (serial enumeration).
    pub phase1: PhaseStats,
    /// Phase-2 statistics (concurrent enumeration).
    pub phase2: PhaseStats,
}

impl CheckReport {
    /// Whether the check passed (no violation found on the explored
    /// executions; like all dynamic tools, sound only for the inputs and
    /// executions tested — Theorem 6 discussion).
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// The first violation, if any.
    pub fn first_violation(&self) -> Option<&Violation> {
        self.violations.first()
    }
}

/// Runs phase 1 only: enumerates all serial executions of the test and
/// returns the synthesized specification (the sets `A ∪ B`), plus stats
/// and any panic violation.
pub fn synthesize_spec<T: TestTarget>(
    target: &T,
    matrix: &TestMatrix,
) -> (ObservationSet, PhaseStats, Option<Violation>) {
    let start = std::time::Instant::now();
    let mut spec = ObservationSet::new();
    let mut panic_violation = None;
    let stats = explore_matrix(target, matrix, &Config::serial(), |run| {
        match &run.outcome {
            RunOutcome::Complete | RunOutcome::StuckSerial => {
                spec.insert(SerialHistory::from_history(&run.history));
                ControlFlow::Continue(())
            }
            RunOutcome::Panicked { message, .. } => {
                panic_violation = Some(Violation::Panic {
                    message: message.clone(),
                    history: run.history,
                    serial: true,
                    decisions: run.decisions,
                });
                ControlFlow::Break(())
            }
            RunOutcome::Deadlock | RunOutcome::Livelock | RunOutcome::Pruned => {
                unreachable!("serial mode reports blocking as StuckSerial and never prunes")
            }
            RunOutcome::StepLimit => {
                panic_violation = Some(Violation::Panic {
                    message: "step limit exceeded in serial execution".into(),
                    history: run.history,
                    serial: true,
                    decisions: run.decisions,
                });
                ControlFlow::Break(())
            }
        }
    });
    let phase = PhaseStats {
        runs: stats.runs,
        full_histories: spec.full_count(),
        stuck_histories: spec.stuck_count(),
        sleep_prunes: stats.sleep_prunes,
        total_steps: stats.total_steps,
        fast_path_steps: stats.fast_path_steps,
        handoffs: stats.handoffs,
        monitor_paths: MonitorPathStats::default(),
        duration: start.elapsed(),
        ..Default::default()
    };
    (spec, phase, panic_violation)
}

/// Runs phase 2 only, against a given specification: explores the
/// concurrent executions of the test and checks every history (full or
/// stuck) for a serial witness.
///
/// Exposed separately so a specification synthesized from one
/// implementation can be checked against another (differential checking —
/// e.g. validating a "fixed" version against the behaviors of a reference
/// implementation). [`check`] composes [`synthesize_spec`] with this.
/// Removes spuriously-failed operations (declared methods, Fail response,
/// overlapping some other operation) from a history before witness search.
/// Returns the reduced history and the removed ops as `(thread, position
/// within thread)` pairs — which identify the matrix cells to drop from
/// the sub-test whose specification the reduced history is checked
/// against.
fn reduce_spurious(history: &History, spurious: &[String]) -> (History, Vec<(usize, usize)>) {
    if spurious.is_empty() {
        return (history.clone(), Vec::new());
    }
    let mut remove = std::collections::BTreeSet::new();
    for (i, op) in history.ops.iter().enumerate() {
        if op.response == Some(crate::value::Value::Fail)
            && spurious.contains(&op.invocation.name)
            && (0..history.ops.len()).any(|j| j != i && history.overlapping(i, j))
        {
            remove.insert(i);
        }
    }
    if remove.is_empty() {
        return (history.clone(), Vec::new());
    }
    let mut removed_cells = Vec::new();
    for t in 0..history.thread_count {
        for (pos, op_idx) in history.thread_ops(t).into_iter().enumerate() {
            if remove.contains(&op_idx) {
                removed_cells.push((t, pos));
            }
        }
    }
    (history.without_ops(&remove).0, removed_cells)
}

/// Builds the sub-test obtained by dropping the given `(thread, position)`
/// cells from a matrix (finals-thread ops live past the last column).
fn reduced_matrix(matrix: &TestMatrix, removed: &[(usize, usize)]) -> TestMatrix {
    let mut m = matrix.clone();
    let ncols = m.columns.len();
    let mut by_thread: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for &(t, pos) in removed {
        by_thread.entry(t).or_default().push(pos);
    }
    for (t, mut positions) in by_thread {
        positions.sort_unstable_by(|a, b| b.cmp(a)); // remove back-to-front
        let column = if t < ncols {
            &mut m.columns[t]
        } else {
            &mut m.finally
        };
        for pos in positions {
            column.remove(pos);
        }
    }
    m
}

/// Runs phase 2 only, against a given specification: explores the
/// concurrent executions of the test and checks every history (full or
/// stuck) for a serial witness.
///
/// Exposed separately so a specification synthesized from one
/// implementation can be checked against another (differential checking).
/// Operations listed in [`CheckOptions::spurious_failures`] whose failed
/// responses overlap other operations are removed before witness search
/// and the remainder is checked against the sub-test's own synthesized
/// specification.
pub fn check_against_spec<T: TestTarget>(
    target: &T,
    matrix: &TestMatrix,
    spec: &ObservationSet,
    options: &CheckOptions,
) -> (Vec<Violation>, PhaseStats) {
    if !options.iterative_bounding {
        return check_against_spec_at(target, matrix, spec, options, options.preemption_bound);
    }
    // Iterative context bounding: bounds 0, 1, …, preemption_bound (or an
    // unbounded final iteration when no bound is set).
    let final_bound = options.preemption_bound;
    let mut bounds: Vec<Option<usize>> = match final_bound {
        Some(b) => (0..=b).map(Some).collect(),
        None => vec![Some(0), Some(1), Some(2), None],
    };
    let mut total = PhaseStats::default();
    let mut violations = Vec::new();
    for bound in bounds.drain(..) {
        let (vs, stats) = check_against_spec_at(target, matrix, spec, options, bound);
        // Saturating accumulation: the per-iteration counts are themselves
        // unbounded sums over exploration, so cap instead of wrapping.
        total.runs = total.runs.saturating_add(stats.runs);
        total.full_histories = total.full_histories.saturating_add(stats.full_histories);
        total.stuck_histories = total.stuck_histories.saturating_add(stats.stuck_histories);
        total.sleep_prunes = total.sleep_prunes.saturating_add(stats.sleep_prunes);
        total.symmetry_prunes = total.symmetry_prunes.saturating_add(stats.symmetry_prunes);
        total.phase2_cache_hits = total
            .phase2_cache_hits
            .saturating_add(stats.phase2_cache_hits);
        total.total_steps = total.total_steps.saturating_add(stats.total_steps);
        total.fast_path_steps = total.fast_path_steps.saturating_add(stats.fast_path_steps);
        total.handoffs = total.handoffs.saturating_add(stats.handoffs);
        total.frontier_replays = total
            .frontier_replays
            .saturating_add(stats.frontier_replays);
        total.splits = total.splits.saturating_add(stats.splits);
        total.steals = total.steals.saturating_add(stats.steals);
        total.idle_parks = total.idle_parks.saturating_add(stats.idle_parks);
        total.steal_replays = total.steal_replays.saturating_add(stats.steal_replays);
        total.probe_skips = total.probe_skips.saturating_add(stats.probe_skips);
        total.monitor_paths.merge(&stats.monitor_paths);
        // Coverage gauges describe shared strategy state, not per-iteration
        // events: take the high-water mark rather than double-counting.
        total.corpus_size = total.corpus_size.max(stats.corpus_size);
        total.coverage_bits = total.coverage_bits.max(stats.coverage_bits);
        total.mutations = total.mutations.saturating_add(stats.mutations);
        total.duration += stats.duration;
        if !vs.is_empty() {
            violations = vs;
            if options.stop_at_first_violation {
                break;
            }
        }
    }
    (violations, total)
}

fn check_against_spec_at<T: TestTarget>(
    target: &T,
    matrix: &TestMatrix,
    spec: &ObservationSet,
    options: &CheckOptions,
    preemption_bound: Option<usize>,
) -> (Vec<Violation>, PhaseStats) {
    // The work-stealing engine partitions the DFS schedule tree; sampling
    // strategies have no tree to partition and run serially.
    if options.workers > 1 && matches!(options.strategy, StrategyKind::Dfs) {
        return check_against_spec_at_parallel(target, matrix, spec, options, preemption_bound);
    }
    let start = std::time::Instant::now();
    let paths_before = monitor_path_snapshot(options);
    let index = spec.index();
    let mut violations = Vec::new();
    // Thread-symmetry structure of the test (empty when disabled): feeds
    // both schedule pruning (masks, through the scheduler config) and the
    // canonical verdict-cache keys below.
    let groups = symmetry_groups_for(target, matrix, options);
    // Verdict cache: phase 2 visits the same history through many
    // schedules — and, under symmetry, through renamings — so each
    // canonical class needs only one witness search.
    let cache: HistoryCache<CachedVerdict> = HistoryCache::new(1);
    // Specifications of the sub-tests obtained by dropping spuriously-
    // failed operations, synthesized on demand (phase 1 is cheap, §5.4)
    // and cached per removal set.
    let mut sub_specs: std::collections::BTreeMap<Vec<(usize, usize)>, ObservationSet> =
        Default::default();
    let mut full = 0usize;
    let mut stuck = 0usize;

    let mut config = Config::exhaustive()
        .with_por(options.por)
        .with_symmetry(groups.masks())
        .with_fast_path(options.fast_path)
        .with_backend(options.backend);
    config.preemption_bound = preemption_bound;
    config.max_runs = options.max_phase2_runs;
    config.strategy = options.strategy.clone();

    let stats = explore_matrix(target, matrix, &config, |run| {
        let mut ok = true;
        match &run.outcome {
            RunOutcome::Pruned => {
                // Sleep-set pruned: every continuation reorders only
                // independent transitions of an explored schedule, so its
                // history was already checked. Not a stuck run.
            }
            RunOutcome::Panicked { message, .. } => {
                violations.push(Violation::Panic {
                    message: message.clone(),
                    history: run.history.clone(),
                    serial: false,
                    decisions: run.decisions.clone(),
                });
                ok = false;
            }
            RunOutcome::StepLimit => {
                violations.push(Violation::Panic {
                    message: "step limit exceeded in concurrent execution".into(),
                    history: run.history.clone(),
                    serial: false,
                    decisions: run.decisions.clone(),
                });
                ok = false;
            }
            RunOutcome::Complete => {
                // A history already seen (through another schedule, or as
                // a symmetric renaming) was already checked — and
                // reported, if it was a violation.
                let key = groups.canonicalize(&run.history);
                if cache.get(&key).is_none() {
                    full = full.saturating_add(1);
                    let verdict = full_verdict(
                        target,
                        matrix,
                        &index,
                        options,
                        &mut sub_specs,
                        &run.history,
                    );
                    if verdict.is_violation() {
                        violations.push(Violation::NoWitness {
                            history: run.history.clone(),
                            decisions: run.decisions.clone(),
                        });
                        ok = false;
                    }
                    cache.insert_if_absent(&key, verdict);
                }
            }
            RunOutcome::Deadlock | RunOutcome::Livelock | RunOutcome::StuckSerial => {
                let key = groups.canonicalize(&run.history);
                if cache.get(&key).is_none() {
                    stuck = stuck.saturating_add(1);
                    let verdict = stuck_verdict(
                        target,
                        matrix,
                        &index,
                        options,
                        &mut sub_specs,
                        &run.history,
                    );
                    if let CachedVerdict::StuckNoWitness { reduced, pending } = &verdict {
                        // Report the reduced history so the pending index
                        // refers to the checked history.
                        violations.push(Violation::StuckNoWitness {
                            history: reduced.clone(),
                            pending: *pending,
                            decisions: run.decisions.clone(),
                        });
                        ok = false;
                    }
                    cache.insert_if_absent(&key, verdict);
                }
            }
        }
        if !ok && options.stop_at_first_violation {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });

    let phase = PhaseStats {
        runs: stats.runs,
        full_histories: full,
        stuck_histories: stuck,
        sleep_prunes: stats.sleep_prunes,
        symmetry_prunes: stats.symmetry_prunes,
        phase2_cache_hits: cache.hits(),
        total_steps: stats.total_steps,
        fast_path_steps: stats.fast_path_steps,
        handoffs: stats.handoffs,
        monitor_paths: monitor_path_snapshot(options).diff_since(&paths_before),
        corpus_size: stats.corpus_size,
        coverage_bits: stats.coverage_bits,
        mutations: stats.mutations,
        duration: start.elapsed(),
        ..Default::default()
    };
    (violations, phase)
}

/// The thread-symmetry structure phase 2 works with: the matrix's groups
/// under the target's policy, or the empty structure when the check's
/// [`symmetry`](CheckOptions::symmetry) flag is off (the `--no-symmetry`
/// escape hatch). Empty groups make [`SymmetryGroups::canonicalize`] the
/// identity and [`SymmetryGroups::masks`] empty, so both the schedule
/// pruning and the canonical cache keys degrade to the unreduced
/// behaviour.
fn symmetry_groups_for<T: TestTarget>(
    target: &T,
    matrix: &TestMatrix,
    options: &CheckOptions,
) -> SymmetryGroups {
    if options.symmetry {
        matrix.symmetry_groups(target.symmetry_policy())
    } else {
        SymmetryGroups::default()
    }
}

/// The monitor backend's cumulative path counters right now (zeroes when
/// no backend is configured, or it does not report paths). Phases report
/// the difference between two snapshots.
fn monitor_path_snapshot(options: &CheckOptions) -> MonitorPathStats {
    options
        .witness_monitor
        .as_ref()
        .and_then(|m| m.0.path_stats())
        .unwrap_or_default()
}

/// Verdict of one witness search, cached per canonical history class
/// (in a [`HistoryCache`]) and shared by all phase-2 workers: the verdict
/// of a history is a pure function of the history (and the fixed
/// spec/options), invariant under symmetric renaming, so whichever worker
/// computes it first can publish it for the whole class.
#[derive(Clone)]
enum CachedVerdict {
    /// A serial witness exists.
    Pass,
    /// No witness for a complete history (Definition 1).
    NoWitness,
    /// Some pending operation of a stuck history has no stuck witness
    /// (Definition 2). Stores the spurious-reduced history the pending
    /// index refers to, so serial cache hits can report the violation
    /// without redoing the reduction. The *pending index* is invariant
    /// across the canonical class (canonicalization and spurious
    /// reduction both preserve operation positions); the stored history
    /// is whichever class member was checked first, so the parallel path
    /// rebuilds the reported history from its local run instead.
    StuckNoWitness { reduced: History, pending: OpIndex },
}

impl CachedVerdict {
    fn is_violation(&self) -> bool {
        !matches!(self, CachedVerdict::Pass)
    }
}

/// Witness search for a complete history (serial path's `Complete` arm,
/// factored out for the parallel workers).
fn full_verdict<T: TestTarget>(
    target: &T,
    matrix: &TestMatrix,
    index: &SpecIndex<'_>,
    options: &CheckOptions,
    sub_specs: &mut BTreeMap<Vec<(usize, usize)>, ObservationSet>,
    history: &History,
) -> CachedVerdict {
    let (reduced, removed) = reduce_spurious(history, &options.spurious_failures);
    let found = if let Some(monitor) = &options.witness_monitor {
        // Monitor backend: the oracle replays invocation sequences
        // directly, so the reduced history needs no sub-test spec.
        monitor.0.check_full(&reduced, &options.async_methods)
    } else {
        let q = WitnessQuery::for_full_relaxed(&reduced, &options.async_methods);
        if removed.is_empty() {
            find_witness(index, &q).is_some()
        } else {
            let sub = sub_specs.entry(removed).or_insert_with_key(|cells| {
                synthesize_spec(target, &reduced_matrix(matrix, cells)).0
            });
            find_witness(&sub.index(), &q).is_some()
        }
    };
    if found {
        CachedVerdict::Pass
    } else {
        CachedVerdict::NoWitness
    }
}

/// Witness search for a stuck history (serial path's stuck arm, factored
/// out for the parallel workers).
fn stuck_verdict<T: TestTarget>(
    target: &T,
    matrix: &TestMatrix,
    index: &SpecIndex<'_>,
    options: &CheckOptions,
    sub_specs: &mut BTreeMap<Vec<(usize, usize)>, ObservationSet>,
    history: &History,
) -> CachedVerdict {
    let (reduced, removed) = reduce_spurious(history, &options.spurious_failures);
    if let Some(monitor) = &options.witness_monitor {
        for e in reduced.pending_ops() {
            if !monitor.0.check_stuck(&reduced, e, &options.async_methods) {
                return CachedVerdict::StuckNoWitness {
                    reduced,
                    pending: e,
                };
            }
        }
        return CachedVerdict::Pass;
    }
    let sub_spec: Option<&ObservationSet> =
        if removed.is_empty() {
            None
        } else {
            Some(sub_specs.entry(removed).or_insert_with_key(|cells| {
                synthesize_spec(target, &reduced_matrix(matrix, cells)).0
            }))
        };
    let sub_index = sub_spec.map(|s| s.index());
    for e in reduced.pending_ops() {
        let q = WitnessQuery::for_stuck_relaxed(&reduced, e, &options.async_methods);
        let missing = match &sub_index {
            Some(idx) => find_witness(idx, &q).is_none(),
            None => find_witness(index, &q).is_none(),
        };
        if missing {
            return CachedVerdict::StuckNoWitness {
                reduced,
                pending: e,
            };
        }
    }
    CachedVerdict::Pass
}

/// A violation claim from one worker, ordered by the claiming run's
/// scheduler decision vector: the depth-first search visits runs in
/// lexicographic decision order, so sorting claims by `decisions`
/// recovers the order in which a serial exploration would have
/// encountered them — regardless of which worker found each one, or when.
/// Workers claim *every* violating occurrence (no local deduplication):
/// the merge keeps the lexicographically least claim per history, which
/// is exactly the occurrence the serial path's first-encounter `seen` map
/// would have reported.
struct Claim {
    decisions: Vec<usize>,
    /// History key for deduplication (the canonicalized, unreduced
    /// history, matching the serial path's verdict-cache key); `None` for
    /// panics, which are reported per occurrence like the serial path
    /// does.
    key: Option<History>,
    violation: Violation,
}

/// Parallel phase 2: a work-stealing exploration across
/// [`CheckOptions::workers`] OS threads. One worker starts on the whole
/// schedule tree (the [`StealPool`] seeds a single root task); an idle
/// worker flags a victim chosen by deterministic round-robin, and the
/// victim splits off its *deepest unexplored branch point*, shipping the
/// decision prefix plus the accumulated sleep sets so partial-order
/// reduction stays sound across the steal. Shipped prefixes replay
/// lazily — only when a thief actually claims the task; no schedule is
/// ever executed twice. Every worker runs the same depth-first search
/// the serial checker would, against a freshly-constructed target per
/// run; verdicts are shared through a canonically-keyed [`HistoryCache`];
/// violations are claimed with their decision vector and merged in
/// lexicographic
/// (= serial DFS) order at the end, so verdicts, violation order, and
/// witness histories are byte-identical to the serial checker's for any
/// worker count.
fn check_against_spec_at_parallel<T: TestTarget>(
    target: &T,
    matrix: &TestMatrix,
    spec: &ObservationSet,
    options: &CheckOptions,
    preemption_bound: Option<usize>,
) -> (Vec<Violation>, PhaseStats) {
    // Tiny state spaces are explored faster by one worker than by
    // splitting: pool bookkeeping and steal handoffs dominate a tree of a
    // few dozen runs. Probe the serial exploration with a budget one past
    // [`CheckOptions::parallel_probe_runs`]; if the space (or the overall
    // run cap) fits within the threshold, the probe's answer *is* the
    // serial answer — same runs, same violations, no workers spawned.
    // Otherwise the probe is discarded as unaccounted overhead (at most
    // `parallel_probe_runs + 1` runs, negligible against a tree that
    // large) and the work-stealing exploration proceeds.
    if options.parallel_probe_runs > 0 {
        let budget = options
            .parallel_probe_runs
            .saturating_add(1)
            .min(options.max_phase2_runs.unwrap_or(u64::MAX));
        let probe_options = CheckOptions {
            workers: 1,
            max_phase2_runs: Some(budget),
            ..options.clone()
        };
        let (violations, mut stats) =
            check_against_spec_at(target, matrix, spec, &probe_options, preemption_bound);
        if stats.runs <= options.parallel_probe_runs {
            stats.probe_skips = 1;
            return (violations, stats);
        }
    }

    let start = std::time::Instant::now();
    let paths_before = monitor_path_snapshot(options);
    let index = spec.index();
    let groups = symmetry_groups_for(target, matrix, options);

    let mut config = Config::exhaustive()
        .with_por(options.por)
        .with_symmetry(groups.masks())
        .with_fast_path(options.fast_path)
        .with_backend(options.backend);
    config.preemption_bound = preemption_bound;
    // Each worker runs ONE exploration that streams subtree tasks from
    // the shared pool; the run budget is enforced globally through
    // `runs_done`, so the per-exploration cap stays off.
    config.max_runs = None;
    // Workers must agree with the serial checker (and with each other) on
    // whether sleep sets are in play: shipped sleep masks are only
    // meaningful to a thief that applies them.
    let por = config.effective_por();

    // Counts every run a worker's visitor accepted and enforces the run
    // budget across all workers.
    let runs_done = AtomicU64::new(0);
    let process_run = |runs_done: &AtomicU64| -> bool {
        match options.max_phase2_runs {
            Some(max) => {
                if runs_done.fetch_add(1, Ordering::SeqCst) >= max {
                    runs_done.fetch_sub(1, Ordering::SeqCst);
                    false
                } else {
                    true
                }
            }
            None => {
                runs_done.fetch_add(1, Ordering::SeqCst);
                true
            }
        }
    };

    let cache: HistoryCache<CachedVerdict> =
        HistoryCache::new((options.workers * 8).next_power_of_two());
    let full_count = AtomicUsize::new(0);
    let stuck_count = AtomicUsize::new(0);
    let claims: Mutex<Vec<Claim>> = Mutex::new(Vec::new());
    // The pool seeds one task covering the whole schedule tree; every
    // further task exists only because an idle worker asked for work.
    let pool = Arc::new(StealPool::new(options.workers));
    // Behind an `Arc` because the claim-time skip closure is owned by the
    // strategy (`'static`), outliving this function's borrows.
    let cancel = Arc::new(LexCancel::new());
    let budget_exhausted = AtomicBool::new(false);
    let worker_stats: Mutex<ExploreStats> = Mutex::new(ExploreStats::default());
    let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for w in 0..options.workers {
            let (pool, cancel, cache, claims) = (&pool, &cancel, &cache, &claims);
            let groups = &groups;
            let (runs_done, process_run) = (&runs_done, &process_run);
            let (full_count, stuck_count, index) = (&full_count, &stuck_count, &index);
            let (budget_exhausted, worker_stats) = (&budget_exhausted, &worker_stats);
            let (config, panic_payload) = (&config, &panic_payload);
            scope.spawn(move || {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    // Subtrees wholly at-or-after a known violation cannot
                    // contain the lexicographic winner; skip them at claim
                    // time, before their prefix is ever replayed.
                    let skip_cancel = Arc::clone(cancel);
                    let skip: StealSkip =
                        Box::new(move |t: &StealTask| skip_cancel.should_skip_subtree(&t.prefix));
                    // The visitor below raises `abandon` *after* the
                    // strategy has already advanced past the triggering
                    // run (the explorer calls `end_run` first), so a flag
                    // raised against the final run of a task would land on
                    // a fresh, unrelated task. The confirm closure keeps
                    // such stale requests from cancelling it: abandon only
                    // when the known winner is at or before the strategy's
                    // current position.
                    let confirm_cancel = Arc::clone(cancel);
                    let confirm: AbandonConfirm =
                        Box::new(move |d: &[usize]| confirm_cancel.should_skip_subtree(d));
                    let strategy = StealingStrategy::claim_first(
                        Arc::clone(pool),
                        w,
                        por,
                        Some(skip),
                        Some(confirm),
                    )?;
                    let abandon = strategy.abandon_flag();
                    // Sub-test specifications are cheap to synthesize
                    // (phase 1, §5.4), so each worker keeps its own cache
                    // rather than sharing.
                    let mut sub_specs: BTreeMap<Vec<(usize, usize)>, ObservationSet> =
                        BTreeMap::new();
                    let stats = explore_matrix_with_strategy(
                        target,
                        matrix,
                        config,
                        Box::new(strategy),
                        |run| {
                            // A lexicographically smaller violation is
                            // already known; every remaining run of the
                            // current subtree is at or after this one, so
                            // drop the subtree (uncounted) and let the
                            // strategy move on to the next task.
                            if cancel.should_skip(&run.decisions) {
                                abandon.store(true, Ordering::SeqCst);
                                return ControlFlow::Continue(());
                            }
                            if !process_run(runs_done) {
                                budget_exhausted.store(true, Ordering::SeqCst);
                                return ControlFlow::Break(());
                            }
                            let mut violating = false;
                            match &run.outcome {
                                RunOutcome::Pruned => {
                                    // Redundant by partial-order reduction
                                    // (see the serial path); counts toward
                                    // the run budget like any run.
                                }
                                RunOutcome::Panicked { message, .. } => {
                                    claims.lock().unwrap().push(Claim {
                                        decisions: run.decisions.clone(),
                                        key: None,
                                        violation: Violation::Panic {
                                            message: message.clone(),
                                            history: run.history.clone(),
                                            serial: false,
                                            decisions: run.decisions.clone(),
                                        },
                                    });
                                    violating = true;
                                }
                                RunOutcome::StepLimit => {
                                    claims.lock().unwrap().push(Claim {
                                        decisions: run.decisions.clone(),
                                        key: None,
                                        violation: Violation::Panic {
                                            message: "step limit exceeded in concurrent execution"
                                                .into(),
                                            history: run.history.clone(),
                                            serial: false,
                                            decisions: run.decisions.clone(),
                                        },
                                    });
                                    violating = true;
                                }
                                RunOutcome::Complete
                                | RunOutcome::Deadlock
                                | RunOutcome::Livelock
                                | RunOutcome::StuckSerial => {
                                    let key = groups.canonicalize(&run.history);
                                    let verdict = match cache.get(&key) {
                                        Some(v) => v,
                                        None => {
                                            // Witness search runs outside any
                                            // cache lock; `insert_if_absent`
                                            // resolves the (rare) race where
                                            // two workers compute the same
                                            // history, counting it once.
                                            let computed = if run.outcome == RunOutcome::Complete {
                                                full_verdict(
                                                    target,
                                                    matrix,
                                                    index,
                                                    options,
                                                    &mut sub_specs,
                                                    &run.history,
                                                )
                                            } else {
                                                stuck_verdict(
                                                    target,
                                                    matrix,
                                                    index,
                                                    options,
                                                    &mut sub_specs,
                                                    &run.history,
                                                )
                                            };
                                            let (v, inserted) =
                                                cache.insert_if_absent(&key, computed);
                                            if inserted {
                                                if run.outcome == RunOutcome::Complete {
                                                    full_count.fetch_add(1, Ordering::SeqCst);
                                                } else {
                                                    stuck_count.fetch_add(1, Ordering::SeqCst);
                                                }
                                            }
                                            v
                                        }
                                    };
                                    if verdict.is_violation() {
                                        violating = true;
                                        let violation = match verdict {
                                            CachedVerdict::NoWitness => Violation::NoWitness {
                                                history: run.history.clone(),
                                                decisions: run.decisions.clone(),
                                            },
                                            CachedVerdict::StuckNoWitness { pending, .. } => {
                                                // The cached reduced history
                                                // belongs to whichever class
                                                // member raced in first;
                                                // rebuild from the local run
                                                // so the surviving lex-least
                                                // claim reports exactly what
                                                // the serial checker would.
                                                let (reduced, _) = reduce_spurious(
                                                    &run.history,
                                                    &options.spurious_failures,
                                                );
                                                Violation::StuckNoWitness {
                                                    history: reduced,
                                                    pending,
                                                    decisions: run.decisions.clone(),
                                                }
                                            }
                                            CachedVerdict::Pass => unreachable!(),
                                        };
                                        claims.lock().unwrap().push(Claim {
                                            decisions: run.decisions.clone(),
                                            key: Some(key),
                                            violation,
                                        });
                                    }
                                }
                            }
                            if violating && options.stop_at_first_violation {
                                // Every later run of the current subtree is
                                // lexicographically greater and cannot win;
                                // later-claimed subtrees are filtered by the
                                // claim-time skip. The worker itself stays
                                // alive: a lexicographically *smaller*
                                // subtree may still be queued.
                                cancel.report(&run.decisions);
                                abandon.store(true, Ordering::SeqCst);
                            }
                            ControlFlow::Continue(())
                        },
                    );
                    // Idempotent: releases the task a budget Break left
                    // held, so the pool's active count drains to zero.
                    pool.finish_task(w);
                    if budget_exhausted.load(Ordering::SeqCst) {
                        pool.stop();
                    }
                    Some(stats)
                }));
                match result {
                    Ok(Some(stats)) => worker_stats
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .merge(&stats),
                    Ok(None) => {}
                    Err(payload) => {
                        // A worker panicking mid-steal must not strand its
                        // parked peers: poison the pool so they drain and
                        // exit, then re-raise on the caller's thread.
                        pool.poison();
                        let mut slot = panic_payload.lock().unwrap_or_else(|e| e.into_inner());
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                    }
                }
            });
        }
    });

    if let Some(payload) = panic_payload
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
    {
        std::panic::resume_unwind(payload);
    }

    let mut sched_stats = worker_stats.into_inner().unwrap_or_else(|e| e.into_inner());
    pool.export_stats(&mut sched_stats);

    // Deterministic merge: sort claims lexicographically by decision
    // vector (the serial visit order), deduplicate violating histories
    // (the serial path's global `seen` map reports only the first
    // occurrence), and honor stop-at-first by keeping only the claim the
    // serial exploration would have stopped at.
    let mut claims = claims.into_inner().unwrap_or_else(|e| e.into_inner());
    claims.sort_by(|a, b| a.decisions.cmp(&b.decisions));
    let mut violations = Vec::new();
    let mut reported: HashSet<History> = HashSet::new();
    for claim in claims {
        if let Some(key) = &claim.key {
            if !reported.insert(key.clone()) {
                continue;
            }
        }
        violations.push(claim.violation);
        if options.stop_at_first_violation {
            break;
        }
    }

    let phase = PhaseStats {
        // Every schedule executes exactly once — a stolen task's prefix
        // replay happens *inside* its first (new) run, never as an extra
        // one — so `runs` matches a serial exploration of the same tree.
        // (Under stop-at-first, runs a known winner superseded are
        // abandoned uncounted.)
        runs: runs_done.load(Ordering::SeqCst),
        full_histories: full_count.load(Ordering::SeqCst),
        stuck_histories: stuck_count.load(Ordering::SeqCst),
        sleep_prunes: sched_stats.sleep_prunes,
        symmetry_prunes: sched_stats.symmetry_prunes,
        phase2_cache_hits: cache.hits(),
        total_steps: sched_stats.total_steps,
        fast_path_steps: sched_stats.fast_path_steps,
        handoffs: sched_stats.handoffs,
        frontier_replays: 0,
        splits: sched_stats.splits,
        steals: sched_stats.steals,
        idle_parks: sched_stats.idle_parks,
        steal_replays: sched_stats.steal_replays,
        probe_skips: 0,
        // Parallel workers can race to check the same history before the
        // shared verdict cache publishes it, so these counters may exceed
        // a serial run's — they measure monitor work done, not distinct
        // histories.
        monitor_paths: monitor_path_snapshot(options).diff_since(&paths_before),
        // The parallel path only runs under StrategyKind::Dfs, which
        // carries no coverage feedback.
        corpus_size: 0,
        coverage_bits: 0,
        mutations: 0,
        duration: start.elapsed(),
    };
    (violations, phase)
}

/// The function `Check(X, m)` of the paper's Fig. 5: phase 1 enumerates
/// the serial executions of the finite test `m` to synthesize the
/// sequential specification; the determinism check rejects components
/// whose serial behavior diverges at a call; phase 2 enumerates the
/// concurrent executions and requires a serial witness for every complete
/// history (in `A`) and for every pending operation of every stuck
/// history (in `B`).
///
/// Completeness (Theorem 5): a FAIL result (non-empty
/// [`CheckReport::violations`]) proves the component is not
/// deterministically linearizable. Restricted soundness (Theorem 6): if a
/// component is not deterministically linearizable, *some* finite test
/// fails — though not necessarily this one.
///
/// # Example
///
/// ```
/// use lineup::{check, CheckOptions, Invocation, TestMatrix};
/// use lineup::doc_support::CounterTarget;
///
/// let m = TestMatrix::from_columns(vec![
///     vec![Invocation::new("inc")],
///     vec![Invocation::new("inc"), Invocation::new("get")],
/// ]);
/// let report = check(&CounterTarget, &m, &CheckOptions::new());
/// assert!(report.passed());
/// ```
pub fn check<T: TestTarget>(
    target: &T,
    matrix: &TestMatrix,
    options: &CheckOptions,
) -> CheckReport {
    // Phase 1.
    let (spec, phase1, phase1_violation) = synthesize_spec(target, matrix);
    if let Some(v) = phase1_violation {
        return CheckReport {
            target_name: target.name().to_string(),
            matrix: matrix.clone(),
            violations: vec![v],
            spec,
            phase1,
            phase2: PhaseStats::default(),
        };
    }
    if let Some(nd) = spec.check_determinism() {
        return CheckReport {
            target_name: target.name().to_string(),
            matrix: matrix.clone(),
            violations: vec![Violation::Nondeterminism(nd)],
            spec,
            phase1,
            phase2: PhaseStats::default(),
        };
    }
    // Phase 2.
    let (violations, phase2) = check_against_spec(target, matrix, &spec, options);
    CheckReport {
        target_name: target.name().to_string(),
        matrix: matrix.clone(),
        violations,
        spec,
        phase1,
        phase2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc_support::{BuggyCounterTarget, CounterTarget};
    use crate::target::Invocation;

    fn buggy_matrix() -> TestMatrix {
        TestMatrix::from_columns(vec![
            vec![Invocation::new("inc"), Invocation::new("get")],
            vec![Invocation::new("inc")],
        ])
    }

    #[test]
    fn stop_at_first_violation_reports_exactly_one() {
        let report = check(&BuggyCounterTarget, &buggy_matrix(), &CheckOptions::new());
        assert_eq!(report.violations.len(), 1);
    }

    #[test]
    fn collect_all_reports_every_distinct_violation() {
        let opts = CheckOptions::new().collect_all_violations();
        let report = check(&BuggyCounterTarget, &buggy_matrix(), &opts);
        assert!(
            report.violations.len() > 1,
            "several distinct violating histories exist"
        );
        // All distinct.
        let mut seen = std::collections::HashSet::new();
        for v in &report.violations {
            if let Violation::NoWitness { history, .. } = v {
                assert!(seen.insert(history.clone()), "violations deduplicate");
            }
        }
    }

    #[test]
    fn phase2_run_cap_is_respected() {
        let opts = CheckOptions::new()
            .with_preemption_bound(None)
            .with_max_phase2_runs(10);
        let report = check(&CounterTarget, &buggy_matrix(), &opts);
        assert!(report.phase2.runs <= 10);
        assert!(report.passed(), "a cap cannot introduce violations");
    }

    #[test]
    fn tighter_preemption_bounds_explore_fewer_runs() {
        let m = buggy_matrix();
        let runs_at = |bound: Option<usize>| {
            let opts = CheckOptions::new().with_preemption_bound(bound);
            check(&CounterTarget, &m, &opts).phase2.runs
        };
        let (pb0, pb1, unbounded) = (runs_at(Some(0)), runs_at(Some(1)), runs_at(None));
        assert!(pb0 < pb1, "{pb0} < {pb1}");
        assert!(pb1 < unbounded, "{pb1} < {unbounded}");
    }

    #[test]
    fn iterative_bounding_agrees_on_verdicts() {
        let m = buggy_matrix();
        for (target_passes, iterate) in [(false, true), (false, false)] {
            let mut opts = CheckOptions::new();
            if iterate {
                opts = opts.with_iterative_bounding();
            }
            let report = check(&BuggyCounterTarget, &m, &opts);
            assert_eq!(report.passed(), target_passes);
        }
        let opts = CheckOptions::new().with_iterative_bounding();
        assert!(check(&CounterTarget, &m, &opts).passed());
    }

    #[test]
    fn iterative_bounding_finds_shallow_bugs_with_few_preemptions() {
        // The buggy counter's lost update needs a single preemption, so
        // the iterative search stops during the bound-1 iteration —
        // strictly before a full bound-2 exploration would.
        let m = buggy_matrix();
        let iterative = CheckOptions::new().with_iterative_bounding();
        let direct = CheckOptions::new();
        let r_iter = check(&BuggyCounterTarget, &m, &iterative);
        let r_direct = check(&BuggyCounterTarget, &m, &direct);
        assert!(!r_iter.passed() && !r_direct.passed());
        // Both stop at their first violation; the iterative one never
        // spends more runs than bound-0 exhausted plus the bound-1 prefix.
        assert!(r_iter.phase2.runs > 0);
    }

    #[test]
    fn parallel_stop_at_first_reports_the_serial_violation() {
        let m = buggy_matrix();
        let serial = check(&BuggyCounterTarget, &m, &CheckOptions::new());
        let parallel = check(
            &BuggyCounterTarget,
            &m,
            &CheckOptions::new()
                .with_workers(4)
                .with_parallel_probe_runs(0),
        );
        assert_eq!(serial.violations.len(), 1);
        assert_eq!(parallel.violations.len(), 1);
        match (&serial.violations[0], &parallel.violations[0]) {
            (
                Violation::NoWitness {
                    history: h1,
                    decisions: d1,
                },
                Violation::NoWitness {
                    history: h2,
                    decisions: d2,
                },
            ) => {
                assert_eq!(h1, h2, "same violating history as serial");
                assert_eq!(d1, d2, "same reproducing schedule as serial");
            }
            (a, b) => panic!("unexpected violation kinds: {a:?} / {b:?}"),
        }
    }

    #[test]
    fn parallel_collect_all_matches_serial_violation_list() {
        let m = buggy_matrix();
        let serial_opts = CheckOptions::new().collect_all_violations();
        let serial = check(&BuggyCounterTarget, &m, &serial_opts);
        let rendered =
            |vs: &[Violation]| -> Vec<String> { vs.iter().map(|v| format!("{v:?}")).collect() };
        for workers in [2, 4] {
            let par = check(
                &BuggyCounterTarget,
                &m,
                &serial_opts
                    .clone()
                    .with_workers(workers)
                    .with_parallel_probe_runs(0),
            );
            assert_eq!(
                rendered(&serial.violations),
                rendered(&par.violations),
                "workers = {workers}"
            );
            assert_eq!(serial.phase2.full_histories, par.phase2.full_histories);
            assert_eq!(serial.phase2.stuck_histories, par.phase2.stuck_histories);
        }
    }

    #[test]
    fn parallel_passing_target_still_passes() {
        let m = buggy_matrix();
        let serial = check(&CounterTarget, &m, &CheckOptions::new());
        // Probe disabled: exercise the actual work-stealing pool even
        // though this state space is below the auto-serial threshold.
        let par = check(
            &CounterTarget,
            &m,
            &CheckOptions::new()
                .with_workers(4)
                .with_parallel_probe_runs(0),
        );
        assert!(serial.passed() && par.passed());
        assert_eq!(serial.phase2.full_histories, par.phase2.full_histories);
        assert_eq!(serial.phase2.stuck_histories, par.phase2.stuck_histories);
        // A stolen task's prefix replays inside its first run, never as an
        // extra one, so the run count is identical to the serial
        // exploration's — and no eager frontier enumeration ever happens.
        assert_eq!(par.phase2.runs, serial.phase2.runs);
        assert_eq!(par.phase2.frontier_replays, 0, "no eager prefix runs");
        assert!(
            par.phase2.steal_replays <= par.phase2.steals,
            "replays only for claimed steals: {} <= {}",
            par.phase2.steal_replays,
            par.phase2.steals,
        );
        assert!(
            par.phase2.steals <= par.phase2.splits,
            "every claimed steal was split off first: {} <= {}",
            par.phase2.steals,
            par.phase2.splits,
        );
        assert_eq!(serial.phase2.frontier_replays, 0);
        assert_eq!(serial.phase2.splits, 0);
        assert_eq!(serial.phase2.steals, 0);
        assert_eq!(serial.phase2.idle_parks, 0);
    }

    #[test]
    fn tiny_spaces_skip_parallel_splitting() {
        // The counter's exhaustive tree is a few dozen runs — far below
        // the default probe threshold — so a multi-worker check takes the
        // serial path: same runs, same verdict, and no pool activity.
        let m = buggy_matrix();
        let opts = CheckOptions::new().with_preemption_bound(None);
        let serial = check(&CounterTarget, &m, &opts);
        let par = check(&CounterTarget, &m, &opts.clone().with_workers(4));
        assert!(serial.passed() && par.passed());
        assert!(
            serial.phase2.runs <= CheckOptions::new().parallel_probe_runs,
            "workload chosen below the probe threshold"
        );
        assert_eq!(par.phase2.runs, serial.phase2.runs);
        assert_eq!(par.phase2.total_steps, serial.phase2.total_steps);
        assert_eq!(par.phase2.probe_skips, 1, "the probe answered the check");
        assert_eq!(serial.phase2.probe_skips, 0, "serial checks never probe");
        assert_eq!(par.phase2.splits, 0, "no split below the threshold");
        assert_eq!(par.phase2.steals, 0);
        assert_eq!(par.phase2.steal_replays, 0);
        // The same check on a buggy target reports the serial violation.
        let sbug = check(&BuggyCounterTarget, &m, &opts);
        let pbug = check(&BuggyCounterTarget, &m, &opts.clone().with_workers(4));
        assert_eq!(
            format!("{:?}", sbug.violations),
            format!("{:?}", pbug.violations)
        );
    }

    #[test]
    fn forced_slow_path_agrees_with_fast_path() {
        let m = buggy_matrix();
        let fast = check(&BuggyCounterTarget, &m, &CheckOptions::new());
        let slow = check(
            &BuggyCounterTarget,
            &m,
            &CheckOptions::new().with_fast_path(false),
        );
        assert_eq!(fast.passed(), slow.passed());
        assert_eq!(fast.phase2.runs, slow.phase2.runs);
        assert_eq!(fast.phase2.total_steps, slow.phase2.total_steps);
        assert_eq!(slow.phase2.fast_path_steps, 0, "knob forces every handoff");
        assert!(
            fast.phase2.fast_path_steps > 0,
            "fast path engages by default"
        );
        assert_eq!(
            slow.phase2.handoffs,
            fast.phase2.handoffs + fast.phase2.fast_path_steps,
            "every skipped handoff reappears when the knob is off"
        );
    }

    #[test]
    fn parallel_respects_run_cap() {
        for probe in [0, CheckOptions::new().parallel_probe_runs] {
            let opts = CheckOptions::new()
                .with_preemption_bound(None)
                .with_max_phase2_runs(10)
                .with_workers(4)
                .with_parallel_probe_runs(probe);
            let report = check(&CounterTarget, &buggy_matrix(), &opts);
            assert!(report.phase2.runs <= 10);
            assert!(report.passed(), "a cap cannot introduce violations");
        }
    }

    #[test]
    #[should_panic(expected = "workers must be at least 1")]
    fn zero_workers_rejected() {
        let _ = CheckOptions::new().with_workers(0);
    }

    #[test]
    fn report_accessors() {
        let report = check(&CounterTarget, &buggy_matrix(), &CheckOptions::new());
        assert!(report.passed());
        assert!(report.first_violation().is_none());
        assert_eq!(report.target_name, "Counter");
        assert!(report.phase1.runs > 0);
        assert!(!report.spec.is_empty());
    }
}
