//! Object-safe access to targets, for registries and drivers that handle
//! many component classes uniformly (like the paper's Table 1/Table 2
//! evaluation harness).
//!
//! [`TestTarget`] has an associated instance type and therefore cannot be
//! a trait object; [`ErasedTarget`] wraps the crate's entry points behind
//! a blanket impl, so `Box<dyn ErasedTarget>` works for any target.

use crate::auto::{random_check, random_check_parallel, RandomCheckConfig, RandomCheckResult};
use crate::check::{check, synthesize_spec, CheckOptions, CheckReport, PhaseStats, Violation};
use crate::matrix::TestMatrix;
use crate::shrink::shrink_failing_test;
use crate::spec::ObservationSet;
use crate::target::{Invocation, SymmetryPolicy, TestTarget};

/// An object-safe facade over [`TestTarget`] plus the crate's checking
/// entry points. Implemented for every `TestTarget` via a blanket impl.
pub trait ErasedTarget: Sync {
    /// See [`TestTarget::name`].
    fn name(&self) -> &str;
    /// See [`TestTarget::invocations`].
    fn invocations(&self) -> Vec<Invocation>;
    /// See [`TestTarget::symmetry_policy`].
    fn symmetry_policy(&self) -> SymmetryPolicy;
    /// Runs [`check`] on this target.
    fn check(&self, matrix: &TestMatrix, options: &CheckOptions) -> CheckReport;
    /// Runs [`random_check`] on this target.
    fn random_check(&self, config: &RandomCheckConfig) -> RandomCheckResult;
    /// Runs [`random_check_parallel`] on this target.
    fn random_check_parallel(
        &self,
        config: &RandomCheckConfig,
        workers: usize,
    ) -> RandomCheckResult;
    /// Runs [`synthesize_spec`] (phase 1 only) on this target.
    fn synthesize_spec(
        &self,
        matrix: &TestMatrix,
    ) -> (ObservationSet, PhaseStats, Option<Violation>);
    /// Runs [`shrink_failing_test`] on this target.
    fn shrink_failing_test(&self, matrix: &TestMatrix, options: &CheckOptions)
        -> (TestMatrix, u64);
}

impl<T: TestTarget> ErasedTarget for T {
    fn name(&self) -> &str {
        TestTarget::name(self)
    }

    fn invocations(&self) -> Vec<Invocation> {
        TestTarget::invocations(self)
    }

    fn symmetry_policy(&self) -> SymmetryPolicy {
        TestTarget::symmetry_policy(self)
    }

    fn check(&self, matrix: &TestMatrix, options: &CheckOptions) -> CheckReport {
        check(self, matrix, options)
    }

    fn random_check(&self, config: &RandomCheckConfig) -> RandomCheckResult {
        random_check(self, config)
    }

    fn random_check_parallel(
        &self,
        config: &RandomCheckConfig,
        workers: usize,
    ) -> RandomCheckResult {
        random_check_parallel(self, config, workers)
    }

    fn synthesize_spec(
        &self,
        matrix: &TestMatrix,
    ) -> (ObservationSet, PhaseStats, Option<Violation>) {
        synthesize_spec(self, matrix)
    }

    fn shrink_failing_test(
        &self,
        matrix: &TestMatrix,
        options: &CheckOptions,
    ) -> (TestMatrix, u64) {
        shrink_failing_test(self, matrix, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc_support::{BuggyCounterTarget, CounterTarget};

    #[test]
    fn erased_targets_are_objects() {
        let targets: Vec<Box<dyn ErasedTarget>> =
            vec![Box::new(CounterTarget), Box::new(BuggyCounterTarget)];
        let m = TestMatrix::from_columns(vec![
            vec![Invocation::new("inc"), Invocation::new("get")],
            vec![Invocation::new("inc")],
        ]);
        let opts = CheckOptions::new();
        let results: Vec<bool> = targets
            .iter()
            .map(|t| t.check(&m, &opts).passed())
            .collect();
        assert_eq!(results, vec![true, false]);
        assert_eq!(targets[0].name(), "Counter");
        assert_eq!(targets[0].invocations().len(), 2);
    }

    #[test]
    fn erased_shrink_works() {
        let t: Box<dyn ErasedTarget> = Box::new(BuggyCounterTarget);
        let m = TestMatrix::from_columns(vec![
            vec![Invocation::new("inc"), Invocation::new("get")],
            vec![Invocation::new("inc"), Invocation::new("inc")],
        ]);
        let (small, _) = t.shrink_failing_test(&m, &CheckOptions::new());
        assert!(small.operation_count() <= m.operation_count());
    }
}
