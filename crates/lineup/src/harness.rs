//! The bridge between Line-Up and the stateless model checker: runs a
//! [`TestMatrix`] against a [`TestTarget`] under `lineup-sched`,
//! producing one [`History`] per explored schedule.

use std::cell::RefCell;
use std::ops::ControlFlow;
use std::rc::Rc;
use std::sync::Arc;

use lineup_sched::{
    block_current, current_thread, explore, explore_with_strategy, op_boundary, unblock, BlockKind,
    Config, Execution, ExploreStats, RunOutcome, Strategy, ThreadId,
};

use crate::history::History;
use crate::matrix::TestMatrix;
use crate::target::{Invocation, TestInstance, TestTarget};

/// The history recorder shared by the virtual threads of one run.
/// Mutations happen while holding the scheduler baton, so the interior
/// `std::sync::Mutex` is uncontended; it exists to make the type `Sync`.
#[derive(Debug)]
struct Recorder {
    history: std::sync::Mutex<History>,
}

impl Recorder {
    fn new(thread_count: usize) -> Self {
        Recorder {
            history: std::sync::Mutex::new(History::new(thread_count)),
        }
    }

    fn record_call(&self, thread: usize, invocation: Invocation) -> usize {
        // History appends are model-visible observations: tell the
        // partial-order reducer so transitions that append are never
        // treated as independent (their order is the history).
        lineup_sched::mark_history_event();
        self.history.lock().unwrap().push_call(thread, invocation)
    }

    fn record_return(&self, op: usize, response: crate::value::Value) {
        lineup_sched::mark_history_event();
        self.history.lock().unwrap().push_return(op, response);
    }

    fn take(&self, stuck: bool) -> History {
        let mut h = std::mem::take(&mut *self.history.lock().unwrap());
        h.stuck = stuck;
        h
    }
}

/// A completion gate for the final-operations thread (paper §4.3): the
/// extra thread blocks until every column thread has finished its
/// sequence, so the final observations are totally ordered after the
/// concurrent part. State mutations happen under the scheduler baton.
#[derive(Debug)]
struct Gate {
    state: std::sync::Mutex<GateState>,
    target: usize,
}

#[derive(Debug, Default)]
struct GateState {
    arrived: usize,
    waiter: Option<ThreadId>,
}

impl Gate {
    fn new(target: usize) -> Self {
        Gate {
            state: std::sync::Mutex::new(GateState::default()),
            target,
        }
    }

    /// Marks one column thread as done; wakes the finals thread when all
    /// have arrived. Not a schedule point.
    fn arrive(&self) {
        let mut g = self.state.lock().unwrap();
        g.arrived += 1;
        if g.arrived >= self.target {
            if let Some(w) = g.waiter.take() {
                unblock(w);
            }
        }
    }

    /// Blocks the calling (finals) thread until all columns arrived.
    fn wait(&self) {
        loop {
            {
                let mut g = self.state.lock().unwrap();
                if g.arrived >= self.target {
                    return;
                }
                g.waiter = Some(current_thread());
            }
            let _ = block_current(BlockKind::Untimed);
        }
    }
}

/// One explored run of a test matrix: the observed history plus scheduler
/// metadata.
#[derive(Debug, Clone)]
pub struct MatrixRun {
    /// The recorded history; `stuck` is set for deadlocked/livelocked/
    /// serially-blocked runs.
    pub history: History,
    /// The raw scheduler outcome.
    pub outcome: RunOutcome,
    /// Preemptions used by this schedule.
    pub preemptions: usize,
    /// Decision indexes of this run; feed them to [`replay_matrix`] to
    /// re-execute the exact schedule (e.g. to debug a violation).
    pub decisions: Vec<usize>,
    /// The access log (empty unless the configuration records accesses);
    /// consumed by the `lineup-checkers` comparison checkers.
    pub access_log: Vec<lineup_sched::AccessEvent>,
    /// Per-decision sleep-set additions under partial-order reduction
    /// (empty without POR), parallel to `decisions`; shipped with stolen
    /// subtree prefixes during parallel phase-2 exploration.
    pub slept: Vec<u64>,
}

/// Explores the schedules of `matrix` against `target` under the given
/// scheduler configuration, invoking `visit` once per run.
///
/// In serial configurations ([`Config::serial`]) this enumerates the
/// sequential behaviors of the component (Line-Up phase 1); in concurrent
/// configurations it enumerates the interleavings (phase 2).
///
/// Init operations run unrecorded during setup; final operations run on an
/// extra thread gated behind completion of all columns and are recorded in
/// the history (paper §4.3).
pub fn explore_matrix<T: TestTarget>(
    target: &T,
    matrix: &TestMatrix,
    config: &Config,
    visit: impl FnMut(MatrixRun) -> ControlFlow<()>,
) -> ExploreStats {
    explore_matrix_impl(target, matrix, config, None, visit)
}

/// [`explore_matrix`] with a caller-supplied scheduling strategy instead of
/// one built from [`Config::strategy`]: the entry point for work-stealing
/// phase-2 workers, whose [`StealingStrategy`](lineup_sched::StealingStrategy)
/// streams subtree tasks from a shared pool across a single exploration
/// call.
pub fn explore_matrix_with_strategy<T: TestTarget>(
    target: &T,
    matrix: &TestMatrix,
    config: &Config,
    strategy: Box<dyn Strategy + Send>,
    visit: impl FnMut(MatrixRun) -> ControlFlow<()>,
) -> ExploreStats {
    explore_matrix_impl(target, matrix, config, Some(strategy), visit)
}

fn explore_matrix_impl<T: TestTarget>(
    target: &T,
    matrix: &TestMatrix,
    config: &Config,
    strategy: Option<Box<dyn Strategy + Send>>,
    mut visit: impl FnMut(MatrixRun) -> ControlFlow<()>,
) -> ExploreStats {
    let columns = matrix.columns.clone();
    let finals = matrix.finally.clone();
    let thread_count = columns.len() + usize::from(!finals.is_empty());
    let slot: Rc<RefCell<Option<Arc<Recorder>>>> = Rc::new(RefCell::new(None));
    let slot_setup = Rc::clone(&slot);

    let setup = move |ex: &mut Execution| {
        let instance = Arc::new(target.create());
        for inv in &matrix.init {
            // State preparation: performed before the concurrent part,
            // not recorded. Setup runs outside the scheduler, so these
            // operations must not block.
            let _ = instance.invoke(inv);
        }
        let recorder = Arc::new(Recorder::new(thread_count));
        *slot_setup.borrow_mut() = Some(Arc::clone(&recorder));
        let gate = Arc::new(Gate::new(columns.len()));

        for (t, column) in columns.iter().enumerate() {
            let instance = Arc::clone(&instance);
            let recorder = Arc::clone(&recorder);
            let gate = Arc::clone(&gate);
            let column = column.clone();
            ex.spawn(move || {
                for (i, inv) in column.into_iter().enumerate() {
                    // Boundaries separate operations (thread start acts
                    // as the initial boundary): each scheduling decision
                    // in serial mode then corresponds exactly to "whose
                    // operation runs next", so serial schedules map
                    // one-to-one onto serial histories (9!/(3!)³ = 1680
                    // full histories for a 3×3 test, §5.5).
                    if i > 0 {
                        op_boundary();
                    }
                    let op = recorder.record_call(t, inv.clone());
                    let response = instance.invoke(&inv);
                    recorder.record_return(op, response);
                }
                gate.arrive();
            });
        }
        if !finals.is_empty() {
            let t = columns.len();
            let instance = Arc::clone(&instance);
            let recorder = Arc::clone(&recorder);
            let finals = finals.clone();
            let gate = Arc::clone(&gate);
            ex.spawn(move || {
                gate.wait();
                for (i, inv) in finals.into_iter().enumerate() {
                    if i > 0 {
                        op_boundary();
                    }
                    let op = recorder.record_call(t, inv.clone());
                    let response = instance.invoke(&inv);
                    recorder.record_return(op, response);
                }
            });
        }
    };
    let on_run = |run: &lineup_sched::RunResult| {
        let recorder = slot
            .borrow_mut()
            .take()
            .expect("recorder installed by setup");
        let history = recorder.take(run.outcome.is_stuck());
        visit(MatrixRun {
            history,
            outcome: run.outcome.clone(),
            preemptions: run.preemptions,
            decisions: run.decisions.clone(),
            access_log: run.access_log.clone(),
            slept: run.slept.clone(),
        })
    };
    match strategy {
        Some(s) => explore_with_strategy(config, s, setup, on_run),
        None => explore(config, setup, on_run),
    }
}

/// Re-executes one recorded schedule of `matrix` against `target` and
/// returns the resulting run: deterministic debugging of a violation
/// found earlier (pass the violation's `decisions` and the phase-2
/// scheduler settings it was found under).
///
/// # Example
///
/// ```
/// use lineup::{check, replay_matrix, CheckOptions, Invocation, TestMatrix, Violation};
/// use lineup::doc_support::BuggyCounterTarget;
///
/// let m = TestMatrix::from_columns(vec![
///     vec![Invocation::new("inc"), Invocation::new("get")],
///     vec![Invocation::new("inc")],
/// ]);
/// let report = check(&BuggyCounterTarget, &m, &CheckOptions::new());
/// if let Some(Violation::NoWitness { history, decisions }) = report.first_violation() {
///     let run = replay_matrix(&BuggyCounterTarget, &m, decisions.clone(), Some(2));
///     assert_eq!(&run.history, history); // the exact same execution
/// }
/// ```
pub fn replay_matrix<T: TestTarget>(
    target: &T,
    matrix: &TestMatrix,
    decisions: Vec<usize>,
    preemption_bound: Option<usize>,
) -> MatrixRun {
    let mut config = Config::replay(decisions);
    config.preemption_bound = preemption_bound;
    let mut result = None;
    explore_matrix(target, matrix, &config, |run| {
        result = Some(run);
        ControlFlow::Break(())
    });
    result.expect("replay executes exactly one run")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::TestInstance;
    use crate::value::Value;
    use lineup_sync::Atomic;

    /// A correct atomic counter target.
    struct CounterTarget;

    struct CounterInstance {
        count: Atomic<i64>,
    }

    impl TestInstance for CounterInstance {
        fn invoke(&self, inv: &Invocation) -> Value {
            match inv.name.as_str() {
                "inc" => {
                    self.count.fetch_add(1);
                    Value::Unit
                }
                "get" => Value::Int(self.count.load()),
                other => panic!("unknown op {other}"),
            }
        }
    }

    impl TestTarget for CounterTarget {
        type Instance = CounterInstance;
        fn name(&self) -> &str {
            "Counter"
        }
        fn create(&self) -> CounterInstance {
            CounterInstance {
                count: Atomic::new(0),
            }
        }
        fn invocations(&self) -> Vec<Invocation> {
            vec![Invocation::new("inc"), Invocation::new("get")]
        }
    }

    fn inv(name: &str) -> Invocation {
        Invocation::new(name)
    }

    #[test]
    fn serial_exploration_yields_serial_histories() {
        let m = TestMatrix::from_columns(vec![vec![inv("inc")], vec![inv("get")]]);
        let mut histories = Vec::new();
        let stats = explore_matrix(&CounterTarget, &m, &Config::serial(), |run| {
            assert!(run.history.is_serial(), "phase 1 histories are serial");
            assert!(run.history.is_well_formed());
            histories.push(run.history);
            ControlFlow::Continue(())
        });
        // Two serial orders: inc-get (get=1) and get-inc (get=0).
        assert_eq!(stats.complete, 2);
        let gets: std::collections::BTreeSet<_> = histories
            .iter()
            .map(|h| {
                h.ops
                    .iter()
                    .find(|o| o.invocation.name == "get")
                    .unwrap()
                    .response
                    .clone()
            })
            .collect();
        assert_eq!(gets.len(), 2);
    }

    #[test]
    fn concurrent_exploration_yields_overlapping_histories() {
        let m = TestMatrix::from_columns(vec![vec![inv("inc")], vec![inv("get")]]);
        let mut overlapping = false;
        explore_matrix(&CounterTarget, &m, &Config::exhaustive(), |run| {
            assert!(run.history.is_well_formed());
            let h = &run.history;
            if h.ops.len() == 2 && h.overlapping(0, 1) {
                overlapping = true;
            }
            ControlFlow::Continue(())
        });
        assert!(overlapping, "phase 2 must produce overlapping operations");
    }

    #[test]
    fn init_ops_prepare_state_unrecorded() {
        let m = TestMatrix::from_columns(vec![vec![inv("get")]])
            .with_init(vec![inv("inc"), inv("inc")]);
        explore_matrix(&CounterTarget, &m, &Config::serial(), |run| {
            assert_eq!(run.history.ops.len(), 1, "init ops are not recorded");
            assert_eq!(run.history.ops[0].response, Some(Value::Int(2)));
            ControlFlow::Continue(())
        });
    }

    #[test]
    fn final_ops_run_after_everything() {
        let m = TestMatrix::from_columns(vec![vec![inv("inc")], vec![inv("inc")]])
            .with_finally(vec![inv("get")]);
        let stats = explore_matrix(&CounterTarget, &m, &Config::exhaustive(), |run| {
            if run.outcome == RunOutcome::Pruned {
                // Sleep-set pruned prefix: its history is partial.
                return ControlFlow::Continue(());
            }
            assert_eq!(run.outcome, RunOutcome::Complete);
            let h = &run.history;
            let get = h
                .ops
                .iter()
                .position(|o| o.invocation.name == "get")
                .unwrap();
            // The final get sees both increments in every schedule.
            assert_eq!(h.ops[get].response, Some(Value::Int(2)));
            assert_eq!(h.ops[get].thread, 2);
            // And is ordered after both incs.
            for i in 0..h.ops.len() {
                if i != get {
                    assert!(h.precedes(i, get));
                }
            }
            ControlFlow::Continue(())
        });
        assert!(stats.complete > 0);
    }

    #[test]
    fn replay_reproduces_a_recorded_run() {
        let m = TestMatrix::from_columns(vec![vec![inv("inc"), inv("get")], vec![inv("inc")]]);
        let mut recorded: Vec<MatrixRun> = Vec::new();
        explore_matrix(&CounterTarget, &m, &Config::preemption_bounded(2), |run| {
            recorded.push(run);
            if recorded.len() >= 5 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        for original in recorded {
            let replay = replay_matrix(&CounterTarget, &m, original.decisions.clone(), Some(2));
            assert_eq!(replay.history, original.history);
            assert_eq!(replay.outcome, original.outcome);
        }
    }

    #[test]
    fn thread_count_includes_finals_thread() {
        let m = TestMatrix::from_columns(vec![vec![inv("inc")]]).with_finally(vec![inv("get")]);
        explore_matrix(&CounterTarget, &m, &Config::serial(), |run| {
            assert_eq!(run.history.thread_count, 2);
            ControlFlow::Continue(())
        });
    }
}
