//! Histories: the formal objects of the paper's §2.1 and §2.3.
//!
//! An execution is a finite sequence of call and return events; a *stuck*
//! history additionally ends with the symbol `#`, meaning none of its
//! pending operations can complete (deadlock, livelock, divergence).

use crate::target::Invocation;
use crate::value::Value;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Index of an operation within a [`History`].
pub type OpIndex = usize;

/// One event of a history: a call or a return, referring to an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Event {
    /// Invocation of the operation with the given index.
    Call(OpIndex),
    /// Response of the operation with the given index.
    Return(OpIndex),
}

/// One operation of a history: an invocation and, if complete, the next
/// matching response (paper §2.1.3).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Operation {
    /// The thread performing the operation.
    pub thread: usize,
    /// The invocation (name and arguments).
    pub invocation: Invocation,
    /// The response value; `None` while pending.
    pub response: Option<Value>,
    /// Position of the call event in the event sequence.
    pub call_pos: usize,
    /// Position of the matching return event, if complete.
    pub return_pos: Option<usize>,
}

impl Operation {
    /// Whether the operation completed (has a response).
    pub fn is_complete(&self) -> bool {
        self.response.is_some()
    }
}

/// A (well-formed, single-object) history: a sequence of call/return
/// events, possibly stuck.
///
/// The paper's `H|t` (thread subhistory), `<H` (precedence order),
/// `complete(H)` and pending-call notions are all methods here.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct History {
    /// Number of threads of the test that produced this history.
    pub thread_count: usize,
    /// The operations, in call order.
    pub ops: Vec<Operation>,
    /// The event sequence.
    pub events: Vec<Event>,
    /// True when the history is stuck (ends with `#`): at least one
    /// pending operation that can never complete (paper §2.3).
    pub stuck: bool,
}

impl History {
    /// Builds a history incrementally; used by the harness recorder.
    pub fn new(thread_count: usize) -> Self {
        History {
            thread_count,
            ..History::default()
        }
    }

    /// Appends a call event, returning the new operation's index.
    pub fn push_call(&mut self, thread: usize, invocation: Invocation) -> OpIndex {
        let idx = self.ops.len();
        self.ops.push(Operation {
            thread,
            invocation,
            response: None,
            call_pos: self.events.len(),
            return_pos: None,
        });
        self.events.push(Event::Call(idx));
        idx
    }

    /// Appends the matching return event for `op`.
    ///
    /// # Panics
    ///
    /// Panics if the operation already returned.
    pub fn push_return(&mut self, op: OpIndex, response: Value) {
        assert!(self.ops[op].response.is_none(), "operation returned twice");
        self.ops[op].return_pos = Some(self.events.len());
        self.ops[op].response = Some(response);
        self.events.push(Event::Return(op));
    }

    /// Whether the history is complete: no pending calls (paper §2.1.1).
    pub fn is_complete(&self) -> bool {
        self.ops.iter().all(Operation::is_complete)
    }

    /// Indexes of the pending operations.
    pub fn pending_ops(&self) -> Vec<OpIndex> {
        (0..self.ops.len())
            .filter(|&i| !self.ops[i].is_complete())
            .collect()
    }

    /// Indexes of the complete operations.
    pub fn complete_ops(&self) -> Vec<OpIndex> {
        (0..self.ops.len())
            .filter(|&i| self.ops[i].is_complete())
            .collect()
    }

    /// The precedence order `<H` (paper §2.1.3): `e1 <H e2` iff the
    /// response of `e1` precedes the invocation of `e2` in the history.
    pub fn precedes(&self, e1: OpIndex, e2: OpIndex) -> bool {
        match self.ops[e1].return_pos {
            Some(r) => r < self.ops[e2].call_pos,
            None => false,
        }
    }

    /// Whether two operations overlap (neither precedes the other).
    pub fn overlapping(&self, e1: OpIndex, e2: OpIndex) -> bool {
        !self.precedes(e1, e2) && !self.precedes(e2, e1)
    }

    /// The thread subhistory `H|t`: this thread's operations in call order
    /// (which, by well-formedness, is also return order).
    pub fn thread_ops(&self, thread: usize) -> Vec<OpIndex> {
        (0..self.ops.len())
            .filter(|&i| self.ops[i].thread == thread)
            .collect()
    }

    /// Whether the history is serial: calls and returns alternate, each
    /// return matching the immediately preceding call (paper §2.1.1). A
    /// stuck serial history may end with one unmatched call.
    pub fn is_serial(&self) -> bool {
        let mut open: Option<OpIndex> = None;
        for ev in &self.events {
            match *ev {
                Event::Call(i) => {
                    if open.is_some() {
                        return false;
                    }
                    open = Some(i);
                }
                Event::Return(i) => {
                    if open != Some(i) {
                        return false;
                    }
                    open = None;
                }
            }
        }
        // A trailing open call is allowed only in stuck histories.
        open.is_none() || self.stuck
    }

    /// Whether the history is well-formed: per-thread subhistories are
    /// serial (paper §2.1.1).
    pub fn is_well_formed(&self) -> bool {
        (0..self.thread_count).all(|t| {
            let mut open = false;
            for ev in &self.events {
                let op = match *ev {
                    Event::Call(i) => i,
                    Event::Return(i) => i,
                };
                if self.ops[op].thread != t {
                    continue;
                }
                match *ev {
                    Event::Call(_) => {
                        if open {
                            return false;
                        }
                        open = true;
                    }
                    Event::Return(_) => {
                        if !open {
                            return false;
                        }
                        open = false;
                    }
                }
            }
            true
        })
    }

    /// Returns a copy of the history with the given operations removed,
    /// together with the index mapping (old op index → new op index).
    ///
    /// Used by the spurious-failure extension: an operation declared "may
    /// fail on interference" whose failed response overlaps another
    /// operation is deleted before witness search, implementing
    /// linearizability with respect to the specification closed under
    /// such spurious failures (the paper's future-work item on
    /// nondeterministic methods).
    pub fn without_ops(
        &self,
        remove: &std::collections::BTreeSet<OpIndex>,
    ) -> (History, Vec<Option<OpIndex>>) {
        let mut out = History::new(self.thread_count);
        out.stuck = self.stuck;
        let mut map: Vec<Option<OpIndex>> = vec![None; self.ops.len()];
        for ev in &self.events {
            match *ev {
                Event::Call(i) => {
                    if !remove.contains(&i) {
                        let new = out.push_call(self.ops[i].thread, self.ops[i].invocation.clone());
                        map[i] = Some(new);
                    }
                }
                Event::Return(i) => {
                    if let Some(new) = map[i] {
                        out.push_return(
                            new,
                            self.ops[i]
                                .response
                                .clone()
                                .expect("return event implies a response"),
                        );
                    }
                }
            }
        }
        (out, map)
    }

    /// Renders the interleaving in the paper's Fig. 7 notation: `i[` for
    /// the call and `]i` for the return of operation `i`, with operations
    /// numbered 1-based in thread-major order (thread A's operations
    /// first), a trailing `#` for stuck histories.
    pub fn interleaving_string(&self) -> String {
        let numbers = self.fig7_numbers();
        let mut out = String::new();
        for ev in &self.events {
            if !out.is_empty() {
                out.push(' ');
            }
            match *ev {
                Event::Call(i) => out.push_str(&format!("{}[", numbers[i])),
                Event::Return(i) => out.push_str(&format!("]{}", numbers[i])),
            }
        }
        if self.stuck {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push('#');
        }
        out
    }

    /// Operation numbers in the paper's Fig. 7 convention: 1-based,
    /// thread-major (all of thread 0's operations, then thread 1's, …).
    pub fn fig7_numbers(&self) -> Vec<usize> {
        let mut numbers = vec![0usize; self.ops.len()];
        let mut next = 1;
        for t in 0..self.thread_count {
            for i in self.thread_ops(t) {
                numbers[i] = next;
                next += 1;
            }
        }
        numbers
    }

    /// The thread label used in reports: A, B, C, … (paper Fig. 2).
    pub fn thread_label(thread: usize) -> String {
        let mut n = thread;
        let mut label = String::new();
        loop {
            label.insert(0, (b'A' + (n % 26) as u8) as char);
            if n < 26 {
                break;
            }
            n = n / 26 - 1;
        }
        label
    }
}

/// A sharded history-keyed verdict cache: the one duplicate-history cache
/// shared by phase-2 checking (`check`), the stress runner, and the
/// monitoring server's shards.
///
/// Callers key it on the *canonical* form of each history
/// ([`SymmetryGroups::canonicalize`](crate::SymmetryGroups::canonicalize)),
/// so a cached verdict covers the history's whole symmetry class: phase 2
/// computes one monitor verdict per class instead of one per renaming.
/// With empty symmetry groups canonicalization is the identity and the
/// cache degenerates to the raw duplicate-history cache the stress bin
/// originally grew.
///
/// Sharded by history hash so parallel workers rarely contend on one
/// mutex; single-threaded consumers simply use one shard. Hits (a `get`
/// that found an entry) are counted across all shards for the
/// `phase2_cache_hits` statistics.
#[derive(Debug)]
pub struct HistoryCache<V> {
    shards: Vec<Mutex<HashMap<History, V>>>,
    hits: AtomicU64,
}

impl<V: Clone> HistoryCache<V> {
    /// Shard count used by parallel consumers: comfortably more than the
    /// worker counts in play, so two workers rarely map to one mutex.
    pub const DEFAULT_SHARDS: usize = 16;

    /// Creates a cache with the given number of shards (at least 1).
    pub fn new(shards: usize) -> Self {
        HistoryCache {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            hits: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &History) -> &Mutex<HashMap<History, V>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    /// Looks up a verdict by (canonical) history key, counting a hit when
    /// one is found.
    pub fn get(&self, key: &History) -> Option<V> {
        let found = self
            .shard(key)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(key)
            .cloned();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Inserts a verdict unless another consumer beat us to it; returns
    /// the verdict now in the cache and whether this call inserted it.
    /// The first-wins discipline keeps concurrent workers agreeing on one
    /// verdict per class even if they raced to compute it.
    pub fn insert_if_absent(&self, key: &History, verdict: V) -> (V, bool) {
        let mut shard = self.shard(key).lock().unwrap_or_else(|e| e.into_inner());
        match shard.get(key) {
            Some(existing) => (existing.clone(), false),
            None => {
                shard.insert(key.clone(), verdict.clone());
                (verdict, true)
            }
        }
    }

    /// Total `get` hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of distinct (canonical) histories cached.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for ev in &self.events {
            match *ev {
                Event::Call(i) => {
                    let op = &self.ops[i];
                    writeln!(
                        f,
                        "(call  {} {})",
                        op.invocation,
                        History::thread_label(op.thread)
                    )?;
                }
                Event::Return(i) => {
                    let op = &self.ops[i];
                    writeln!(
                        f,
                        "(ret   {} = {} {})",
                        op.invocation,
                        op.response.as_ref().expect("returned op has response"),
                        History::thread_label(op.thread)
                    )?;
                }
            }
        }
        if self.stuck {
            writeln!(f, "#")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::Invocation;

    fn inv(name: &str) -> Invocation {
        Invocation::new(name)
    }

    /// Builds the Fig. 2 history of the paper:
    /// (c set(0) A)(c get B)(c ok A)(c inc A)(c ok(0) B)(c get B)(c ok A)(c ok(1) B)
    fn fig2_history() -> History {
        let mut h = History::new(2);
        let set0 = h.push_call(0, Invocation::with_int("set", 0));
        let get1 = h.push_call(1, inv("get"));
        h.push_return(set0, Value::Unit);
        let inc = h.push_call(0, inv("inc"));
        h.push_return(get1, Value::Int(0));
        let get2 = h.push_call(1, inv("get"));
        h.push_return(inc, Value::Unit);
        h.push_return(get2, Value::Int(1));
        h
    }

    #[test]
    fn fig2_is_well_formed_and_complete() {
        let h = fig2_history();
        assert!(h.is_well_formed());
        assert!(h.is_complete());
        assert!(!h.is_serial());
        assert_eq!(h.pending_ops(), Vec::<usize>::new());
        assert_eq!(h.complete_ops().len(), 4);
    }

    #[test]
    fn fig2_thread_subhistories() {
        let h = fig2_history();
        assert_eq!(h.thread_ops(0).len(), 2); // set(0), inc
        assert_eq!(h.thread_ops(1).len(), 2); // get, get
    }

    #[test]
    fn precedence_order() {
        let h = fig2_history();
        // set(0) returns before inc is called.
        assert!(h.precedes(0, 2));
        // set(0) overlaps the first get (call of get precedes return of set).
        assert!(h.overlapping(0, 1));
        // first get overlaps inc.
        assert!(h.overlapping(1, 2));
        // irreflexive
        assert!(!h.precedes(0, 0));
    }

    #[test]
    fn serial_history_recognized() {
        let mut h = History::new(2);
        let a = h.push_call(0, inv("inc"));
        h.push_return(a, Value::Unit);
        let b = h.push_call(1, inv("get"));
        h.push_return(b, Value::Int(1));
        assert!(h.is_serial());
        assert!(h.is_well_formed());
    }

    #[test]
    fn stuck_serial_history_allows_trailing_call() {
        let mut h = History::new(1);
        let a = h.push_call(0, inv("inc"));
        h.push_return(a, Value::Unit);
        h.push_call(0, inv("dec"));
        h.stuck = true;
        assert!(h.is_serial());
        assert!(!h.is_complete());
        assert_eq!(h.pending_ops(), vec![1]);
    }

    #[test]
    fn incomplete_nonstuck_is_not_serial() {
        let mut h = History::new(1);
        h.push_call(0, inv("inc"));
        assert!(!h.is_serial());
    }

    #[test]
    fn interleaving_string_fig7() {
        // Thread A: op1; thread B: op2. A calls, B calls, A returns, B returns.
        let mut h = History::new(2);
        let a = h.push_call(0, Invocation::with_int("Add", 200));
        let b = h.push_call(1, inv("TryTake"));
        h.push_return(a, Value::Unit);
        h.push_return(b, Value::Fail);
        assert_eq!(h.interleaving_string(), "1[ 2[ ]1 ]2");
    }

    #[test]
    fn interleaving_string_stuck() {
        let mut h = History::new(1);
        h.push_call(0, inv("Take"));
        h.stuck = true;
        assert_eq!(h.interleaving_string(), "1[ #");
    }

    #[test]
    fn fig7_numbers_are_thread_major() {
        // Thread B's op called first, but numbering is thread-major.
        let mut h = History::new(2);
        let b = h.push_call(1, inv("x"));
        h.push_return(b, Value::Unit);
        let a = h.push_call(0, inv("y"));
        h.push_return(a, Value::Unit);
        let numbers = h.fig7_numbers();
        assert_eq!(numbers[b], 2);
        assert_eq!(numbers[a], 1);
    }

    #[test]
    fn thread_labels() {
        assert_eq!(History::thread_label(0), "A");
        assert_eq!(History::thread_label(1), "B");
        assert_eq!(History::thread_label(25), "Z");
        assert_eq!(History::thread_label(26), "AA");
    }

    #[test]
    #[should_panic(expected = "returned twice")]
    fn double_return_panics() {
        let mut h = History::new(1);
        let a = h.push_call(0, inv("x"));
        h.push_return(a, Value::Unit);
        h.push_return(a, Value::Unit);
    }

    #[test]
    fn without_ops_removes_and_remaps() {
        // H: a (complete), b (complete), c (pending); drop b.
        let mut h = History::new(3);
        let a = h.push_call(0, inv("a"));
        let b = h.push_call(1, inv("b"));
        h.push_return(a, Value::Int(1));
        h.push_return(b, Value::Int(2));
        let _c = h.push_call(2, inv("c"));
        h.stuck = true;

        let mut remove = std::collections::BTreeSet::new();
        remove.insert(b);
        let (reduced, map) = h.without_ops(&remove);
        assert_eq!(reduced.ops.len(), 2);
        assert!(reduced.stuck);
        assert_eq!(map[a], Some(0));
        assert_eq!(map[b], None);
        assert_eq!(map[2], Some(1));
        assert!(reduced.is_well_formed());
        assert_eq!(reduced.ops[0].invocation.name, "a");
        assert_eq!(reduced.ops[1].invocation.name, "c");
        assert!(!reduced.ops[1].is_complete());
    }

    #[test]
    fn without_ops_preserves_event_order() {
        // Overlap: a calls, b calls, a returns, b returns; drop a.
        let mut h = History::new(2);
        let a = h.push_call(0, inv("a"));
        let b = h.push_call(1, inv("b"));
        h.push_return(a, Value::Unit);
        h.push_return(b, Value::Unit);
        let mut remove = std::collections::BTreeSet::new();
        remove.insert(a);
        let (reduced, _) = h.without_ops(&remove);
        assert_eq!(reduced.events.len(), 2);
        assert!(reduced.is_serial());
    }

    #[test]
    fn without_empty_set_is_identity() {
        let h = fig2_history();
        let (same, map) = h.without_ops(&std::collections::BTreeSet::new());
        assert_eq!(same, h);
        assert!(map.iter().enumerate().all(|(i, m)| *m == Some(i)));
    }

    #[test]
    fn history_cache_counts_hits_and_first_insert_wins() {
        let cache: HistoryCache<bool> = HistoryCache::new(4);
        let mut h = History::new(1);
        let a = h.push_call(0, inv("x"));
        h.push_return(a, Value::Unit);
        assert!(cache.is_empty());
        assert_eq!(cache.get(&h), None);
        assert_eq!(cache.hits(), 0, "a miss is not a hit");
        let (v, inserted) = cache.insert_if_absent(&h, true);
        assert!(v && inserted);
        let (v, inserted) = cache.insert_if_absent(&h, false);
        assert!(v, "first verdict wins");
        assert!(!inserted);
        assert_eq!(cache.get(&h), Some(true));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn history_cache_distinguishes_histories() {
        let cache: HistoryCache<u32> = HistoryCache::new(1);
        let mut h1 = History::new(1);
        let a = h1.push_call(0, inv("x"));
        h1.push_return(a, Value::Int(1));
        let mut h2 = History::new(1);
        let a = h2.push_call(0, inv("x"));
        h2.push_return(a, Value::Int(2));
        cache.insert_if_absent(&h1, 10);
        cache.insert_if_absent(&h2, 20);
        assert_eq!(cache.get(&h1), Some(10));
        assert_eq!(cache.get(&h2), Some(20));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn display_renders_events() {
        let h = fig2_history();
        let s = h.to_string();
        assert!(s.contains("(call  set(0) A)"));
        assert!(s.contains("(ret   get() = 1 B)"));
    }
}
