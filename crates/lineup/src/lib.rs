//! **Line-Up**: a complete and automatic checker for *deterministic
//! linearizability*, reproducing Burckhardt, Dern, Musuvathi, Tan,
//! PLDI 2010.
//!
//! A concurrent component is linearizable when its operations, called
//! concurrently, appear to take effect instantaneously between their call
//! and return. Line-Up checks the stronger property of *deterministic
//! linearizability* — linearizability with respect to **some**
//! deterministic sequential specification — fully automatically:
//!
//! 1. **Phase 1** runs the component's own operations *serially*, in all
//!    orders, recording every serial history. For a deterministically
//!    linearizable component this synthesizes exactly its specification
//!    (Lemma 9), so no hand-written spec is needed.
//! 2. **Phase 2** enumerates the *concurrent* schedules of the same test
//!    with a stateless model checker and checks that every observed
//!    history has a *serial witness* among the phase-1 observations —
//!    including *stuck* histories, whose pending operations must be
//!    justified by serial executions that block in the same way
//!    (generalized linearizability, §2.3; this is what catches lost-wakeup
//!    bugs like the paper's Fig. 9).
//!
//! Any violation reported is a proof that the component is not
//! linearizable with respect to **any** deterministic sequential
//! specification (Theorem 5): there are no false alarms.
//!
//! # Quick start
//!
//! ```
//! use lineup::{check, CheckOptions, Invocation, TestMatrix};
//! use lineup::doc_support::CounterTarget;
//!
//! // Specify what to test: a matrix of invocations (one column per thread).
//! let m = TestMatrix::from_columns(vec![
//!     vec![Invocation::new("inc")],
//!     vec![Invocation::new("inc"), Invocation::new("get")],
//! ]);
//! // Check it. This enumerates all serial and concurrent executions.
//! let report = check(&CounterTarget, &m, &CheckOptions::new());
//! assert!(report.passed());
//! ```
//!
//! To test your own component, implement [`TestTarget`]/[`TestInstance`]
//! against the `lineup-sync` primitives; see `examples/custom_register.rs`
//! in the repository for a complete walk-through, and the
//! `lineup-collections` crate for thirteen full-size subjects.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adt;
pub mod auto;
pub mod check;
pub mod erased;
pub mod harness;
pub mod history;
pub mod macros;
pub mod matrix;
pub mod observation;
pub mod report;
pub mod shrink;
pub mod spec;
pub mod target;
pub mod value;
pub mod witness;

pub use adt::{AdtKind, FallbackReason, MonitorPathStats};
pub use auto::{
    auto_check, random_check, random_check_parallel, AutoCheckLimits, RandomCheckConfig,
    RandomCheckResult,
};
pub use check::{
    check, check_against_spec, synthesize_spec, CheckOptions, CheckReport, HistoryMonitor,
    MonitorHandle, PhaseStats, Violation,
};
pub use erased::ErasedTarget;
pub use harness::{explore_matrix, explore_matrix_with_strategy, replay_matrix, MatrixRun};
pub use history::{Event, History, HistoryCache, OpIndex, Operation};
pub use lineup_sched::Backend;
pub use matrix::{SymmetryGroups, TestMatrix};
pub use observation::{parse_observation_file, write_observation_file};
pub use report::render_violation;
pub use shrink::shrink_failing_test;
pub use spec::{Nondeterminism, ObservationSet, Outcome, SerialHistory, SpecOp};
pub use target::{Invocation, SymmetryPolicy, TestInstance, TestTarget};
pub use value::Value;
pub use witness::{find_witness, is_witness, WitnessQuery};

/// Tiny reference targets used by documentation examples and doctests.
///
/// Real subjects live in the `lineup-collections` crate; these exist so
/// the doctests of this crate are self-contained.
pub mod doc_support {
    use crate::target::{Invocation, TestInstance, TestTarget};
    use crate::value::Value;
    use lineup_sync::Atomic;

    /// A correct atomic counter supporting `inc` and `get`.
    #[derive(Debug, Default)]
    pub struct CounterTarget;

    /// Instance type of [`CounterTarget`].
    #[derive(Debug)]
    pub struct CounterInstance {
        count: Atomic<i64>,
    }

    impl TestInstance for CounterInstance {
        fn invoke(&self, inv: &Invocation) -> Value {
            match inv.name.as_str() {
                "inc" => {
                    self.count.fetch_add(1);
                    Value::Unit
                }
                "get" => Value::Int(self.count.load()),
                other => panic!("unknown operation {other}"),
            }
        }
    }

    impl TestTarget for CounterTarget {
        type Instance = CounterInstance;
        fn name(&self) -> &str {
            "Counter"
        }
        fn create(&self) -> CounterInstance {
            CounterInstance {
                count: Atomic::new(0),
            }
        }
        fn invocations(&self) -> Vec<Invocation> {
            vec![Invocation::new("inc"), Invocation::new("get")]
        }
    }

    /// A buggy counter whose `inc` is a non-atomic read-modify-write — the
    /// paper's `Counter1` (§2.2.1). Line-Up detects it.
    #[derive(Debug, Default)]
    pub struct BuggyCounterTarget;

    /// Instance type of [`BuggyCounterTarget`].
    #[derive(Debug)]
    pub struct BuggyCounterInstance {
        count: Atomic<i64>,
    }

    impl TestInstance for BuggyCounterInstance {
        fn invoke(&self, inv: &Invocation) -> Value {
            match inv.name.as_str() {
                "inc" => {
                    // Unsynchronized: count = count + 1.
                    let v = self.count.load();
                    self.count.store(v + 1);
                    Value::Unit
                }
                "get" => Value::Int(self.count.load()),
                other => panic!("unknown operation {other}"),
            }
        }
    }

    impl TestTarget for BuggyCounterTarget {
        type Instance = BuggyCounterInstance;
        fn name(&self) -> &str {
            "Counter1 (buggy)"
        }
        fn create(&self) -> BuggyCounterInstance {
            BuggyCounterInstance {
                count: Atomic::new(0),
            }
        }
        fn invocations(&self) -> Vec<Invocation> {
            vec![Invocation::new("inc"), Invocation::new("get")]
        }
    }
}
