//! The [`define_target!`](crate::define_target) convenience macro.

/// Declares a [`TestTarget`](crate::TestTarget) (and the matching
/// [`TestInstance`](crate::TestInstance) impl) for a component type,
/// replacing the dispatch boilerplate of hand-written adapters.
///
/// The syntax mirrors the expanded items: a struct declaration, the
/// constructor expression, the invocation catalog, and a `match`-style
/// dispatch over `(name, args)` pairs.
///
/// ```
/// use lineup::{check, define_target, CheckOptions, Invocation, TestMatrix, Value};
/// use lineup_sync::Atomic;
///
/// pub struct Register {
///     cell: Atomic<i64>,
/// }
///
/// define_target! {
///     /// A test target over `Register`.
///     pub struct RegisterTarget("Register") for Register {
///         create: Register { cell: Atomic::new(0) },
///         catalog: [
///             Invocation::with_int("write", 7),
///             Invocation::new("read"),
///         ],
///         invoke(this, name, args) {
///             ("write", [Value::Int(x)]) => {
///                 this.cell.store(*x);
///                 Value::Unit
///             },
///             ("read", _) => Value::Int(this.cell.load()),
///         }
///     }
/// }
///
/// let m = TestMatrix::from_columns(vec![
///     vec![Invocation::with_int("write", 7)],
///     vec![Invocation::new("read")],
/// ]);
/// assert!(check(&RegisterTarget, &m, &CheckOptions::new()).passed());
/// ```
///
/// Unknown operations panic (and are reported by Line-Up as violations),
/// matching the behaviour of hand-written adapters.
#[macro_export]
macro_rules! define_target {
    (
        $(#[$meta:meta])*
        $vis:vis struct $target:ident ( $display_name:expr ) for $instance:ty {
            create: $create:expr,
            catalog: [ $( $inv:expr ),* $(,)? ],
            invoke($self_:ident, $name:ident, $args:ident) {
                $( ($op:pat, $argpat:pat) => $body:expr ),+ $(,)?
            }
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy)]
        $vis struct $target;

        impl $crate::TestInstance for $instance {
            fn invoke(&self, invocation: &$crate::Invocation) -> $crate::Value {
                let $self_ = self;
                let $name = invocation.name.as_str();
                let $args = invocation.args.as_slice();
                match ($name, $args) {
                    $( ($op, $argpat) => $body, )+
                    (other, _) => panic!(
                        "{}: unknown operation {other}",
                        $display_name
                    ),
                }
            }
        }

        impl $crate::TestTarget for $target {
            type Instance = $instance;

            fn name(&self) -> &str {
                $display_name
            }

            fn create(&self) -> $instance {
                $create
            }

            fn invocations(&self) -> Vec<$crate::Invocation> {
                vec![ $( $inv ),* ]
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::{check, CheckOptions, Invocation, TestMatrix, TestTarget, Value};
    use lineup_sync::Atomic;

    struct MacroCounter {
        count: Atomic<i64>,
    }

    define_target! {
        // Declared entirely through the macro.
        struct MacroCounterTarget("MacroCounter") for MacroCounter {
            create: MacroCounter { count: Atomic::new(0) },
            catalog: [Invocation::new("inc"), Invocation::new("get")],
            invoke(this, name, args) {
                ("inc", _) => {
                    this.count.fetch_add(1);
                    Value::Unit
                },
                ("get", []) => Value::Int(this.count.load()),
            }
        }
    }

    #[test]
    fn macro_target_is_checkable() {
        let m = TestMatrix::from_columns(vec![
            vec![Invocation::new("inc"), Invocation::new("get")],
            vec![Invocation::new("inc")],
        ]);
        let report = check(&MacroCounterTarget, &m, &CheckOptions::new());
        assert!(report.passed(), "{:?}", report.violations);
        assert_eq!(MacroCounterTarget.name(), "MacroCounter");
        assert_eq!(MacroCounterTarget.invocations().len(), 2);
    }

    #[test]
    fn macro_works_in_function_scope() {
        struct Local {
            v: Atomic<i64>,
        }
        define_target! {
            struct LocalTarget("Local") for Local {
                create: Local { v: Atomic::new(1) },
                catalog: [Invocation::new("get")],
                invoke(this, name, args) {
                    ("get", _) => Value::Int(this.v.load()),
                }
            }
        }
        let m = TestMatrix::from_columns(vec![vec![Invocation::new("get")]]);
        assert!(check(&LocalTarget, &m, &CheckOptions::new()).passed());
    }
}
