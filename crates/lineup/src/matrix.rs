//! Finite tests, represented as matrices of invocations (paper §3.1).

use crate::target::Invocation;
use std::fmt;

/// A finite test: a map from threads to invocation sequences, thought of
/// as a matrix whose columns are threads (paper §3.1).
///
/// Optionally carries an *init sequence* — operations performed on the
/// fresh instance before the concurrent part, to prepare its state — and a
/// *final sequence* — operations performed by a dedicated thread after all
/// test threads have finished, to observe the final state (paper §4.3:
/// "initial and final sequences of operations to perform before and after
/// each test").
///
/// # Example
///
/// ```
/// use lineup::{Invocation, TestMatrix};
///
/// // The Fig. 1 test of the paper:
/// //   Thread 1: Add(200); Add(400)     Thread 2: TryTake; TryTake
/// let m = TestMatrix::from_rows(vec![
///     vec![Invocation::with_int("Add", 200), Invocation::new("TryTake")],
///     vec![Invocation::with_int("Add", 400), Invocation::new("TryTake")],
/// ]);
/// assert_eq!(m.thread_count(), 2);
/// assert_eq!(m.operation_count(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TestMatrix {
    /// One invocation sequence per thread (matrix columns).
    pub columns: Vec<Vec<Invocation>>,
    /// Operations run before the concurrent part (not part of histories).
    pub init: Vec<Invocation>,
    /// Operations run by an extra thread after all columns finish
    /// (recorded in histories, totally ordered after everything).
    pub finally: Vec<Invocation>,
}

impl TestMatrix {
    /// Creates a test from its columns (one invocation sequence per
    /// thread).
    pub fn from_columns(columns: Vec<Vec<Invocation>>) -> Self {
        TestMatrix {
            columns,
            init: Vec::new(),
            finally: Vec::new(),
        }
    }

    /// Creates a test from its rows: `rows[r][c]` is the `r`-th invocation
    /// of thread `c`. All rows must have the same length. This matches the
    /// matrix notation of §3.1.
    ///
    /// # Panics
    ///
    /// Panics if the rows are ragged.
    pub fn from_rows(rows: Vec<Vec<Invocation>>) -> Self {
        if rows.is_empty() {
            return TestMatrix::default();
        }
        let width = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == width),
            "ragged rows in test matrix"
        );
        let mut columns = vec![Vec::with_capacity(rows.len()); width];
        for row in rows {
            for (c, inv) in row.into_iter().enumerate() {
                columns[c].push(inv);
            }
        }
        TestMatrix::from_columns(columns)
    }

    /// Sets the init sequence, builder style.
    pub fn with_init(mut self, init: Vec<Invocation>) -> Self {
        self.init = init;
        self
    }

    /// Sets the final sequence, builder style.
    pub fn with_finally(mut self, finally: Vec<Invocation>) -> Self {
        self.finally = finally;
        self
    }

    /// Number of threads (columns).
    pub fn thread_count(&self) -> usize {
        self.columns.len()
    }

    /// Total number of operations in the concurrent part.
    pub fn operation_count(&self) -> usize {
        self.columns.iter().map(Vec::len).sum()
    }

    /// The dimension `rows × columns` as reported in the paper's Table 2
    /// (maximum column length × number of columns).
    pub fn dimension(&self) -> (usize, usize) {
        (
            self.columns.iter().map(Vec::len).max().unwrap_or(0),
            self.columns.len(),
        )
    }

    /// Whether `self` is a prefix of `other`: every thread's sequence in
    /// `self` is a prefix of the same thread's sequence in `other`
    /// (paper §3.1). Init/final sequences must match exactly.
    pub fn is_prefix_of(&self, other: &TestMatrix) -> bool {
        if self.init != other.init || self.finally != other.finally {
            return false;
        }
        if self.columns.len() > other.columns.len() {
            return false;
        }
        self.columns
            .iter()
            .enumerate()
            .all(|(i, col)| other.columns[i].starts_with(col))
    }

    /// Enumerates all `rows × cols` matrices with entries drawn from
    /// `invocations` — the set `M(I, p×q)` of §3.1, used by `AutoCheck`.
    /// The result has `|I|^(rows*cols)` elements; keep the inputs small.
    pub fn enumerate(invocations: &[Invocation], rows: usize, cols: usize) -> Vec<TestMatrix> {
        let cells = rows * cols;
        if invocations.is_empty() || cells == 0 {
            return vec![TestMatrix::from_columns(vec![Vec::new(); cols])];
        }
        let mut out = Vec::new();
        let mut indexes = vec![0usize; cells];
        loop {
            let mut columns = vec![Vec::with_capacity(rows); cols];
            for (cell, &inv_idx) in indexes.iter().enumerate() {
                columns[cell % cols].push(invocations[inv_idx].clone());
            }
            out.push(TestMatrix::from_columns(columns));
            // Odometer increment.
            let mut i = 0;
            loop {
                if i == cells {
                    return out;
                }
                indexes[i] += 1;
                if indexes[i] < invocations.len() {
                    break;
                }
                indexes[i] = 0;
                i += 1;
            }
        }
    }
}

impl fmt::Display for TestMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.init.is_empty() {
            write!(f, "init:")?;
            for inv in &self.init {
                write!(f, " {inv}")?;
            }
            writeln!(f)?;
        }
        let (rows, cols) = self.dimension();
        for r in 0..rows {
            for c in 0..cols {
                if c > 0 {
                    write!(f, " | ")?;
                }
                match self.columns[c].get(r) {
                    Some(inv) => write!(f, "{inv:<16}")?,
                    None => write!(f, "{:<16}", "")?,
                }
            }
            writeln!(f)?;
        }
        if !self.finally.is_empty() {
            write!(f, "finally:")?;
            for inv in &self.finally {
                write!(f, " {inv}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv(name: &str) -> Invocation {
        Invocation::new(name)
    }

    #[test]
    fn from_rows_transposes() {
        let m = TestMatrix::from_rows(vec![vec![inv("a"), inv("b")], vec![inv("c"), inv("d")]]);
        assert_eq!(m.columns[0], vec![inv("a"), inv("c")]);
        assert_eq!(m.columns[1], vec![inv("b"), inv("d")]);
        assert_eq!(m.dimension(), (2, 2));
        assert_eq!(m.operation_count(), 4);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        TestMatrix::from_rows(vec![vec![inv("a")], vec![inv("b"), inv("c")]]);
    }

    #[test]
    fn prefix_order() {
        let small = TestMatrix::from_columns(vec![vec![inv("a")], vec![]]);
        let big = TestMatrix::from_columns(vec![vec![inv("a"), inv("b")], vec![inv("c")]]);
        assert!(small.is_prefix_of(&big));
        assert!(!big.is_prefix_of(&small));
        assert!(small.is_prefix_of(&small));
        // Fewer columns is fine (missing columns are empty sequences).
        let one_col = TestMatrix::from_columns(vec![vec![inv("a")]]);
        assert!(one_col.is_prefix_of(&big));
    }

    #[test]
    fn prefix_requires_matching_init() {
        let a = TestMatrix::from_columns(vec![vec![inv("a")]]);
        let b = a.clone().with_init(vec![inv("i")]);
        assert!(!a.is_prefix_of(&b));
        assert!(b.is_prefix_of(&b));
    }

    #[test]
    fn enumerate_counts() {
        let invs = vec![inv("x"), inv("y")];
        // 2 invocations, 2x2 matrix: 2^4 = 16 tests.
        assert_eq!(TestMatrix::enumerate(&invs, 2, 2).len(), 16);
        // 3 invocations, 1x1: 3 tests.
        assert_eq!(
            TestMatrix::enumerate(&[inv("a"), inv("b"), inv("c")], 1, 1).len(),
            3
        );
    }

    #[test]
    fn enumerate_shapes() {
        let invs = vec![inv("x")];
        let ms = TestMatrix::enumerate(&invs, 3, 2);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].dimension(), (3, 2));
        assert_eq!(ms[0].operation_count(), 6);
    }

    #[test]
    fn display_is_tabular() {
        let m = TestMatrix::from_rows(vec![vec![
            Invocation::with_int("Add", 200),
            Invocation::new("TryTake"),
        ]]);
        let s = m.to_string();
        assert!(s.contains("Add(200)"));
        assert!(s.contains(" | "));
        assert!(s.contains("TryTake()"));
    }
}
