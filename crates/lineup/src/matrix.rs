//! Finite tests, represented as matrices of invocations (paper §3.1),
//! and the thread-symmetry structure of a test (its interchangeable
//! columns), which drives both schedule pruning in phase 2 exploration
//! and canonical history deduplication in phase 2 checking.

use crate::history::{Event, History};
use crate::target::{Invocation, SymmetryPolicy};
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;

/// A finite test: a map from threads to invocation sequences, thought of
/// as a matrix whose columns are threads (paper §3.1).
///
/// Optionally carries an *init sequence* — operations performed on the
/// fresh instance before the concurrent part, to prepare its state — and a
/// *final sequence* — operations performed by a dedicated thread after all
/// test threads have finished, to observe the final state (paper §4.3:
/// "initial and final sequences of operations to perform before and after
/// each test").
///
/// # Example
///
/// ```
/// use lineup::{Invocation, TestMatrix};
///
/// // The Fig. 1 test of the paper:
/// //   Thread 1: Add(200); Add(400)     Thread 2: TryTake; TryTake
/// let m = TestMatrix::from_rows(vec![
///     vec![Invocation::with_int("Add", 200), Invocation::new("TryTake")],
///     vec![Invocation::with_int("Add", 400), Invocation::new("TryTake")],
/// ]);
/// assert_eq!(m.thread_count(), 2);
/// assert_eq!(m.operation_count(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TestMatrix {
    /// One invocation sequence per thread (matrix columns).
    pub columns: Vec<Vec<Invocation>>,
    /// Operations run before the concurrent part (not part of histories).
    pub init: Vec<Invocation>,
    /// Operations run by an extra thread after all columns finish
    /// (recorded in histories, totally ordered after everything).
    pub finally: Vec<Invocation>,
}

impl TestMatrix {
    /// Creates a test from its columns (one invocation sequence per
    /// thread).
    pub fn from_columns(columns: Vec<Vec<Invocation>>) -> Self {
        TestMatrix {
            columns,
            init: Vec::new(),
            finally: Vec::new(),
        }
    }

    /// Creates a test from its rows: `rows[r][c]` is the `r`-th invocation
    /// of thread `c`. All rows must have the same length. This matches the
    /// matrix notation of §3.1.
    ///
    /// # Panics
    ///
    /// Panics if the rows are ragged.
    pub fn from_rows(rows: Vec<Vec<Invocation>>) -> Self {
        if rows.is_empty() {
            return TestMatrix::default();
        }
        let width = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == width),
            "ragged rows in test matrix"
        );
        let mut columns = vec![Vec::with_capacity(rows.len()); width];
        for row in rows {
            for (c, inv) in row.into_iter().enumerate() {
                columns[c].push(inv);
            }
        }
        TestMatrix::from_columns(columns)
    }

    /// Sets the init sequence, builder style.
    pub fn with_init(mut self, init: Vec<Invocation>) -> Self {
        self.init = init;
        self
    }

    /// Sets the final sequence, builder style.
    pub fn with_finally(mut self, finally: Vec<Invocation>) -> Self {
        self.finally = finally;
        self
    }

    /// Number of threads (columns).
    pub fn thread_count(&self) -> usize {
        self.columns.len()
    }

    /// Total number of operations in the concurrent part.
    pub fn operation_count(&self) -> usize {
        self.columns.iter().map(Vec::len).sum()
    }

    /// The dimension `rows × columns` as reported in the paper's Table 2
    /// (maximum column length × number of columns).
    pub fn dimension(&self) -> (usize, usize) {
        (
            self.columns.iter().map(Vec::len).max().unwrap_or(0),
            self.columns.len(),
        )
    }

    /// Whether `self` is a prefix of `other`: every thread's sequence in
    /// `self` is a prefix of the same thread's sequence in `other`
    /// (paper §3.1). Init/final sequences must match exactly.
    pub fn is_prefix_of(&self, other: &TestMatrix) -> bool {
        if self.init != other.init || self.finally != other.finally {
            return false;
        }
        if self.columns.len() > other.columns.len() {
            return false;
        }
        self.columns
            .iter()
            .enumerate()
            .all(|(i, col)| other.columns[i].starts_with(col))
    }

    /// Enumerates all `rows × cols` matrices with entries drawn from
    /// `invocations` — the set `M(I, p×q)` of §3.1, used by `AutoCheck`.
    /// The result has `|I|^(rows*cols)` elements; keep the inputs small.
    pub fn enumerate(invocations: &[Invocation], rows: usize, cols: usize) -> Vec<TestMatrix> {
        let cells = rows * cols;
        if invocations.is_empty() || cells == 0 {
            return vec![TestMatrix::from_columns(vec![Vec::new(); cols])];
        }
        let mut out = Vec::new();
        let mut indexes = vec![0usize; cells];
        loop {
            let mut columns = vec![Vec::with_capacity(rows); cols];
            for (cell, &inv_idx) in indexes.iter().enumerate() {
                columns[cell % cols].push(invocations[inv_idx].clone());
            }
            out.push(TestMatrix::from_columns(columns));
            // Odometer increment.
            let mut i = 0;
            loop {
                if i == cells {
                    return out;
                }
                indexes[i] += 1;
                if indexes[i] < invocations.len() {
                    break;
                }
                indexes[i] = 0;
                i += 1;
            }
        }
    }
}

/// The thread-symmetry structure of a test: maximal sets of columns whose
/// invocation sequences are identical up to value renaming (computed by
/// [`TestMatrix::symmetry_groups`]).
///
/// Two uses. [`SymmetryGroups::masks`] feeds phase-1 schedule pruning
/// (`lineup_sched::Config::with_symmetry`): among never-started threads of
/// one group only the lowest-indexed may be scheduled first, because the
/// skipped orders produce renamings of explored histories.
/// [`SymmetryGroups::canonicalize`] keys phase-2 verdict caching: renaming
/// a history's group threads into first-appearance order (and their
/// distinguished argument values along with them) maps every member of a
/// symmetry class to the same canonical history, so one monitor verdict
/// covers the whole class.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SymmetryGroups {
    /// Member column indices per group, sorted ascending, each of size
    /// ≥ 2; groups are pairwise disjoint.
    groups: Vec<Vec<usize>>,
    /// Flattened argument values per group member (parallel to `groups`,
    /// same member order): `member_args[g][k]` are the arguments of column
    /// `groups[g][k]` in operation order. Positionwise pairing of two
    /// members' lists defines the value renaming that accompanies
    /// swapping them.
    member_args: Vec<Vec<Vec<Value>>>,
}

impl SymmetryGroups {
    /// True when no symmetry was detected (or the policy disabled it):
    /// canonicalization is the identity and no schedules are pruned.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Member column indices per group (sorted, disjoint, size ≥ 2).
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }

    /// The groups as thread bitmasks, the form
    /// `lineup_sched::Config::with_symmetry` takes. Detection caps tests
    /// at 64 columns, so every member index fits a `u64`.
    pub fn masks(&self) -> Vec<u64> {
        self.groups
            .iter()
            .map(|g| g.iter().fold(0u64, |m, &t| m | (1u64 << t)))
            .collect()
    }

    /// Canonicalizes a history under the group action: within each group,
    /// threads are renamed so that the order of their first appearance in
    /// the history matches member (index) order, and each renamed thread's
    /// distinguished argument values are renamed along with it (responses
    /// are rewritten recursively, so a payload value surfacing inside a
    /// `Seq`/`Opt` response is renamed wherever it appears). Two histories
    /// have equal canonical forms iff one is the image of the other under
    /// a permutation of group members — so the canonical form is a correct
    /// cache key for any property invariant under such renaming
    /// (linearizability verdicts in particular).
    ///
    /// On histories produced by an exploration whose symmetry pruning was
    /// active this is the identity (pruning only admits first-appearance
    /// order); it does real work on histories from preemption-bounded or
    /// sampled explorations, where pruning is disengaged.
    pub fn canonicalize(&self, h: &History) -> History {
        if self.groups.is_empty() {
            return h.clone();
        }
        // Thread permutation: per group, the members in order of first
        // appearance (never-appearing members last, in index order) are
        // mapped onto the members in index order.
        let mut perm: Vec<usize> = (0..h.thread_count).collect();
        let mut vmap: HashMap<Value, Value> = HashMap::new();
        let mut appeared: Vec<usize> = Vec::new();
        for (g, members) in self.groups.iter().enumerate() {
            if members.iter().any(|&m| m >= h.thread_count) {
                continue; // foreign history; leave this group alone
            }
            appeared.clear();
            for op in &h.ops {
                if members.contains(&op.thread) && !appeared.contains(&op.thread) {
                    appeared.push(op.thread);
                }
            }
            for &m in members {
                if !appeared.contains(&m) {
                    appeared.push(m);
                }
            }
            for (k, &old) in appeared.iter().enumerate() {
                perm[old] = members[k];
                if old != members[k] {
                    let old_pos = members.iter().position(|&m| m == old).expect("member");
                    for (ov, nv) in self.member_args[g][old_pos]
                        .iter()
                        .zip(&self.member_args[g][k])
                    {
                        if ov != nv {
                            vmap.insert(ov.clone(), nv.clone());
                        }
                    }
                }
            }
        }
        if perm.iter().enumerate().all(|(i, &p)| i == p) {
            return h.clone(); // already canonical; skip the rebuild
        }
        let mut out = History::new(h.thread_count);
        out.stuck = h.stuck;
        for ev in &h.events {
            match *ev {
                Event::Call(i) => {
                    let op = &h.ops[i];
                    let invocation = Invocation {
                        name: op.invocation.name.clone(),
                        args: op
                            .invocation
                            .args
                            .iter()
                            .map(|a| map_value(a, &vmap))
                            .collect(),
                    };
                    let new = out.push_call(perm[op.thread], invocation);
                    debug_assert_eq!(new, i, "events preserve op numbering");
                }
                Event::Return(i) => {
                    let resp = h.ops[i].response.as_ref().expect("returned op");
                    out.push_return(i, map_value(resp, &vmap));
                }
            }
        }
        out
    }
}

/// Applies a leaf-value renaming recursively: exact matches are replaced,
/// containers are rewritten element-wise. The renaming only ever contains
/// leaf values (detection rejects container-valued distinguished
/// arguments), so exact-match-then-recurse cannot double-rename.
fn map_value(v: &Value, vmap: &HashMap<Value, Value>) -> Value {
    if vmap.is_empty() {
        return v.clone();
    }
    if let Some(m) = vmap.get(v) {
        return m.clone();
    }
    match v {
        Value::Seq(items) => Value::Seq(items.iter().map(|x| map_value(x, vmap)).collect()),
        Value::Opt(Some(inner)) => Value::Opt(Some(Box::new(map_value(inner, vmap)))),
        _ => v.clone(),
    }
}

/// Counts every value node (including nested ones) in all argument
/// positions of the matrix: init, every column, and the final sequence.
/// A value with total count 1 occurs in exactly one place, which is what
/// lets symmetry detection rename it freely.
fn count_value_nodes(m: &TestMatrix, counts: &mut HashMap<Value, usize>) {
    fn walk(v: &Value, counts: &mut HashMap<Value, usize>) {
        *counts.entry(v.clone()).or_insert(0) += 1;
        match v {
            Value::Seq(items) => items.iter().for_each(|x| walk(x, counts)),
            Value::Opt(Some(inner)) => walk(inner, counts),
            _ => {}
        }
    }
    let all = m
        .init
        .iter()
        .chain(m.columns.iter().flatten())
        .chain(m.finally.iter());
    for inv in all {
        for a in &inv.args {
            walk(a, counts);
        }
    }
}

impl TestMatrix {
    /// Maximum number of columns for which symmetry detection runs:
    /// groups are consumed as `u64` bitmasks by the scheduler, matching
    /// its own partial-order-reduction thread cap.
    const MAX_SYMMETRY_THREADS: usize = 64;

    /// Computes the thread-symmetry groups of this test under the
    /// target's [`SymmetryPolicy`]: maximal disjoint sets of columns
    /// interchangeable up to value renaming (see [`SymmetryGroups`]).
    ///
    /// Detection proceeds in two steps. Columns are first partitioned by
    /// *shape*: the sequence of operation names and arities, plus the
    /// equality pattern of their argument values (each value abstracted to
    /// the position of its first occurrence in the column). Under
    /// [`SymmetryPolicy::ThreadsOnly`], each shape class is then split
    /// into literal-equality groups — columns with identical invocation
    /// sequences, interchangeable with no value renaming at all. Under
    /// [`SymmetryPolicy::Full`], a whole shape class forms one group when
    /// every argument row across its members is either all-equal (the
    /// value is shared and stays fixed) or pairwise-distinct *leaf*
    /// values each occurring exactly once in the entire matrix (the value
    /// is private to its position and renames freely — occurring anywhere
    /// else, including nested in a `Seq`/`Opt` argument, would make the
    /// renaming observable outside the swapped columns). Classes failing
    /// the check fall back to literal-equality grouping, which is always
    /// sound.
    ///
    /// Returns the empty structure under [`SymmetryPolicy::Disabled`],
    /// for single-column tests, and beyond
    /// [`Self::MAX_SYMMETRY_THREADS`] columns.
    pub fn symmetry_groups(&self, policy: SymmetryPolicy) -> SymmetryGroups {
        if policy == SymmetryPolicy::Disabled
            || self.columns.len() < 2
            || self.columns.len() > Self::MAX_SYMMETRY_THREADS
        {
            return SymmetryGroups::default();
        }

        // Shape signature: operation names/arities + argument equality
        // pattern (values abstracted to first-occurrence positions).
        let shape_of = |col: &[Invocation]| -> (Vec<(String, usize)>, Vec<usize>) {
            let ops = col.iter().map(|i| (i.name.clone(), i.args.len())).collect();
            let flat: Vec<&Value> = col.iter().flat_map(|i| i.args.iter()).collect();
            let pattern = flat
                .iter()
                .map(|v| flat.iter().position(|w| w == v).expect("self"))
                .collect();
            (ops, pattern)
        };
        let flat_args = |col: &[Invocation]| -> Vec<Value> {
            col.iter().flat_map(|i| i.args.clone()).collect()
        };

        // Shape class: (op names/arities, value pattern, member columns).
        type ShapeClass = (Vec<(String, usize)>, Vec<usize>, Vec<usize>);
        let mut classes: Vec<ShapeClass> = Vec::new();
        for (c, col) in self.columns.iter().enumerate() {
            let (ops, pattern) = shape_of(col);
            match classes
                .iter_mut()
                .find(|(o, p, _)| *o == ops && *p == pattern)
            {
                Some((_, _, members)) => members.push(c),
                None => classes.push((ops, pattern, vec![c])),
            }
        }

        let mut counts = HashMap::new();
        let mut counted = false;
        let mut out = SymmetryGroups::default();
        let push_group = |members: Vec<usize>, out: &mut SymmetryGroups| {
            if members.len() >= 2 {
                out.member_args.push(
                    members
                        .iter()
                        .map(|&c| flat_args(&self.columns[c]))
                        .collect(),
                );
                out.groups.push(members);
            }
        };

        for (_, _, members) in classes {
            if members.len() < 2 {
                continue;
            }
            let full_ok = policy == SymmetryPolicy::Full && {
                if !counted {
                    count_value_nodes(self, &mut counts);
                    counted = true;
                }
                let rows = self.columns[members[0]]
                    .iter()
                    .map(|i| i.args.len())
                    .sum::<usize>();
                (0..rows).all(|r| {
                    let row: Vec<&Value> = members
                        .iter()
                        .map(|&c| {
                            self.columns[c]
                                .iter()
                                .flat_map(|i| i.args.iter())
                                .nth(r)
                                .expect("same shape")
                        })
                        .collect();
                    let all_equal = row.windows(2).all(|w| w[0] == w[1]);
                    all_equal || {
                        let leaves = row
                            .iter()
                            .all(|v| !matches!(v, Value::Seq(_) | Value::Opt(Some(_))));
                        let distinct =
                            (0..row.len()).all(|i| (i + 1..row.len()).all(|j| row[i] != row[j]));
                        let private = row.iter().all(|v| counts.get(*v) == Some(&1));
                        leaves && distinct && private
                    }
                })
            };
            if full_ok {
                push_group(members, &mut out);
            } else {
                // Literal-equality fallback (also the ThreadsOnly path):
                // sub-partition the shape class by exact column equality.
                let mut literal: Vec<(usize, Vec<usize>)> = Vec::new();
                for &c in &members {
                    match literal
                        .iter_mut()
                        .find(|(first, _)| self.columns[*first] == self.columns[c])
                    {
                        Some((_, g)) => g.push(c),
                        None => literal.push((c, vec![c])),
                    }
                }
                for (_, g) in literal {
                    push_group(g, &mut out);
                }
            }
        }
        out
    }
}

impl fmt::Display for TestMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.init.is_empty() {
            write!(f, "init:")?;
            for inv in &self.init {
                write!(f, " {inv}")?;
            }
            writeln!(f)?;
        }
        let (rows, cols) = self.dimension();
        for r in 0..rows {
            for c in 0..cols {
                if c > 0 {
                    write!(f, " | ")?;
                }
                match self.columns[c].get(r) {
                    Some(inv) => write!(f, "{inv:<16}")?,
                    None => write!(f, "{:<16}", "")?,
                }
            }
            writeln!(f)?;
        }
        if !self.finally.is_empty() {
            write!(f, "finally:")?;
            for inv in &self.finally {
                write!(f, " {inv}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv(name: &str) -> Invocation {
        Invocation::new(name)
    }

    #[test]
    fn from_rows_transposes() {
        let m = TestMatrix::from_rows(vec![vec![inv("a"), inv("b")], vec![inv("c"), inv("d")]]);
        assert_eq!(m.columns[0], vec![inv("a"), inv("c")]);
        assert_eq!(m.columns[1], vec![inv("b"), inv("d")]);
        assert_eq!(m.dimension(), (2, 2));
        assert_eq!(m.operation_count(), 4);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        TestMatrix::from_rows(vec![vec![inv("a")], vec![inv("b"), inv("c")]]);
    }

    #[test]
    fn prefix_order() {
        let small = TestMatrix::from_columns(vec![vec![inv("a")], vec![]]);
        let big = TestMatrix::from_columns(vec![vec![inv("a"), inv("b")], vec![inv("c")]]);
        assert!(small.is_prefix_of(&big));
        assert!(!big.is_prefix_of(&small));
        assert!(small.is_prefix_of(&small));
        // Fewer columns is fine (missing columns are empty sequences).
        let one_col = TestMatrix::from_columns(vec![vec![inv("a")]]);
        assert!(one_col.is_prefix_of(&big));
    }

    #[test]
    fn prefix_requires_matching_init() {
        let a = TestMatrix::from_columns(vec![vec![inv("a")]]);
        let b = a.clone().with_init(vec![inv("i")]);
        assert!(!a.is_prefix_of(&b));
        assert!(b.is_prefix_of(&b));
    }

    #[test]
    fn enumerate_counts() {
        let invs = vec![inv("x"), inv("y")];
        // 2 invocations, 2x2 matrix: 2^4 = 16 tests.
        assert_eq!(TestMatrix::enumerate(&invs, 2, 2).len(), 16);
        // 3 invocations, 1x1: 3 tests.
        assert_eq!(
            TestMatrix::enumerate(&[inv("a"), inv("b"), inv("c")], 1, 1).len(),
            3
        );
    }

    #[test]
    fn enumerate_shapes() {
        let invs = vec![inv("x")];
        let ms = TestMatrix::enumerate(&invs, 3, 2);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].dimension(), (3, 2));
        assert_eq!(ms[0].operation_count(), 6);
    }

    fn int(name: &str, v: i64) -> Invocation {
        Invocation::with_int(name, v)
    }

    #[test]
    fn threads_only_groups_literal_columns() {
        // [Wait], [Wait], [Release(2)]: the two Wait columns group.
        let m = TestMatrix::from_columns(vec![
            vec![inv("Wait")],
            vec![inv("Wait")],
            vec![int("Release", 2)],
        ]);
        let g = m.symmetry_groups(SymmetryPolicy::ThreadsOnly);
        assert_eq!(g.groups(), &[vec![0, 1]]);
        assert_eq!(g.masks(), vec![0b011]);
    }

    #[test]
    fn full_policy_groups_value_renamed_columns() {
        // [Enqueue(10)], [Enqueue(20)]: identical up to renaming 10↔20.
        let m = TestMatrix::from_columns(vec![vec![int("Enqueue", 10)], vec![int("Enqueue", 20)]]);
        assert!(
            m.symmetry_groups(SymmetryPolicy::ThreadsOnly).is_empty(),
            "different literals do not group under ThreadsOnly"
        );
        let g = m.symmetry_groups(SymmetryPolicy::Full);
        assert_eq!(g.groups(), &[vec![0, 1]]);
    }

    #[test]
    fn full_policy_respects_shared_values() {
        // A value reused across columns is not private, so the columns
        // only group literally.
        let m = TestMatrix::from_columns(vec![
            vec![int("Enq", 10)],
            vec![int("Enq", 20)],
            vec![int("Enq", 10)],
        ]);
        let g = m.symmetry_groups(SymmetryPolicy::Full);
        assert_eq!(g.groups(), &[vec![0, 2]], "only the literal pair groups");
    }

    #[test]
    fn full_policy_respects_init_and_finally_occurrences() {
        // 20 also appears in the final sequence: renaming 10↔20 would be
        // observable there, so the class must fall back (and the fallback
        // finds nothing literal).
        let m = TestMatrix::from_columns(vec![vec![int("Enq", 10)], vec![int("Enq", 20)]])
            .with_finally(vec![int("Contains", 20)]);
        assert!(m.symmetry_groups(SymmetryPolicy::Full).is_empty());
    }

    #[test]
    fn disabled_policy_finds_nothing() {
        let m = TestMatrix::from_columns(vec![vec![inv("Add")], vec![inv("Add")]]);
        assert!(m.symmetry_groups(SymmetryPolicy::Disabled).is_empty());
        assert!(!m.symmetry_groups(SymmetryPolicy::ThreadsOnly).is_empty());
    }

    #[test]
    fn mixed_shapes_partition_first() {
        // Two Adds and two TryTakes: two independent groups.
        let m = TestMatrix::from_columns(vec![
            vec![int("Add", 1)],
            vec![inv("TryTake")],
            vec![int("Add", 1)],
            vec![inv("TryTake")],
        ]);
        let g = m.symmetry_groups(SymmetryPolicy::ThreadsOnly);
        assert_eq!(g.groups(), &[vec![0, 2], vec![1, 3]]);
        assert_eq!(g.masks(), vec![0b0101, 0b1010]);
    }

    #[test]
    fn canonicalize_renames_threads_to_first_appearance() {
        let m = TestMatrix::from_columns(vec![vec![inv("inc")], vec![inv("inc")]]);
        let g = m.symmetry_groups(SymmetryPolicy::ThreadsOnly);
        // Thread 1 moves first: canonical form renames it to thread 0.
        let mut h = History::new(3);
        let b = h.push_call(1, inv("inc"));
        h.push_return(b, crate::value::Value::Unit);
        let a = h.push_call(0, inv("inc"));
        h.push_return(a, crate::value::Value::Unit);
        let canon = g.canonicalize(&h);
        assert_eq!(canon.ops[0].thread, 0);
        assert_eq!(canon.ops[1].thread, 1);
        // The mirror history (thread 0 first) is already canonical…
        let mut mirror = History::new(3);
        let a = mirror.push_call(0, inv("inc"));
        mirror.push_return(a, crate::value::Value::Unit);
        let b = mirror.push_call(1, inv("inc"));
        mirror.push_return(b, crate::value::Value::Unit);
        assert_eq!(g.canonicalize(&mirror), mirror);
        // …and both members of the class share one canonical form.
        assert_eq!(canon, mirror);
    }

    #[test]
    fn canonicalize_renames_values_with_threads() {
        use crate::value::Value;
        let m = TestMatrix::from_columns(vec![vec![int("Enqueue", 10)], vec![int("Enqueue", 20)]]);
        let g = m.symmetry_groups(SymmetryPolicy::Full);
        // Thread 1 enqueues 20 first; a later response surfaces 20 inside
        // an Opt. Canonically thread 1 becomes thread 0 and 20 becomes 10,
        // including inside the response.
        let mut h = History::new(3);
        let b = h.push_call(1, int("Enqueue", 20));
        h.push_return(b, Value::Unit);
        let a = h.push_call(0, int("Enqueue", 10));
        h.push_return(a, Value::Unit);
        let f = h.push_call(2, inv("TryDequeue"));
        h.push_return(f, Value::Opt(Some(Box::new(Value::Int(20)))));
        let canon = g.canonicalize(&h);
        assert_eq!(canon.ops[0].thread, 0);
        assert_eq!(canon.ops[0].invocation, int("Enqueue", 10));
        assert_eq!(canon.ops[1].thread, 1);
        assert_eq!(canon.ops[1].invocation, int("Enqueue", 20));
        assert_eq!(
            canon.ops[2].response,
            Some(Value::Opt(Some(Box::new(Value::Int(10))))),
            "payloads rename inside container responses"
        );
        // The canonical form equals the renamed execution's own history.
        let mut mirror = History::new(3);
        let a = mirror.push_call(0, int("Enqueue", 10));
        mirror.push_return(a, Value::Unit);
        let b = mirror.push_call(1, int("Enqueue", 20));
        mirror.push_return(b, Value::Unit);
        let f = mirror.push_call(2, inv("TryDequeue"));
        mirror.push_return(f, Value::Opt(Some(Box::new(Value::Int(10)))));
        assert_eq!(canon, mirror);
    }

    #[test]
    fn canonicalize_keeps_stuck_and_pending() {
        let m = TestMatrix::from_columns(vec![vec![inv("Wait")], vec![inv("Wait")]]);
        let g = m.symmetry_groups(SymmetryPolicy::ThreadsOnly);
        let mut h = History::new(3);
        h.push_call(1, inv("Wait"));
        h.stuck = true;
        let canon = g.canonicalize(&h);
        assert!(canon.stuck);
        assert_eq!(
            canon.ops[0].thread, 0,
            "the only appearing member is renamed down"
        );
        assert!(!canon.ops[0].is_complete());
    }

    #[test]
    fn display_is_tabular() {
        let m = TestMatrix::from_rows(vec![vec![
            Invocation::with_int("Add", 200),
            Invocation::new("TryTake"),
        ]]);
        let s = m.to_string();
        assert!(s.contains("Add(200)"));
        assert!(s.contains(" | "));
        assert!(s.contains("TryTake()"));
    }
}
