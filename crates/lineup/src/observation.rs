//! The observation file: a persistable, human-readable rendering of the
//! synthesized sequential specification (paper §4.2, Fig. 7).
//!
//! Histories are grouped into `<observation>` sections; all histories in a
//! section exhibit the same operation sequences for each thread, so (a) a
//! witness search only needs one section and (b) the file "is easier to
//! understand and navigate manually if the histories become large". Within
//! a section, `<history>` elements give the serial orders in the `i[`/`]i`
//! notation, blocking operations are marked `B` in the thread lists, and
//! stuck histories end with `#` — all following Fig. 7. (We render
//! arguments/results as proper XML attributes, `args="[200]"
//! result="ok"`, instead of the paper's free-text `value="200"` body.)

use std::error::Error;
use std::fmt;

use crate::history::History;
use crate::spec::{ObservationSet, Outcome, SerialHistory, SpecOp};
use crate::target::Invocation;
use crate::value::{parse_value, Value};

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Undoes [`xml_escape`] in a single left-to-right pass: each `&` begins
/// at most one entity, decoded once, and the decoded character is never
/// rescanned. Chained `str::replace` calls get this wrong — a later pass
/// rescans the output of an earlier one, so text like `&amp;lt;` (the
/// escape of the literal string `&lt;`) risks being decoded twice.
/// Unrecognized entities pass through unchanged.
fn xml_unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        let tail = &rest[pos..];
        let (decoded, consumed) = if let Some(t) = tail.strip_prefix("&amp;") {
            ('&', t)
        } else if let Some(t) = tail.strip_prefix("&lt;") {
            ('<', t)
        } else if let Some(t) = tail.strip_prefix("&gt;") {
            ('>', t)
        } else if let Some(t) = tail.strip_prefix("&quot;") {
            ('"', t)
        } else {
            // A bare `&` that starts no known entity: keep it verbatim.
            ('&', &tail[1..])
        };
        out.push(decoded);
        rest = consumed;
    }
    out.push_str(rest);
    out
}

/// Renders an observation set in the Fig. 7 format.
pub fn write_observation_file(set: &ObservationSet) -> String {
    let mut out = String::from("<observationset>\n");
    for (key, histories) in set.index().iter() {
        out.push_str("  <observation>\n");
        // Thread-major numbering base per thread.
        let mut base = vec![0usize; key.len()];
        let mut next = 1usize;
        for (t, ops) in key.iter().enumerate() {
            base[t] = next;
            next += ops.len();
        }
        // <thread> lines.
        for (t, ops) in key.iter().enumerate() {
            let ids: Vec<String> = ops
                .iter()
                .enumerate()
                .map(|(k, (_, outcome))| {
                    let id = base[t] + k;
                    match outcome {
                        Outcome::Pending => format!("{id}B"),
                        Outcome::Returned(_) => id.to_string(),
                    }
                })
                .collect();
            out.push_str(&format!(
                "    <thread id=\"{}\">{}</thread>\n",
                History::thread_label(t),
                ids.join(" ")
            ));
        }
        // <op> lines.
        for (t, ops) in key.iter().enumerate() {
            for (k, (invocation, outcome)) in ops.iter().enumerate() {
                let id = base[t] + k;
                let args = Value::Seq(invocation.args.clone()).to_string();
                match outcome {
                    Outcome::Returned(v) => out.push_str(&format!(
                        "    <op id=\"{id}\" name=\"{}\" args=\"{}\" result=\"{}\"/>\n",
                        xml_escape(&invocation.name),
                        xml_escape(&args),
                        xml_escape(&v.to_string())
                    )),
                    Outcome::Pending => out.push_str(&format!(
                        "    <op id=\"{id}\" name=\"{}\" args=\"{}\"/>\n",
                        xml_escape(&invocation.name),
                        xml_escape(&args)
                    )),
                }
            }
        }
        // <history> lines: the serial orders.
        for s in histories {
            let mut counters = vec![0usize; key.len()];
            let mut tokens = Vec::new();
            for op in &s.ops {
                let id = base[op.thread] + counters[op.thread];
                counters[op.thread] += 1;
                match op.outcome {
                    Outcome::Returned(_) => {
                        tokens.push(format!("{id}["));
                        tokens.push(format!("]{id}"));
                    }
                    Outcome::Pending => {
                        tokens.push(format!("{id}["));
                        tokens.push("#".to_string());
                    }
                }
            }
            out.push_str(&format!("    <history>{}</history>\n", tokens.join(" ")));
        }
        out.push_str("  </observation>\n");
    }
    out.push_str("</observationset>\n");
    out
}

/// An error from [`parse_observation_file`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseObservationError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseObservationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "observation file line {}: {}", self.line, self.message)
    }
}

impl Error for ParseObservationError {}

fn attr(line: &str, name: &str) -> Option<String> {
    let needle = format!("{name}=\"");
    let start = line.find(&needle)? + needle.len();
    let end = line[start..].find('"')? + start;
    Some(xml_unescape(&line[start..end]))
}

fn label_to_index(label: &str) -> Option<usize> {
    let mut n = 0usize;
    for c in label.chars() {
        if !c.is_ascii_uppercase() {
            return None;
        }
        n = n * 26 + (c as usize - 'A' as usize) + 1;
    }
    n.checked_sub(1)
}

#[derive(Debug, Default)]
struct ObsSection {
    /// op id → (thread, invocation, pending?)
    ops: std::collections::BTreeMap<usize, (usize, Invocation, Option<Value>)>,
    thread_count: usize,
    histories: Vec<Vec<usize>>, // call order of op ids (serial), stuck if marker
    stuck: Vec<bool>,
}

/// Parses an observation file back into an [`ObservationSet`].
///
/// # Errors
///
/// Returns the first syntax or consistency error with its line number.
pub fn parse_observation_file(text: &str) -> Result<ObservationSet, ParseObservationError> {
    let err = |line: usize, message: String| ParseObservationError { line, message };
    let mut set = ObservationSet::new();
    let mut section: Option<ObsSection> = None;

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line == "<observationset>" || line == "</observationset>" {
            continue;
        }
        if line == "<observation>" {
            if section.is_some() {
                return Err(err(lineno, "nested <observation>".into()));
            }
            section = Some(ObsSection::default());
            continue;
        }
        if line == "</observation>" {
            let s = section
                .take()
                .ok_or_else(|| err(lineno, "</observation> without opening".into()))?;
            for (h, &stuck) in s.histories.iter().zip(&s.stuck) {
                let ops = h
                    .iter()
                    .enumerate()
                    .map(|(k, id)| {
                        let (thread, invocation, result) = s
                            .ops
                            .get(id)
                            .ok_or_else(|| err(lineno, format!("unknown op id {id}")))?
                            .clone();
                        let outcome = match result {
                            Some(v) => Outcome::Returned(v),
                            None => {
                                if k + 1 != h.len() || !stuck {
                                    return Err(err(
                                        lineno,
                                        format!("pending op {id} not last in a stuck history"),
                                    ));
                                }
                                Outcome::Pending
                            }
                        };
                        Ok(SpecOp {
                            thread,
                            invocation,
                            outcome,
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                set.insert(SerialHistory {
                    thread_count: s.thread_count,
                    ops,
                });
            }
            continue;
        }
        let s = section.as_mut().ok_or_else(|| {
            err(
                lineno,
                format!("unexpected content outside <observation>: {line}"),
            )
        })?;
        if line.starts_with("<thread") {
            let label = attr(line, "id").ok_or_else(|| err(lineno, "thread without id".into()))?;
            let thread = label_to_index(&label)
                .ok_or_else(|| err(lineno, format!("bad thread label {label:?}")))?;
            s.thread_count = s.thread_count.max(thread + 1);
            let body_start = line
                .find('>')
                .ok_or_else(|| err(lineno, "malformed thread line".into()))?;
            let body_end = line
                .rfind("</thread>")
                .ok_or_else(|| err(lineno, "unterminated thread line".into()))?;
            for tok in line[body_start + 1..body_end].split_whitespace() {
                let (id_text, _pending) = match tok.strip_suffix('B') {
                    Some(rest) => (rest, true),
                    None => (tok, false),
                };
                let id: usize = id_text
                    .parse()
                    .map_err(|_| err(lineno, format!("bad op id {tok:?}")))?;
                // Thread assignment recorded when the <op> line arrives;
                // remember it by pre-inserting a placeholder.
                s.ops
                    .entry(id)
                    .or_insert_with(|| (thread, Invocation::new("?"), None))
                    .0 = thread;
            }
            continue;
        }
        if line.starts_with("<op") {
            let id: usize = attr(line, "id")
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| err(lineno, "op without numeric id".into()))?;
            let name = attr(line, "name").ok_or_else(|| err(lineno, "op without name".into()))?;
            let args = match attr(line, "args") {
                Some(text) => match parse_value(&text) {
                    Ok(Value::Seq(vs)) => vs,
                    Ok(_) => return Err(err(lineno, "args must be a sequence".into())),
                    Err(e) => return Err(err(lineno, format!("bad args: {e}"))),
                },
                None => Vec::new(),
            };
            let result = match attr(line, "result") {
                Some(text) => {
                    Some(parse_value(&text).map_err(|e| err(lineno, format!("bad result: {e}")))?)
                }
                None => None,
            };
            let entry = s
                .ops
                .entry(id)
                .or_insert_with(|| (usize::MAX, Invocation::new("?"), None));
            entry.1 = Invocation::with_args(name, args);
            entry.2 = result;
            continue;
        }
        if line.starts_with("<history>") {
            let body = line
                .strip_prefix("<history>")
                .and_then(|l| l.strip_suffix("</history>"))
                .ok_or_else(|| err(lineno, "malformed history line".into()))?;
            let mut order = Vec::new();
            let mut open: Option<usize> = None;
            let mut stuck = false;
            for tok in body.split_whitespace() {
                if tok == "#" {
                    stuck = true;
                    continue;
                }
                if let Some(id_text) = tok.strip_suffix('[') {
                    let id: usize = id_text
                        .parse()
                        .map_err(|_| err(lineno, format!("bad call token {tok:?}")))?;
                    if open.is_some() {
                        return Err(err(lineno, "overlapping ops in serial history".into()));
                    }
                    open = Some(id);
                    order.push(id);
                } else if let Some(id_text) = tok.strip_prefix(']') {
                    let id: usize = id_text
                        .parse()
                        .map_err(|_| err(lineno, format!("bad return token {tok:?}")))?;
                    if open != Some(id) {
                        return Err(err(lineno, format!("return ]{id} without matching call")));
                    }
                    open = None;
                } else {
                    return Err(err(lineno, format!("unrecognized token {tok:?}")));
                }
            }
            if open.is_some() && !stuck {
                return Err(err(lineno, "unmatched call in non-stuck history".into()));
            }
            s.histories.push(order);
            s.stuck.push(stuck);
            continue;
        }
        return Err(err(lineno, format!("unrecognized line: {line}")));
    }
    if section.is_some() {
        return Err(err(
            text.lines().count(),
            "unterminated <observation>".into(),
        ));
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn sop(thread: usize, name: &str, outcome: Outcome) -> SpecOp {
        SpecOp {
            thread,
            invocation: Invocation::new(name),
            outcome,
        }
    }

    fn sop_arg(thread: usize, name: &str, arg: i64, outcome: Outcome) -> SpecOp {
        SpecOp {
            thread,
            invocation: Invocation::with_int(name, arg),
            outcome,
        }
    }

    fn ret(v: Value) -> Outcome {
        Outcome::Returned(v)
    }

    fn sample_set() -> ObservationSet {
        // Modeled on Fig. 7: Add(200)/Add(400) on thread A, Take/TryTake on
        // thread B.
        let mut set = ObservationSet::new();
        set.insert(SerialHistory {
            thread_count: 2,
            ops: vec![
                sop_arg(0, "Add", 200, ret(Value::Unit)),
                sop(1, "Take", ret(Value::Int(200))),
                sop(1, "TryTake", ret(Value::Fail)),
                sop_arg(0, "Add", 400, ret(Value::Unit)),
            ],
        });
        set.insert(SerialHistory {
            thread_count: 2,
            ops: vec![
                sop_arg(0, "Add", 200, ret(Value::Unit)),
                sop_arg(0, "Add", 400, ret(Value::Unit)),
                sop(1, "Take", ret(Value::Int(200))),
                sop(1, "TryTake", ret(Value::some(Value::Int(400)))),
            ],
        });
        // A stuck serial history: Take blocks on the empty queue.
        set.insert(SerialHistory {
            thread_count: 2,
            ops: vec![sop(1, "Take", Outcome::Pending)],
        });
        set
    }

    #[test]
    fn write_produces_fig7_structure() {
        let text = write_observation_file(&sample_set());
        assert!(text.starts_with("<observationset>"));
        assert!(text.contains("<observation>"));
        assert!(text.contains("<thread id=\"A\">"));
        assert!(text.contains("name=\"Add\" args=\"[200]\" result=\"ok\""));
        // The stuck Take is marked B in the thread list and # in history.
        assert!(text.contains("1B"), "{text}");
        assert!(text.contains("1[ #"), "{text}");
        // Interleaving notation.
        assert!(text.contains("1[ ]1"));
    }

    #[test]
    fn roundtrip_preserves_set() {
        let set = sample_set();
        let text = write_observation_file(&set);
        let parsed = parse_observation_file(&text).expect("parses");
        assert_eq!(parsed, set);
    }

    #[test]
    fn roundtrip_with_exotic_values() {
        let mut set = ObservationSet::new();
        set.insert(SerialHistory {
            thread_count: 1,
            ops: vec![SpecOp {
                thread: 0,
                invocation: Invocation::with_args(
                    "Weird<Op>",
                    [Value::Str("a \"quoted\" <arg>&".into())],
                ),
                outcome: ret(Value::Seq(vec![Value::Bool(true), Value::Opt(None)])),
            }],
        });
        let text = write_observation_file(&set);
        let parsed = parse_observation_file(&text).expect("parses");
        assert_eq!(parsed, set);
    }

    #[test]
    fn parse_accepts_ops_before_threads() {
        // Element order within a section is not significant.
        let text = r#"<observationset>
  <observation>
    <op id="1" name="x" args="[]" result="ok"/>
    <thread id="A">1</thread>
    <history>1[ ]1</history>
  </observation>
</observationset>"#;
        let set = parse_observation_file(text).unwrap();
        assert_eq!(set.len(), 1);
        let h = set.iter().next().unwrap();
        assert_eq!(h.ops[0].thread, 0);
        assert_eq!(h.ops[0].invocation.name, "x");
    }

    #[test]
    fn parse_rejects_mismatched_return() {
        let bad = r#"<observationset>
  <observation>
    <thread id="A">1 2</thread>
    <op id="1" name="x" args="[]" result="ok"/>
    <op id="2" name="y" args="[]" result="ok"/>
    <history>1[ ]2</history>
  </observation>
</observationset>"#;
        let e = parse_observation_file(bad).unwrap_err();
        assert!(e.message.contains("without matching call"), "{e}");
    }

    #[test]
    fn parse_rejects_overlap_in_history() {
        let bad = r#"<observationset>
  <observation>
    <thread id="A">1 2</thread>
    <op id="1" name="x" args="[]" result="ok"/>
    <op id="2" name="y" args="[]" result="ok"/>
    <history>1[ 2[ ]1 ]2</history>
  </observation>
</observationset>"#;
        let e = parse_observation_file(bad).unwrap_err();
        assert!(e.message.contains("overlapping"));
        assert_eq!(e.line, 6);
    }

    #[test]
    fn parse_rejects_unknown_token() {
        let bad = "<observationset>\n<observation>\n<history>wat</history>\n</observation>\n</observationset>";
        assert!(parse_observation_file(bad).is_err());
    }

    #[test]
    fn parse_empty_set() {
        let set = parse_observation_file("<observationset>\n</observationset>\n").unwrap();
        assert!(set.is_empty());
    }

    #[test]
    fn error_display_carries_line() {
        let e = ParseObservationError {
            line: 3,
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "observation file line 3: boom");
    }

    #[test]
    fn unescape_decodes_each_entity_once() {
        // The escape of the literal string `&lt;` must come back as the
        // literal string, not as `<` (the chained-replace hazard).
        for literal in ["&lt;", "&gt;", "&quot;", "&amp;", "&amp;lt;"] {
            assert_eq!(xml_unescape(&xml_escape(literal)), literal);
        }
        assert_eq!(xml_unescape("&amp;lt;"), "&lt;");
        assert_eq!(xml_unescape("&lt;&gt;&quot;&amp;"), "<>\"&");
    }

    #[test]
    fn unescape_keeps_bare_ampersands_and_unknown_entities() {
        assert_eq!(xml_unescape("a & b"), "a & b");
        assert_eq!(xml_unescape("&bogus;"), "&bogus;");
        assert_eq!(xml_unescape("tail&"), "tail&");
    }

    mod escape_properties {
        use super::super::{xml_escape, xml_unescape};
        use crate::value::Value;
        use proptest::prelude::*;

        /// Values whose `Str` leaves are rich in XML metacharacters and
        /// pre-escaped entity text, the worst case for the unescaper.
        fn value_strategy() -> impl Strategy<Value = Value> {
            let leaf = prop_oneof![
                Just(Value::Unit),
                Just(Value::Fail),
                Just(Value::Opt(None)),
                any::<bool>().prop_map(Value::Bool),
                (-1000i64..1000).prop_map(Value::Int),
                "[a-z<>&\"; ]{0,10}".prop_map(Value::Str),
                prop_oneof![
                    Just("&amp;lt;".to_string()),
                    Just("&lt;&gt;".to_string()),
                    Just("&quot;&amp;".to_string()),
                ]
                .prop_map(Value::Str),
            ];
            leaf.prop_recursive(3, 16, 4, |inner| {
                prop_oneof![
                    prop::collection::vec(inner.clone(), 0..4).prop_map(Value::Seq),
                    inner.prop_map(Value::some),
                ]
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            #[test]
            fn escape_round_trips_value_renderings(v in value_strategy()) {
                let rendered = v.to_string();
                prop_assert_eq!(xml_unescape(&xml_escape(&rendered)), rendered);
            }

            #[test]
            fn escaped_text_is_attribute_safe(v in value_strategy()) {
                let escaped = xml_escape(&v.to_string());
                prop_assert!(!escaped.contains('"'));
                prop_assert!(!escaped.contains('<'));
                prop_assert!(!escaped.contains('>'));
            }
        }
    }
}
