//! Violation reports, rendered in the style of the paper's Fig. 7
//! (bottom): the per-thread operation table plus the precise interleaving
//! that has no serial witness.

use crate::check::{CheckReport, Violation};
use crate::history::History;
use crate::spec::Outcome;

/// Renders one history as the `<thread>`/`<op>`/`<history>` block of a
/// Fig. 7 report.
fn render_history_block(h: &History) -> String {
    let numbers = h.fig7_numbers();
    let mut out = String::new();
    for t in 0..h.thread_count {
        let ids: Vec<String> = h
            .thread_ops(t)
            .into_iter()
            .map(|i| {
                if h.ops[i].is_complete() {
                    numbers[i].to_string()
                } else {
                    format!("{}B", numbers[i])
                }
            })
            .collect();
        out.push_str(&format!(
            "<thread id=\"{}\">{}</thread>\n",
            History::thread_label(t),
            ids.join(" ")
        ));
    }
    let mut order: Vec<usize> = (0..h.ops.len()).collect();
    order.sort_by_key(|&i| numbers[i]);
    for i in order {
        let op = &h.ops[i];
        match &op.response {
            Some(v) => out.push_str(&format!(
                "<op id=\"{}\" name=\"{}\" args=\"{}\" result=\"{}\"/>\n",
                numbers[i],
                op.invocation.name,
                crate::value::Value::Seq(op.invocation.args.clone()),
                v
            )),
            None => out.push_str(&format!(
                "<op id=\"{}\" name=\"{}\" args=\"{}\"/>\n",
                numbers[i],
                op.invocation.name,
                crate::value::Value::Seq(op.invocation.args.clone())
            )),
        }
    }
    out.push_str(&format!("<history>{}</history>\n", h.interleaving_string()));
    out
}

/// Renders a violation as a human-readable report.
///
/// # Example
///
/// ```
/// use lineup::{check, CheckOptions, Invocation, TestMatrix};
/// use lineup::doc_support::BuggyCounterTarget;
///
/// let m = TestMatrix::from_columns(vec![
///     vec![Invocation::new("inc"), Invocation::new("get")],
///     vec![Invocation::new("inc")],
/// ]);
/// let report = check(&BuggyCounterTarget, &m, &CheckOptions::new());
/// let text = lineup::render_violation(report.first_violation().unwrap());
/// assert!(text.contains("non-linearizable history"));
/// ```
pub fn render_violation(v: &Violation) -> String {
    match v {
        Violation::Nondeterminism(nd) => {
            let mut out = String::from(
                "Line-Up detected nondeterministic sequential behavior \
                 (two serial histories diverge at a call):\n",
            );
            out.push_str(&format!("  first:  {}\n", nd.first));
            out.push_str(&format!("  second: {}\n", nd.second));
            let op = &nd.second.ops[nd.diverge_at];
            out.push_str(&format!(
                "  diverging call: {} by thread {}",
                op.invocation,
                History::thread_label(op.thread)
            ));
            match (&nd.first.ops[nd.diverge_at].outcome, &op.outcome) {
                (Outcome::Returned(a), Outcome::Returned(b)) => {
                    out.push_str(&format!(" (returns {a} vs {b})\n"))
                }
                _ => out.push_str(" (returns vs blocks)\n"),
            }
            out
        }
        Violation::NoWitness { history, decisions } => {
            let mut out = String::from("Line-Up encountered a non-linearizable history:\n");
            out.push_str(&render_history_block(history));
            out.push_str(
                "No serial witness exists for this history in the observed \
                 sequential behaviors.\n",
            );
            out.push_str(&format!(
                "(Replayable schedule: {} decisions; see lineup::replay_matrix.)\n",
                decisions.len()
            ));
            out
        }
        Violation::StuckNoWitness {
            history, pending, ..
        } => {
            let numbers = history.fig7_numbers();
            let op = &history.ops[*pending];
            let mut out = String::from("Line-Up encountered a non-linearizable *stuck* history:\n");
            out.push_str(&render_history_block(history));
            out.push_str(&format!(
                "Operation {} ({} by thread {}) is blocked, but no serial \
                 execution blocks it there.\n",
                numbers[*pending],
                op.invocation,
                History::thread_label(op.thread)
            ));
            out
        }
        Violation::Panic {
            message,
            history,
            serial,
            ..
        } => {
            let phase = if *serial {
                "serial (phase 1)"
            } else {
                "concurrent (phase 2)"
            };
            let mut out =
                format!("The implementation panicked during {phase} execution: {message}\n");
            if !history.ops.is_empty() {
                out.push_str("Partial history up to the panic:\n");
                out.push_str(&render_history_block(history));
            }
            out
        }
    }
}

impl CheckReport {
    /// Renders this report: PASS/FAIL, the test matrix, statistics, and
    /// every violation. Equivalent to [`render_report`].
    pub fn render(&self) -> String {
        render_report(self)
    }
}

/// Renders a full check report: PASS/FAIL, the test matrix, statistics,
/// and every violation.
pub fn render_report(report: &CheckReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "=== Line-Up check: {} — {} ===\n",
        report.target_name,
        if report.passed() { "PASS" } else { "FAIL" }
    ));
    out.push_str(&format!("Test matrix:\n{}", report.matrix));
    out.push_str(&format!(
        "Phase 1: {} serial runs, {} full + {} stuck serial histories, {:?}\n",
        report.phase1.runs,
        report.phase1.full_histories,
        report.phase1.stuck_histories,
        report.phase1.duration
    ));
    out.push_str(&format!(
        "Phase 2: {} concurrent runs, {} full + {} stuck distinct histories, {:?}\n",
        report.phase2.runs,
        report.phase2.full_histories,
        report.phase2.stuck_histories,
        report.phase2.duration
    ));
    for v in &report.violations {
        out.push('\n');
        out.push_str(&render_violation(v));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{check, CheckOptions};
    use crate::doc_support::BuggyCounterTarget;
    use crate::matrix::TestMatrix;
    use crate::target::Invocation;

    #[test]
    fn buggy_counter_report_is_readable() {
        let m = TestMatrix::from_columns(vec![
            vec![Invocation::new("inc"), Invocation::new("get")],
            vec![Invocation::new("inc")],
        ]);
        let report = check(&BuggyCounterTarget, &m, &CheckOptions::new());
        assert!(!report.passed());
        let text = render_report(&report);
        assert!(text.contains("FAIL"));
        assert!(text.contains("non-linearizable history"));
        assert!(text.contains("<history>"));
        assert!(text.contains("inc"));
    }

    #[test]
    fn render_method_matches_free_function() {
        let m = TestMatrix::from_columns(vec![vec![Invocation::new("inc")]]);
        let report = check(&crate::doc_support::CounterTarget, &m, &CheckOptions::new());
        assert_eq!(report.render(), render_report(&report));
        assert!(report.render().contains("PASS"));
    }

    #[test]
    fn nondeterminism_violation_renders() {
        use crate::spec::{Nondeterminism, Outcome, SerialHistory, SpecOp};
        use crate::value::Value;
        let mk = |v: i64| SerialHistory {
            thread_count: 1,
            ops: vec![SpecOp {
                thread: 0,
                invocation: Invocation::new("roll"),
                outcome: Outcome::Returned(Value::Int(v)),
            }],
        };
        let v = crate::check::Violation::Nondeterminism(Nondeterminism {
            first: mk(1),
            second: mk(2),
            diverge_at: 0,
        });
        let text = render_violation(&v);
        assert!(text.contains("nondeterministic sequential behavior"));
        assert!(text.contains("returns 1 vs 2"));
    }

    #[test]
    fn history_block_marks_pending_ops() {
        let mut h = History::new(2);
        let a = h.push_call(0, Invocation::new("Wait"));
        let b = h.push_call(1, Invocation::new("Set"));
        h.push_return(b, crate::value::Value::Unit);
        h.stuck = true;
        let _ = a;
        let block = render_history_block(&h);
        assert!(block.contains("<thread id=\"A\">1B</thread>"), "{block}");
        assert!(block.contains("result=\"ok\""));
        assert!(block.contains('#'));
    }
}
