//! Automatic minimization of failing tests.
//!
//! The paper's evaluation (§5.1) manually removed operations from failing
//! 3×3 matrices "to obtain a failing test of minimal dimension, for the
//! sake of easier reasoning and regression testing" — the *Min dimension*
//! column of Table 2. This module automates that step with a greedy
//! delta-debugging loop: repeatedly drop one operation (or an emptied
//! column) as long as the reduced test still fails.

use crate::check::{check, CheckOptions};
use crate::matrix::TestMatrix;
use crate::target::TestTarget;

/// Greedily shrinks a failing test to a locally-minimal failing test:
/// no single operation can be removed without the check passing.
///
/// Returns the shrunk matrix and the number of `check` calls spent.
/// If `matrix` does not actually fail, it is returned unchanged.
///
/// Because every intermediate test is verified with a full [`check`],
/// completeness is preserved: the result is a genuine failing test.
///
/// # Example
///
/// ```
/// use lineup::{shrink_failing_test, CheckOptions, Invocation, TestMatrix};
/// use lineup::doc_support::BuggyCounterTarget;
///
/// let inc = || Invocation::new("inc");
/// let get = || Invocation::new("get");
/// let big = TestMatrix::from_columns(vec![
///     vec![inc(), get(), inc()],
///     vec![inc(), inc(), get()],
/// ]);
/// let (small, _checks) = shrink_failing_test(&BuggyCounterTarget, &big, &CheckOptions::new());
/// assert!(small.operation_count() < big.operation_count());
/// ```
pub fn shrink_failing_test<T: TestTarget>(
    target: &T,
    matrix: &TestMatrix,
    options: &CheckOptions,
) -> (TestMatrix, u64) {
    let mut checks = 0u64;
    let mut fails = |m: &TestMatrix| {
        checks += 1;
        !check(target, m, options).passed()
    };
    if !fails(matrix) {
        return (matrix.clone(), checks);
    }
    let mut current = matrix.clone();
    'outer: loop {
        // Try removing each operation, last-to-first within each column
        // (later ops depend on earlier state, so trailing removals are
        // likelier to keep failing).
        for c in 0..current.columns.len() {
            for r in (0..current.columns[c].len()).rev() {
                let mut candidate = current.clone();
                candidate.columns[c].remove(r);
                candidate.columns.retain(|col| !col.is_empty());
                if candidate.operation_count() == 0 {
                    continue;
                }
                if fails(&candidate) {
                    current = candidate;
                    continue 'outer;
                }
            }
        }
        break;
    }
    (current, checks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc_support::{BuggyCounterTarget, CounterTarget};
    use crate::target::Invocation;

    fn inc() -> Invocation {
        Invocation::new("inc")
    }
    fn get() -> Invocation {
        Invocation::new("get")
    }

    #[test]
    fn shrinks_buggy_counter_to_minimal() {
        // The minimal failing test for Counter1 is inc ∥ inc plus an
        // observation of the count: 3 operations (§2.2.1 uses exactly
        // inc, inc, get).
        let big =
            TestMatrix::from_columns(vec![vec![inc(), get(), inc()], vec![inc(), inc(), get()]]);
        let (small, checks) = shrink_failing_test(&BuggyCounterTarget, &big, &CheckOptions::new());
        assert!(checks > 1);
        assert!(
            small.operation_count() <= 3,
            "expected ≤3 ops, got:\n{small}"
        );
        assert!(small.thread_count() == 2);
        assert!(!check(&BuggyCounterTarget, &small, &CheckOptions::new()).passed());
    }

    #[test]
    fn passing_test_returned_unchanged() {
        let m = TestMatrix::from_columns(vec![vec![inc()], vec![get()]]);
        let (same, checks) = shrink_failing_test(&CounterTarget, &m, &CheckOptions::new());
        assert_eq!(same, m);
        assert_eq!(checks, 1);
    }
}
