//! Synthesized sequential specifications: sets of serial histories
//! (paper §2.1.2), recorded in phase 1 and consulted in phase 2.

use crate::history::History;
use crate::target::Invocation;
use crate::value::Value;
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt;

/// The outcome of one operation of a serial history.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Outcome {
    /// The operation returned this value.
    Returned(Value),
    /// The operation blocked: this is the trailing pending call of a
    /// stuck serial history `H (o i t) #` (the set `Y∥` of §2.3).
    Pending,
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Returned(v) => write!(f, "{v}"),
            Outcome::Pending => write!(f, "⊥ (blocked)"),
        }
    }
}

/// One operation of a serial history.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpecOp {
    /// The thread performing the operation.
    pub thread: usize,
    /// The invocation.
    pub invocation: Invocation,
    /// The outcome ([`Outcome::Pending`] only for the final operation of a
    /// stuck history).
    pub outcome: Outcome,
}

/// A serial history: a total order of operations, the last of which may be
/// pending (then the history is stuck).
///
/// Phase 1 of the Line-Up check records the serial histories of a test;
/// together they form the synthesized sequential specification (the sets
/// `A` and `B` of Fig. 5).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SerialHistory {
    /// Number of threads of the originating test.
    pub thread_count: usize,
    /// The operations, in serial order.
    pub ops: Vec<SpecOp>,
}

impl SerialHistory {
    /// Whether this serial history is stuck (its last operation is
    /// pending).
    pub fn is_stuck(&self) -> bool {
        self.ops
            .last()
            .is_some_and(|op| op.outcome == Outcome::Pending)
    }

    /// Converts a serial [`History`] (as produced by a phase-1 run) into
    /// its canonical form.
    ///
    /// # Panics
    ///
    /// Panics if the history is not serial, or has a pending operation
    /// that is not last.
    pub fn from_history(h: &History) -> Self {
        assert!(h.is_serial(), "phase 1 must produce serial histories");
        let ops = h
            .ops
            .iter()
            .enumerate()
            .map(|(i, op)| {
                let outcome = match &op.response {
                    Some(v) => Outcome::Returned(v.clone()),
                    None => {
                        assert_eq!(
                            i,
                            h.ops.len() - 1,
                            "pending op of a serial history must be last"
                        );
                        assert!(h.stuck, "pending op requires a stuck history");
                        Outcome::Pending
                    }
                };
                SpecOp {
                    thread: op.thread,
                    invocation: op.invocation.clone(),
                    outcome,
                }
            })
            .collect();
        SerialHistory {
            thread_count: h.thread_count,
            ops,
        }
    }

    /// The per-thread operation sequences (the thread subhistories `S|t`),
    /// used as the grouping key for witness search: any serial witness of
    /// a history must perform the same operations with the same outcomes
    /// in each thread (paper §4.2).
    pub fn thread_key(&self) -> ThreadKey {
        let mut key = vec![Vec::new(); self.thread_count];
        for op in &self.ops {
            key[op.thread].push((op.invocation.clone(), op.outcome.clone()));
        }
        key
    }
}

impl fmt::Display for SerialHistory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{}:{}", History::thread_label(op.thread), op.invocation)?;
            match &op.outcome {
                Outcome::Returned(v) => write!(f, "={v}")?,
                Outcome::Pending => write!(f, " #")?,
            }
        }
        Ok(())
    }
}

/// Per-thread operation sequences with outcomes: the grouping key of the
/// observation file (each `<observation>` section of Fig. 7 is one key).
pub type ThreadKey = Vec<Vec<(Invocation, Outcome)>>;

/// A nondeterminism witness: two serial histories whose longest common
/// prefix ends in a call (same serial prefix, same next invocation by the
/// same thread, different outcome) — the FAIL of Fig. 5 line 4.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nondeterminism {
    /// One history.
    pub first: SerialHistory,
    /// The other.
    pub second: SerialHistory,
    /// Index of the diverging operation (same in both).
    pub diverge_at: usize,
}

/// The set of serial histories recorded in phase 1: the synthesized
/// sequential specification (sets `A` — full — and `B` — stuck — of the
/// paper's Fig. 5).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObservationSet {
    histories: BTreeSet<SerialHistory>,
}

impl ObservationSet {
    /// Creates an empty observation set.
    pub fn new() -> Self {
        ObservationSet::default()
    }

    /// Inserts a serial history; returns whether it was new.
    pub fn insert(&mut self, h: SerialHistory) -> bool {
        self.histories.insert(h)
    }

    /// All recorded serial histories, in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &SerialHistory> {
        self.histories.iter()
    }

    /// Number of recorded serial histories (full + stuck).
    pub fn len(&self) -> usize {
        self.histories.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.histories.is_empty()
    }

    /// Number of full (complete) serial histories — the set `A`.
    pub fn full_count(&self) -> usize {
        self.histories.iter().filter(|h| !h.is_stuck()).count()
    }

    /// Number of stuck serial histories — the set `B`.
    pub fn stuck_count(&self) -> usize {
        self.histories.iter().filter(|h| h.is_stuck()).count()
    }

    /// The determinism check of Fig. 5 line 4: searches `A ∪ B` for two
    /// histories whose longest common prefix ends in a call. Returns the
    /// first such pair found, or `None` if the specification is
    /// deterministic.
    ///
    /// Two serial histories diverge "at a call" exactly when they agree on
    /// a prefix of operations (thread, invocation, outcome), then perform
    /// the *same* invocation on the *same* thread with *different*
    /// outcomes (different return values, or returning vs blocking).
    pub fn check_determinism(&self) -> Option<Nondeterminism> {
        // Key: (serial prefix, thread, invocation) → (outcome, history).
        type Key = (Vec<SpecOp>, usize, Invocation);
        let mut seen: BTreeMap<Key, (&Outcome, &SerialHistory)> = BTreeMap::new();
        for h in &self.histories {
            for (i, op) in h.ops.iter().enumerate() {
                let key = (h.ops[..i].to_vec(), op.thread, op.invocation.clone());
                match seen.get(&key) {
                    Some((outcome, other)) if *outcome != &op.outcome => {
                        return Some(Nondeterminism {
                            first: (*other).clone(),
                            second: h.clone(),
                            diverge_at: i,
                        });
                    }
                    Some(_) => {}
                    None => {
                        seen.insert(key, (&op.outcome, h));
                    }
                }
            }
        }
        None
    }

    /// Compares two observation sets, returning the serial histories only
    /// in `self` and only in `other`.
    ///
    /// Useful for diffing the synthesized specifications of two versions
    /// of a component (e.g. a preview and a release): behavioral changes —
    /// intended or not — show up as serial histories gained or lost, even
    /// when both versions pass their own self-checks.
    pub fn diff<'a>(
        &'a self,
        other: &'a ObservationSet,
    ) -> (Vec<&'a SerialHistory>, Vec<&'a SerialHistory>) {
        let only_self = self
            .histories
            .iter()
            .filter(|h| !other.histories.contains(h))
            .collect();
        let only_other = other
            .histories
            .iter()
            .filter(|h| !self.histories.contains(h))
            .collect();
        (only_self, only_other)
    }

    /// Builds the grouped index used for witness search in phase 2.
    pub fn index(&self) -> SpecIndex<'_> {
        let mut groups: BTreeMap<ThreadKey, Vec<&SerialHistory>> = BTreeMap::new();
        for h in &self.histories {
            groups.entry(h.thread_key()).or_default().push(h);
        }
        SpecIndex { groups }
    }
}

impl FromIterator<SerialHistory> for ObservationSet {
    fn from_iter<I: IntoIterator<Item = SerialHistory>>(iter: I) -> Self {
        ObservationSet {
            histories: iter.into_iter().collect(),
        }
    }
}

impl Extend<SerialHistory> for ObservationSet {
    fn extend<I: IntoIterator<Item = SerialHistory>>(&mut self, iter: I) {
        self.histories.extend(iter);
    }
}

/// The observation set grouped by per-thread operation sequences, so that
/// a witness search only scans one group (paper §4.2: "when our algorithm
/// is looking for a serial witness in the observation set, it is enough to
/// search one group").
#[derive(Debug, Clone)]
pub struct SpecIndex<'a> {
    groups: BTreeMap<ThreadKey, Vec<&'a SerialHistory>>,
}

impl<'a> SpecIndex<'a> {
    /// The candidate serial histories sharing the given per-thread key.
    pub fn candidates(&self, key: &ThreadKey) -> &[&'a SerialHistory] {
        self.groups.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of groups (the `<observation>` sections of Fig. 7).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Iterates over groups in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&ThreadKey, &[&'a SerialHistory])> {
        self.groups.iter().map(|(k, v)| (k, v.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(thread: usize, name: &str, outcome: Outcome) -> SpecOp {
        SpecOp {
            thread,
            invocation: Invocation::new(name),
            outcome,
        }
    }

    fn ret(v: i64) -> Outcome {
        Outcome::Returned(Value::Int(v))
    }

    fn serial(thread_count: usize, ops: Vec<SpecOp>) -> SerialHistory {
        SerialHistory { thread_count, ops }
    }

    #[test]
    fn stuck_detection() {
        let full = serial(1, vec![op(0, "inc", Outcome::Returned(Value::Unit))]);
        let stuck = serial(1, vec![op(0, "dec", Outcome::Pending)]);
        assert!(!full.is_stuck());
        assert!(stuck.is_stuck());
    }

    #[test]
    fn deterministic_set_passes() {
        let mut set = ObservationSet::new();
        // Two different interleavings of a counter: different op orders are
        // scheduling choices, not nondeterminism.
        set.insert(serial(2, vec![op(0, "inc", ret(1)), op(1, "get", ret(1))]));
        set.insert(serial(2, vec![op(1, "get", ret(0)), op(0, "inc", ret(1))]));
        assert!(set.check_determinism().is_none());
        assert_eq!(set.full_count(), 2);
        assert_eq!(set.stuck_count(), 0);
    }

    #[test]
    fn same_call_different_value_is_nondeterministic() {
        let mut set = ObservationSet::new();
        set.insert(serial(1, vec![op(0, "take", ret(1))]));
        set.insert(serial(1, vec![op(0, "take", ret(2))]));
        let nd = set.check_determinism().expect("nondeterministic");
        assert_eq!(nd.diverge_at, 0);
    }

    #[test]
    fn return_vs_blocking_is_nondeterministic() {
        // The same call either returns or blocks: per §2.3 the stuck set
        // Y∥ only contains H(oit)# when *no* response continues H(oit), so
        // observing both is nondeterminism.
        let mut set = ObservationSet::new();
        set.insert(serial(1, vec![op(0, "take", ret(7))]));
        set.insert(serial(1, vec![op(0, "take", Outcome::Pending)]));
        assert!(set.check_determinism().is_some());
    }

    #[test]
    fn different_threads_same_call_are_distinct() {
        // inc by thread A and inc by thread B are different events; the
        // common prefix ends before the calls, at a return — deterministic.
        let mut set = ObservationSet::new();
        set.insert(serial(2, vec![op(0, "inc", ret(1))]));
        set.insert(serial(2, vec![op(1, "inc", ret(1))]));
        assert!(set.check_determinism().is_none());
    }

    #[test]
    fn divergence_after_common_prefix() {
        let mut set = ObservationSet::new();
        set.insert(serial(2, vec![op(0, "a", ret(0)), op(1, "b", ret(1))]));
        set.insert(serial(2, vec![op(0, "a", ret(0)), op(1, "b", ret(2))]));
        let nd = set.check_determinism().unwrap();
        assert_eq!(nd.diverge_at, 1);
    }

    #[test]
    fn dedup_via_insert() {
        let mut set = ObservationSet::new();
        let h = serial(1, vec![op(0, "x", ret(0))]);
        assert!(set.insert(h.clone()));
        assert!(!set.insert(h));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn diff_finds_gained_and_lost_histories() {
        let a: ObservationSet = [
            serial(1, vec![op(0, "x", ret(0))]),
            serial(1, vec![op(0, "y", ret(1))]),
        ]
        .into_iter()
        .collect();
        let b: ObservationSet = [
            serial(1, vec![op(0, "x", ret(0))]),
            serial(1, vec![op(0, "z", ret(2))]),
        ]
        .into_iter()
        .collect();
        let (only_a, only_b) = a.diff(&b);
        assert_eq!(only_a.len(), 1);
        assert_eq!(only_a[0].ops[0].invocation.name, "y");
        assert_eq!(only_b.len(), 1);
        assert_eq!(only_b[0].ops[0].invocation.name, "z");
        let (same_a, same_b) = a.diff(&a);
        assert!(same_a.is_empty() && same_b.is_empty());
    }

    #[test]
    fn index_groups_by_thread_key() {
        let mut set = ObservationSet::new();
        // Same per-thread sequences, different interleavings → same group.
        set.insert(serial(2, vec![op(0, "a", ret(0)), op(1, "b", ret(1))]));
        set.insert(serial(2, vec![op(1, "b", ret(1)), op(0, "a", ret(0))]));
        // Different outcome → different group.
        set.insert(serial(2, vec![op(0, "a", ret(9)), op(1, "b", ret(1))]));
        let idx = set.index();
        assert_eq!(idx.group_count(), 2);
        let key = serial(2, vec![op(0, "a", ret(0)), op(1, "b", ret(1))]).thread_key();
        assert_eq!(idx.candidates(&key).len(), 2);
    }

    #[test]
    fn from_history_roundtrip() {
        let mut h = History::new(2);
        let a = h.push_call(0, Invocation::new("inc"));
        h.push_return(a, Value::Unit);
        let b = h.push_call(1, Invocation::new("get"));
        h.push_return(b, Value::Int(1));
        let s = SerialHistory::from_history(&h);
        assert_eq!(s.ops.len(), 2);
        assert_eq!(s.ops[0].outcome, Outcome::Returned(Value::Unit));
        assert!(!s.is_stuck());
    }

    #[test]
    fn from_history_stuck() {
        let mut h = History::new(1);
        h.push_call(0, Invocation::new("dec"));
        h.stuck = true;
        let s = SerialHistory::from_history(&h);
        assert!(s.is_stuck());
    }

    #[test]
    #[should_panic(expected = "must produce serial")]
    fn from_history_rejects_nonserial() {
        let mut h = History::new(2);
        h.push_call(0, Invocation::new("a"));
        h.push_call(1, Invocation::new("b"));
        h.stuck = true;
        // Two pending calls: not serial.
        SerialHistory::from_history(&h);
    }

    #[test]
    fn display_shows_threads_and_outcomes() {
        let s = serial(
            2,
            vec![op(0, "inc", ret(1)), op(1, "dec", Outcome::Pending)],
        );
        let text = s.to_string();
        assert!(text.contains("A:inc()=1"));
        assert!(text.contains("B:dec() #"));
    }
}
