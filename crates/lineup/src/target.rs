//! The black-box interface between Line-Up and the component under test.

use crate::value::Value;
use std::fmt;

/// An invocation: an operation name plus argument values.
///
/// This is all Line-Up knows about what a test *does* — it needs "no
/// manual abstraction, no manual specification of semantics or commit
/// points, no manually written test suites, no access to source code"
/// (paper abstract); the user only lists which invocations to exercise.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Invocation {
    /// The operation name, e.g. `"Add"`.
    pub name: String,
    /// Argument values, e.g. `[200]`.
    pub args: Vec<Value>,
}

impl Invocation {
    /// An invocation with no arguments.
    pub fn new(name: impl Into<String>) -> Self {
        Invocation {
            name: name.into(),
            args: Vec::new(),
        }
    }

    /// An invocation with arguments.
    pub fn with_args(name: impl Into<String>, args: impl IntoIterator<Item = Value>) -> Self {
        Invocation {
            name: name.into(),
            args: args.into_iter().collect(),
        }
    }

    /// An invocation with a single integer argument, the most common case
    /// in the paper's tests (`Add(200)`, `TryAdd(10)`, …).
    pub fn with_int(name: impl Into<String>, arg: i64) -> Self {
        Invocation::with_args(name, [Value::Int(arg)])
    }
}

impl fmt::Display for Invocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// How far thread-symmetry reduction may go for a target (see
/// [`TestMatrix::symmetry_groups`](crate::TestMatrix::symmetry_groups)).
///
/// Symmetry reduction treats two test threads as interchangeable when they
/// execute the same operation sequence — scheduling them in either order
/// yields histories that are renamings of each other, so only one order
/// needs exploring and only one renaming needs a phase-2 verdict. How much
/// of that is true depends on the *target*, which is why the policy lives
/// on [`TestTarget`] rather than on the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SymmetryPolicy {
    /// Threads are interchangeable even when their operations carry
    /// *different* argument values, as long as renaming the values along
    /// with the threads maps the matrix onto itself (the values must be
    /// fresh — used nowhere else in the matrix). Correct for
    /// data-independent collections (queues, stacks, dictionaries with
    /// distinct keys): their synchronization behaviour does not depend on
    /// *which* payload is stored, only on the operation sequence. Wrong
    /// for targets that branch on payload values (e.g. a priority queue
    /// ordering elements), which must stay at
    /// [`SymmetryPolicy::ThreadsOnly`].
    Full,
    /// Threads are interchangeable only when their operation sequences are
    /// *literally* identical (same names, same argument values). This
    /// requires nothing of the target beyond determinism, so it is the
    /// default.
    #[default]
    ThreadsOnly,
    /// No two threads are interchangeable: the target's behaviour depends
    /// on thread identity itself. `ConcurrentBag` is the canonical case —
    /// its per-thread work-stealing slots make `Add` from thread 1 then
    /// `TryTake` from thread 2 observably different from the renamed
    /// execution, even for identical operation sequences.
    Disabled,
}

/// One live instance of the component under test, created fresh for every
/// execution by [`TestTarget::create`] and shared by the test's threads.
///
/// The implementation must be written against the `lineup-sync` primitives
/// (or otherwise call into `lineup-sched` at its synchronization points);
/// plain `std::sync` operations are invisible to the model checker and
/// would not be interleaved.
pub trait TestInstance: Send + Sync + 'static {
    /// Performs one operation and returns its response value.
    ///
    /// Blocking operations may block (under the model scheduler); Line-Up
    /// then observes the blocking behaviour through stuck histories.
    ///
    /// # Panics
    ///
    /// May panic on invocations not in the target's catalog; panics are
    /// captured and reported as violations.
    fn invoke(&self, invocation: &Invocation) -> Value;
}

impl TestInstance for Box<dyn TestInstance> {
    fn invoke(&self, invocation: &Invocation) -> Value {
        (**self).invoke(invocation)
    }
}

/// A component under test: a factory of instances plus a catalog of
/// interesting invocations.
///
/// # Example
///
/// ```
/// use lineup::{Invocation, TestInstance, TestTarget, Value};
/// use lineup_sync::Atomic;
///
/// /// A correct concurrent counter.
/// struct CounterTarget;
///
/// struct Counter(Atomic<i64>);
///
/// impl TestInstance for Counter {
///     fn invoke(&self, inv: &Invocation) -> Value {
///         match inv.name.as_str() {
///             "inc" => {
///                 self.0.fetch_add(1);
///                 Value::Unit
///             }
///             "get" => Value::Int(self.0.load()),
///             other => panic!("unknown operation {other}"),
///         }
///     }
/// }
///
/// impl TestTarget for CounterTarget {
///     type Instance = Counter;
///     fn name(&self) -> &str { "Counter" }
///     fn create(&self) -> Counter { Counter(Atomic::new(0)) }
///     fn invocations(&self) -> Vec<Invocation> {
///         vec![Invocation::new("inc"), Invocation::new("get")]
///     }
/// }
/// ```
pub trait TestTarget: Sync {
    /// The instance type produced by [`create`](TestTarget::create).
    type Instance: TestInstance;

    /// A human-readable name for reports (e.g. `"ConcurrentQueue"`).
    fn name(&self) -> &str;

    /// Creates a fresh instance. Called once per execution, in the model's
    /// setup context: primitives may be constructed, but operations must
    /// not block.
    fn create(&self) -> Self::Instance;

    /// The catalog of invocations used by the automatic test generators
    /// ([`auto_check`](crate::auto::auto_check) enumerates prefixes of
    /// this list as its sets `I_n`; [`random_check`](crate::auto::random_check)
    /// samples from it uniformly).
    fn invocations(&self) -> Vec<Invocation>;

    /// How far thread-symmetry reduction may go for this target (see
    /// [`SymmetryPolicy`]). Defaults to the universally safe
    /// [`SymmetryPolicy::ThreadsOnly`]; data-independent collections
    /// should override with [`SymmetryPolicy::Full`], thread-identity-
    /// sensitive ones with [`SymmetryPolicy::Disabled`].
    fn symmetry_policy(&self) -> SymmetryPolicy {
        SymmetryPolicy::ThreadsOnly
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invocation_display() {
        assert_eq!(Invocation::new("TryTake").to_string(), "TryTake()");
        assert_eq!(Invocation::with_int("Add", 200).to_string(), "Add(200)");
        assert_eq!(
            Invocation::with_args("f", [Value::Int(1), Value::Bool(true)]).to_string(),
            "f(1, true)"
        );
    }

    #[test]
    fn invocation_ordering_groups_by_name_then_args() {
        let a = Invocation::with_int("Add", 1);
        let b = Invocation::with_int("Add", 2);
        let c = Invocation::new("Take");
        let mut v = vec![c.clone(), b.clone(), a.clone()];
        v.sort();
        assert_eq!(v, vec![a, b, c]);
    }
}
