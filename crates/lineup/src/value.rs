//! Argument and response values of operations.

use std::fmt;

/// A value passed to or returned from an operation of the component under
/// test.
///
/// Line-Up treats the component as a black box (§1): all it ever sees of
/// an operation is its name, argument values, and response value. `Value`
/// is the closed universe of such data, with total ordering and hashing so
/// histories can be grouped, deduplicated, and compared.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// No value (a `void` return or an argument-less invocation).
    Unit,
    /// A boolean.
    Bool(bool),
    /// An integer (covers counts, element values, phase numbers, …).
    Int(i64),
    /// A string (e.g. rendered exceptions or `ToString` results).
    Str(String),
    /// The operation failed in its by-design way (e.g. `TryTake` on an
    /// empty collection). Distinct from any payload value, matching the
    /// paper's `result="Fail"` notation in Fig. 7.
    Fail,
    /// An ordered sequence (e.g. `ToArray`, `TryPopRange` results).
    Seq(Vec<Value>),
    /// An optional payload (e.g. `TryTake` returning the taken element on
    /// success is written `Opt(Some(...))`, while "succeeded but carries
    /// nothing" is `Opt(None)`).
    Opt(Option<Box<Value>>),
}

impl Value {
    /// Convenience constructor for an integer value.
    pub fn int(v: i64) -> Self {
        Value::Int(v)
    }

    /// Convenience constructor for a sequence of integers.
    pub fn int_seq(vs: impl IntoIterator<Item = i64>) -> Self {
        Value::Seq(vs.into_iter().map(Value::Int).collect())
    }

    /// Convenience constructor for a successful optional payload.
    pub fn some(v: Value) -> Self {
        Value::Opt(Some(Box::new(v)))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<()> for Value {
    fn from(_: ()) -> Self {
        Value::Unit
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "ok"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Fail => write!(f, "Fail"),
            Value::Seq(vs) => {
                write!(f, "[")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Opt(None) => write!(f, "None"),
            Value::Opt(Some(v)) => write!(f, "Some({v})"),
        }
    }
}

/// Parses the [`Display`](fmt::Display) form of a [`Value`] back; used by
/// the observation-file parser ([`crate::observation`]).
///
/// # Errors
///
/// Returns a description of the first syntax error.
pub fn parse_value(s: &str) -> Result<Value, String> {
    let mut p = Parser {
        s: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.s.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    s: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.s.len() && self.s[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn eat(&mut self, tok: &str) -> bool {
        if self.s[self.pos..].starts_with(tok.as_bytes()) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        if self.eat("ok") {
            return Ok(Value::Unit);
        }
        if self.eat("true") {
            return Ok(Value::Bool(true));
        }
        if self.eat("false") {
            return Ok(Value::Bool(false));
        }
        if self.eat("Fail") {
            return Ok(Value::Fail);
        }
        if self.eat("None") {
            return Ok(Value::Opt(None));
        }
        if self.eat("Some(") {
            let v = self.value()?;
            self.skip_ws();
            if !self.eat(")") {
                return Err("expected ) after Some".into());
            }
            return Ok(Value::some(v));
        }
        if self.eat("[") {
            let mut items = Vec::new();
            self.skip_ws();
            if self.eat("]") {
                return Ok(Value::Seq(items));
            }
            loop {
                items.push(self.value()?);
                self.skip_ws();
                if self.eat("]") {
                    return Ok(Value::Seq(items));
                }
                if !self.eat(",") {
                    return Err("expected , or ] in sequence".into());
                }
            }
        }
        if self.pos < self.s.len() && self.s[self.pos] == b'"' {
            return self.string();
        }
        self.int()
    }

    fn string(&mut self) -> Result<Value, String> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        while self.pos < self.s.len() {
            match self.s[self.pos] {
                b'"' => {
                    self.pos += 1;
                    return Ok(Value::Str(out));
                }
                b'\\' => {
                    self.pos += 1;
                    let c = *self
                        .s
                        .get(self.pos)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    out.push(match c {
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        b'\\' => '\\',
                        b'"' => '"',
                        b'\'' => '\'',
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    });
                    self.pos += 1;
                }
                other => {
                    out.push(other as char);
                    self.pos += 1;
                }
            }
        }
        Err("unterminated string".into())
    }

    fn int(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.pos < self.s.len() && (self.s[self.pos] == b'-' || self.s[self.pos] == b'+') {
            self.pos += 1;
        }
        while self.pos < self.s.len() && self.s[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.s[start..self.pos]).unwrap();
        text.parse::<i64>()
            .map(Value::Int)
            .map_err(|e| format!("bad integer {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Value::Unit.to_string(), "ok");
        assert_eq!(Value::Int(200).to_string(), "200");
        assert_eq!(Value::Fail.to_string(), "Fail");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::int_seq([1, 2]).to_string(), "[1, 2]");
        assert_eq!(Value::some(Value::Int(5)).to_string(), "Some(5)");
        assert_eq!(Value::Opt(None).to_string(), "None");
        assert_eq!(Value::Str("x".into()).to_string(), "\"x\"");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(()), Value::Unit);
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
    }

    #[test]
    fn ordering_is_total() {
        let mut vs = vec![
            Value::Fail,
            Value::Int(1),
            Value::Unit,
            Value::Bool(false),
            Value::Seq(vec![]),
        ];
        vs.sort();
        vs.dedup();
        assert_eq!(vs.len(), 5);
    }

    #[test]
    fn fail_is_distinct_from_payloads() {
        assert_ne!(Value::Fail, Value::Int(0));
        assert_ne!(Value::Fail, Value::Unit);
        assert_ne!(Value::Fail, Value::Opt(None));
    }

    fn roundtrip(v: Value) {
        let s = v.to_string();
        assert_eq!(parse_value(&s), Ok(v), "via {s:?}");
    }

    #[test]
    fn parse_roundtrips() {
        roundtrip(Value::Unit);
        roundtrip(Value::Bool(true));
        roundtrip(Value::Bool(false));
        roundtrip(Value::Int(-42));
        roundtrip(Value::Int(0));
        roundtrip(Value::Fail);
        roundtrip(Value::Opt(None));
        roundtrip(Value::some(Value::Int(7)));
        roundtrip(Value::some(Value::Fail));
        roundtrip(Value::Seq(vec![]));
        roundtrip(Value::int_seq([1, 2, 3]));
        roundtrip(Value::Seq(vec![Value::Bool(false), Value::Unit]));
        roundtrip(Value::Str("plain".into()));
        roundtrip(Value::Str("with \"quotes\" and \\slash\n".into()));
        roundtrip(Value::Seq(vec![
            Value::some(Value::int_seq([9])),
            Value::Fail,
        ]));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_value("").is_err());
        assert!(parse_value("okx").is_err());
        assert!(parse_value("[1, 2").is_err());
        assert!(parse_value("Some(1").is_err());
        assert!(parse_value("\"unterminated").is_err());
        assert!(parse_value("12abc").is_err());
    }
}
