//! Serial-witness search (paper §2.1.4 and §4.2).
//!
//! A serial history `S` is a *witness* for a history `H` when (1) `S` is
//! serial, (2) `H|t = S|t` for every thread `t`, and (3) `<H ⊆ <S`.
//! Phase 2 of the Line-Up check reduces both its checks to witness search:
//! a full history needs a witness among the full serial histories (`A`),
//! and a stuck history needs, for each pending operation `e`, a witness
//! for `H[e]` among the stuck serial histories (`B`) — Definitions 1 and 2.

use crate::history::{History, OpIndex};
use crate::spec::{Outcome, SerialHistory, SpecIndex, ThreadKey};

/// An operation identified by `(thread, index within thread)` — the
/// identification that survives reordering into a serial witness.
pub type ThreadPos = (usize, usize);

/// A witness query: the per-thread operation sequences a witness must
/// reproduce, plus the precedence constraints it must respect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WitnessQuery {
    /// Per-thread `(invocation, outcome)` sequences — the grouping key.
    pub key: ThreadKey,
    /// Pairs `(a, b)` with `a <H b`: every witness must order `a` before
    /// `b`. Deduplicated and transitively reduced — pairs implied by the
    /// composition of two others are omitted, which shrinks the per-
    /// candidate work of [`is_witness`] without changing its verdict.
    pub precedence: Vec<(ThreadPos, ThreadPos)>,
}

impl WitnessQuery {
    /// Builds the query for a *complete* history (Definition 1, with the
    /// trivial extension: full histories of a test have no pending calls).
    ///
    /// # Panics
    ///
    /// Panics if the history has pending operations.
    pub fn for_full(h: &History) -> Self {
        Self::for_full_relaxed(h, &[])
    }

    /// Like [`for_full`](WitnessQuery::for_full), but operations whose
    /// method name appears in `async_methods` are *asynchronous*: their
    /// effects may linearize after their return (paper §6 future work,
    /// "asynchronous methods, such as the cancel method"). Concretely, the
    /// precedence constraints `a <H b` with `a` asynchronous are dropped —
    /// `a`'s linearization point may move past `b`'s, though never before
    /// `a`'s own call.
    ///
    /// # Panics
    ///
    /// Panics if the history has pending operations.
    pub fn for_full_relaxed(h: &History, async_methods: &[String]) -> Self {
        assert!(
            h.is_complete(),
            "use for_stuck on histories with pending ops"
        );
        let included: Vec<OpIndex> = (0..h.ops.len()).collect();
        Self::build_relaxed(h, &included, async_methods)
    }

    /// Builds the query for `H[e]` where `e` is a pending operation of a
    /// stuck history `H`: all complete operations of `H`, plus `e` itself
    /// as a trailing pending call (Definition 2; `H[e]` removes all
    /// pending calls except `inv(e)`).
    ///
    /// # Panics
    ///
    /// Panics if `pending` is in fact complete.
    pub fn for_stuck(h: &History, pending: OpIndex) -> Self {
        Self::for_stuck_relaxed(h, pending, &[])
    }

    /// [`for_stuck`](WitnessQuery::for_stuck) with asynchronous methods
    /// (see [`for_full_relaxed`](WitnessQuery::for_full_relaxed)).
    ///
    /// # Panics
    ///
    /// Panics if `pending` is in fact complete.
    pub fn for_stuck_relaxed(h: &History, pending: OpIndex, async_methods: &[String]) -> Self {
        assert!(
            !h.ops[pending].is_complete(),
            "H[e] requires a pending operation e"
        );
        let mut included = h.complete_ops();
        included.push(pending);
        included.sort_by_key(|&i| h.ops[i].call_pos);
        Self::build_relaxed(h, &included, async_methods)
    }

    fn build_relaxed(h: &History, included: &[OpIndex], async_methods: &[String]) -> Self {
        // Per-thread position of each included op (call order = thread
        // subhistory order by well-formedness).
        let mut key: ThreadKey = vec![Vec::new(); h.thread_count];
        let mut pos_of = vec![(0usize, 0usize); h.ops.len()];
        let mut by_thread: Vec<Vec<OpIndex>> = vec![Vec::new(); h.thread_count];
        let mut sorted = included.to_vec();
        sorted.sort_by_key(|&i| h.ops[i].call_pos);
        for &i in &sorted {
            let op = &h.ops[i];
            let outcome = match &op.response {
                Some(v) => Outcome::Returned(v.clone()),
                None => Outcome::Pending,
            };
            pos_of[i] = (op.thread, key[op.thread].len());
            key[op.thread].push((op.invocation.clone(), outcome));
            by_thread[op.thread].push(i);
        }
        let mut edges: std::collections::BTreeSet<(ThreadPos, ThreadPos)> =
            std::collections::BTreeSet::new();
        for &a in &sorted {
            // Asynchronous operations do not constrain later operations:
            // their effect may linearize past their return.
            if async_methods.contains(&h.ops[a].invocation.name) {
                continue;
            }
            for &b in &sorted {
                if a != b && h.precedes(a, b) {
                    edges.insert((pos_of[a], pos_of[b]));
                }
            }
        }
        // Transitive reduction: an edge (a, c) implied by (a, b) and
        // (b, c) is dropped. Any serial order satisfying the reduced set
        // satisfies the dropped edges too (order is transitive), so
        // witness verdicts are unchanged while `is_witness` checks fewer
        // pairs — `<H` is dense for mostly-serial histories, with up to
        // quadratically many edges for a linear reduction.
        let mids: Vec<ThreadPos> = edges
            .iter()
            .flat_map(|&(x, y)| [x, y])
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let precedence = edges
            .iter()
            .copied()
            .filter(|&(a, c)| {
                !mids.iter().any(|&b| {
                    b != a && b != c && edges.contains(&(a, b)) && edges.contains(&(b, c))
                })
            })
            .collect();
        WitnessQuery { key, precedence }
    }
}

/// Whether the serial history `s` is a witness for the query: it must have
/// the same per-thread sequences and order all precedence pairs correctly.
pub fn is_witness(s: &SerialHistory, q: &WitnessQuery) -> bool {
    if s.thread_key() != q.key {
        return false;
    }
    // Position of each (thread, k) in the serial order.
    let nthreads = q.key.len();
    let mut pos: Vec<Vec<usize>> = vec![Vec::new(); nthreads];
    for (serial_pos, op) in s.ops.iter().enumerate() {
        pos[op.thread].push(serial_pos);
    }
    q.precedence
        .iter()
        .all(|&((ta, ka), (tb, kb))| pos[ta][ka] < pos[tb][kb])
}

/// Searches the indexed observation set for a witness; returns the first
/// one found. Only the group with the query's per-thread key is scanned
/// (paper §4.2).
pub fn find_witness<'a>(index: &SpecIndex<'a>, q: &WitnessQuery) -> Option<&'a SerialHistory> {
    index
        .candidates(&q.key)
        .iter()
        .copied()
        .find(|s| is_witness(s, q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ObservationSet, SpecOp};
    use crate::target::Invocation;
    use crate::value::Value;

    fn inv(name: &str) -> Invocation {
        Invocation::new(name)
    }

    fn sop(thread: usize, name: &str, outcome: Outcome) -> SpecOp {
        SpecOp {
            thread,
            invocation: inv(name),
            outcome,
        }
    }

    fn ret(v: i64) -> Outcome {
        Outcome::Returned(Value::Int(v))
    }

    /// The paper's §2.2.1 example: two overlapping incs, then get → 1.
    /// No witness exists in the correct counter's specification: if both
    /// incs precede the get, the get must return 2.
    #[test]
    fn buggy_counter_history_has_no_witness() {
        // H: (inc A)(inc B)(ok A)(ok B)(get A)(ok(1) A)
        let mut h = History::new(2);
        let i1 = h.push_call(0, inv("inc"));
        let i2 = h.push_call(1, inv("inc"));
        h.push_return(i1, Value::Unit);
        h.push_return(i2, Value::Unit);
        let g = h.push_call(0, inv("get"));
        h.push_return(g, Value::Int(1));

        // Specification of the correct counter for this thread key: the
        // only serial histories with these per-thread op lists return 2
        // from get.
        let mut spec = ObservationSet::new();
        let u = || Outcome::Returned(Value::Unit);
        spec.insert(SerialHistory {
            thread_count: 2,
            ops: vec![
                sop(0, "inc", u()),
                sop(1, "inc", u()),
                sop(0, "get", ret(2)),
            ],
        });
        spec.insert(SerialHistory {
            thread_count: 2,
            ops: vec![
                sop(1, "inc", u()),
                sop(0, "inc", u()),
                sop(0, "get", ret(2)),
            ],
        });
        // A spurious history where get returns 1 but the per-thread key
        // differs (get=1 key group) must not be found either because of
        // ordering: place inc B after get — but then <H is violated.
        spec.insert(SerialHistory {
            thread_count: 2,
            ops: vec![
                sop(0, "inc", u()),
                sop(0, "get", ret(1)),
                sop(1, "inc", u()),
            ],
        });

        let q = WitnessQuery::for_full(&h);
        let idx = spec.index();
        // The candidate group with get=1 exists but its only member orders
        // inc B after get, violating inc B <H get.
        assert!(find_witness(&idx, &q).is_none());
    }

    /// A correct concurrent history finds its witness.
    #[test]
    fn overlapping_ops_find_witness() {
        // H: (inc A)(get B)(ok A)(ok(1) B): inc and get overlap.
        let mut h = History::new(2);
        let i = h.push_call(0, inv("inc"));
        let g = h.push_call(1, inv("get"));
        h.push_return(i, Value::Unit);
        h.push_return(g, Value::Int(1));

        let mut spec = ObservationSet::new();
        spec.insert(SerialHistory {
            thread_count: 2,
            ops: vec![
                sop(0, "inc", Outcome::Returned(Value::Unit)),
                sop(1, "get", ret(1)),
            ],
        });
        let q = WitnessQuery::for_full(&h);
        assert!(find_witness(&spec.index(), &q).is_some());
    }

    /// Precedence in H must be respected by the witness even when the
    /// per-thread key matches.
    #[test]
    fn witness_must_respect_precedence() {
        // H: a returns before b is called: a <H b.
        let mut h = History::new(2);
        let a = h.push_call(0, inv("a"));
        h.push_return(a, Value::Int(0));
        let b = h.push_call(1, inv("b"));
        h.push_return(b, Value::Int(0));

        let s_wrong = SerialHistory {
            thread_count: 2,
            ops: vec![sop(1, "b", ret(0)), sop(0, "a", ret(0))],
        };
        let s_right = SerialHistory {
            thread_count: 2,
            ops: vec![sop(0, "a", ret(0)), sop(1, "b", ret(0))],
        };
        let q = WitnessQuery::for_full(&h);
        assert!(!is_witness(&s_wrong, &q));
        assert!(is_witness(&s_right, &q));
    }

    /// The Fig. 9 situation: a stuck Wait whose H[e] has no witness
    /// because serially Wait cannot block after Set-Reset-Set.
    #[test]
    fn stuck_query_includes_only_complete_ops_plus_e() {
        // H: (Wait A)(Set B)(ok B)(Reset B)(ok B)(Set B)(ok B) #
        let mut h = History::new(2);
        let w = h.push_call(0, inv("Wait"));
        for name in ["Set", "Reset", "Set"] {
            let o = h.push_call(1, inv(name));
            h.push_return(o, Value::Unit);
        }
        h.stuck = true;

        let q = WitnessQuery::for_stuck(&h, w);
        // Thread A's key: a single pending Wait.
        assert_eq!(q.key[0], vec![(inv("Wait"), Outcome::Pending)]);
        assert_eq!(q.key[1].len(), 3);

        // B contains only (Set)(Reset)(Wait)# — the serial run where Wait
        // blocks after Reset never performs the second Set (serial stuck
        // histories end at the blocked call). It has a different thread
        // key, so it cannot be a witness.
        let mut spec = ObservationSet::new();
        let u = || Outcome::Returned(Value::Unit);
        spec.insert(SerialHistory {
            thread_count: 2,
            ops: vec![
                sop(1, "Set", u()),
                sop(1, "Reset", u()),
                sop(0, "Wait", Outcome::Pending),
            ],
        });
        assert!(find_witness(&spec.index(), &q).is_none());
    }

    /// H[e] drops other pending operations.
    #[test]
    fn stuck_query_drops_other_pending_ops() {
        let mut h = History::new(3);
        let a = h.push_call(0, inv("p"));
        let _b = h.push_call(1, inv("q"));
        let c = h.push_call(2, inv("r"));
        h.push_return(c, Value::Int(1));
        h.stuck = true;

        let q = WitnessQuery::for_stuck(&h, a);
        assert_eq!(q.key[0], vec![(inv("p"), Outcome::Pending)]);
        assert!(q.key[1].is_empty(), "other pending ops are removed");
        assert_eq!(q.key[2].len(), 1);
    }

    /// Declaring an op asynchronous drops exactly its left-hand
    /// precedence constraints.
    #[test]
    fn async_methods_relax_precedence() {
        // H: cancel returns before set is called: cancel <H set.
        let mut h = History::new(2);
        let c = h.push_call(0, inv("cancel"));
        h.push_return(c, Value::Unit);
        let s = h.push_call(1, inv("set"));
        h.push_return(s, Value::Unit);

        // Witness with set *before* cancel: invalid normally…
        let witness = SerialHistory {
            thread_count: 2,
            ops: vec![
                sop(1, "set", Outcome::Returned(Value::Unit)),
                sop(0, "cancel", Outcome::Returned(Value::Unit)),
            ],
        };
        let strict = WitnessQuery::for_full(&h);
        assert!(!is_witness(&witness, &strict));
        // …but valid once cancel's effects may land late.
        let relaxed = WitnessQuery::for_full_relaxed(&h, &["cancel".to_string()]);
        assert!(is_witness(&witness, &relaxed));
        // The other direction is still constrained: set is synchronous, so
        // a witness may not move *set* before an op that precedes it…
        // (covered by `witness_must_respect_precedence`).
    }

    /// A serial chain a <H b <H c produces only the two adjacent pairs:
    /// (a, c) is implied and dropped by the transitive reduction.
    #[test]
    fn precedence_is_transitively_reduced() {
        let mut h = History::new(3);
        for (t, name) in ["a", "b", "c"].iter().enumerate() {
            let o = h.push_call(t, inv(name));
            h.push_return(o, Value::Int(0));
        }
        let q = WitnessQuery::for_full(&h);
        assert_eq!(
            q.precedence,
            vec![((0, 0), (1, 0)), ((1, 0), (2, 0))],
            "only adjacent chain edges survive"
        );
        // The dropped edge is still enforced through the kept ones: any
        // witness putting c before a must break an adjacent pair.
        let bad = SerialHistory {
            thread_count: 3,
            ops: vec![
                sop(2, "c", ret(0)),
                sop(0, "a", ret(0)),
                sop(1, "b", ret(0)),
            ],
        };
        assert!(!is_witness(&bad, &q));
        let good = SerialHistory {
            thread_count: 3,
            ops: vec![
                sop(0, "a", ret(0)),
                sop(1, "b", ret(0)),
                sop(2, "c", ret(0)),
            ],
        };
        assert!(is_witness(&good, &q));
    }

    /// Precedence pairs come out canonically ordered and duplicate-free.
    #[test]
    fn precedence_is_deduplicated_and_sorted() {
        let mut h = History::new(4);
        // Two sequential "waves" of two parallel ops each: every op of
        // wave 1 precedes every op of wave 2 (4 cross edges, none
        // reducible, no duplicates).
        let w1a = h.push_call(0, inv("a"));
        let w1b = h.push_call(1, inv("b"));
        h.push_return(w1a, Value::Int(0));
        h.push_return(w1b, Value::Int(0));
        let w2a = h.push_call(2, inv("c"));
        let w2b = h.push_call(3, inv("d"));
        h.push_return(w2a, Value::Int(0));
        h.push_return(w2b, Value::Int(0));
        let q = WitnessQuery::for_full(&h);
        let mut sorted = q.precedence.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(q.precedence, sorted);
        assert_eq!(q.precedence.len(), 4);
    }

    /// `H[e]` where `e` is the only operation: a one-op query with no
    /// constraints, matched exactly by the serial history that blocks
    /// immediately.
    #[test]
    fn stuck_query_with_only_the_pending_op() {
        let mut h = History::new(2);
        let e = h.push_call(0, inv("Wait"));
        h.stuck = true;
        let q = WitnessQuery::for_stuck_relaxed(&h, e, &[]);
        assert_eq!(q.key[0], vec![(inv("Wait"), Outcome::Pending)]);
        assert!(q.key[1].is_empty());
        assert!(q.precedence.is_empty());
        let s = SerialHistory {
            thread_count: 2,
            ops: vec![sop(0, "Wait", Outcome::Pending)],
        };
        assert!(is_witness(&s, &q));
    }

    /// A pending operation whose method is itself asynchronous: `H[e]`
    /// still records it as pending (asynchrony relaxes *ordering*, not
    /// the pending outcome), and completed asynchronous ops before it
    /// impose no precedence on it.
    #[test]
    fn stuck_query_with_async_pending_op() {
        let mut h = History::new(2);
        let c = h.push_call(1, inv("cancel"));
        h.push_return(c, Value::Unit);
        // cancel returned before Wait was called: cancel <H Wait.
        let e = h.push_call(0, inv("Wait"));
        h.stuck = true;
        let asyncs = ["cancel".to_string(), "Wait".to_string()];
        let q = WitnessQuery::for_stuck_relaxed(&h, e, &asyncs);
        assert_eq!(q.key[0], vec![(inv("Wait"), Outcome::Pending)]);
        assert!(
            q.precedence.is_empty(),
            "async lhs drops the only edge: {:?}",
            q.precedence
        );
        // Without the relaxation the edge is present.
        let strict = WitnessQuery::for_stuck_relaxed(&h, e, &[]);
        assert_eq!(strict.precedence, vec![((1, 0), (0, 0))]);
    }

    #[test]
    #[should_panic(expected = "use for_stuck")]
    fn for_full_rejects_pending() {
        let mut h = History::new(1);
        h.push_call(0, inv("x"));
        h.stuck = true;
        WitnessQuery::for_full(&h);
    }

    #[test]
    #[should_panic(expected = "requires a pending operation")]
    fn for_stuck_rejects_complete_op() {
        let mut h = History::new(1);
        let a = h.push_call(0, inv("x"));
        h.push_return(a, Value::Unit);
        WitnessQuery::for_stuck(&h, a);
    }
}
