//! Executable ideal sequential specifications for the four [`AdtKind`]s.
//!
//! These are the reference step functions shared by the benchmark history
//! generators (`lineup-bench`) and the online monitoring service
//! (`lineup-server`): both need the *same* oracle so that a history
//! judged linearizable offline is judged linearizable online. State is
//! the element sequence as a plain `Vec<i64>` — queue front-first, stack
//! bottom-first, set and priority queue sorted ascending.

use lineup::{AdtKind, Invocation, Value};

use crate::oracle::{FnOracle, StepResult};

/// Step-function type of the ideal oracles ([`ideal_step`]).
pub type IdealStep = fn(&Vec<i64>, &Invocation) -> StepResult<Vec<i64>>;

/// An executable ideal sequential specification for `kind`, usable as a
/// [`Monitor`](crate::Monitor) oracle, starting from the empty state.
pub fn ideal_oracle(kind: AdtKind) -> FnOracle<Vec<i64>, IdealStep> {
    ideal_oracle_from(kind, Vec::new())
}

/// Like [`ideal_oracle`], but starting from a known element sequence —
/// the online monitor uses this to resume checking after discarding a
/// closed history window whose end state is `state`.
pub fn ideal_oracle_from(kind: AdtKind, state: Vec<i64>) -> FnOracle<Vec<i64>, IdealStep> {
    FnOracle::new(state, ideal_step(kind))
}

/// The raw step function behind [`ideal_oracle`] — also used to drive
/// serial simulations directly.
pub fn ideal_step(kind: AdtKind) -> IdealStep {
    match kind {
        AdtKind::Queue => queue_step,
        AdtKind::Stack => stack_step,
        AdtKind::Set => set_step,
        AdtKind::PriorityQueue => pqueue_step,
    }
}

/// Synthesizes the insert sequence that rebuilds `state` on an empty
/// object: queue elements enqueue front-first, stack elements push
/// bottom-first, set/priority-queue elements insert in sorted order.
/// Feeding these to [`Monitor::with_adt_init`](crate::Monitor::with_adt_init)
/// primes the specialized checkers with the same start state as
/// [`ideal_oracle_from`] primes the Wing–Gong search.
pub fn state_invocations(kind: AdtKind, state: &[i64]) -> Vec<Invocation> {
    let name = match kind {
        AdtKind::Queue => "Enqueue",
        AdtKind::Stack => "Push",
        AdtKind::Set => "TryAdd",
        AdtKind::PriorityQueue => "Insert",
    };
    state
        .iter()
        .map(|&v| Invocation::with_int(name, v))
        .collect()
}

/// Extracts the single int argument, or a `Panics` step result — a
/// malformed invocation is "the spec rejects this", not a crash, so the
/// online monitor can flag it instead of dying.
macro_rules! int_arg {
    ($inv:expr) => {
        match $inv.args.first() {
            Some(Value::Int(v)) => *v,
            other => {
                return StepResult::Panics(format!(
                    "ideal oracle: expected one int argument, got {other:?}"
                ))
            }
        }
    };
}

#[allow(clippy::ptr_arg)]
fn queue_step(s: &Vec<i64>, inv: &Invocation) -> StepResult<Vec<i64>> {
    match inv.name.as_str() {
        "Enqueue" => {
            let mut next = s.clone();
            next.push(int_arg!(inv));
            StepResult::Returns(Value::Unit, next)
        }
        "TryDequeue" => match s.first() {
            Some(&v) => StepResult::Returns(Value::some(Value::int(v)), s[1..].to_vec()),
            None => StepResult::Returns(Value::Fail, s.clone()),
        },
        other => StepResult::Panics(format!("queue oracle: unknown op {other}")),
    }
}

#[allow(clippy::ptr_arg)]
fn stack_step(s: &Vec<i64>, inv: &Invocation) -> StepResult<Vec<i64>> {
    match inv.name.as_str() {
        "Push" => {
            let mut next = s.clone();
            next.push(int_arg!(inv));
            StepResult::Returns(Value::Unit, next)
        }
        "TryPop" => match s.last() {
            Some(&v) => StepResult::Returns(Value::some(Value::int(v)), s[..s.len() - 1].to_vec()),
            None => StepResult::Returns(Value::Fail, s.clone()),
        },
        other => StepResult::Panics(format!("stack oracle: unknown op {other}")),
    }
}

#[allow(clippy::ptr_arg)]
fn set_step(s: &Vec<i64>, inv: &Invocation) -> StepResult<Vec<i64>> {
    // Argless read-only queries come first; everything below keys on an
    // int argument.
    if inv.name == "Count" {
        return StepResult::Returns(Value::int(s.len() as i64), s.clone());
    }
    let k = int_arg!(inv);
    let found = s.binary_search(&k);
    match inv.name.as_str() {
        "TryAdd" => match found {
            Ok(_) => StepResult::Returns(Value::Bool(false), s.clone()),
            Err(pos) => {
                let mut next = s.clone();
                next.insert(pos, k);
                StepResult::Returns(Value::Bool(true), next)
            }
        },
        // The payload of a successful remove is the key itself — a pure
        // function of the key, as the specialized set checker assumes.
        "TryRemove" => match found {
            Ok(pos) => {
                let mut next = s.clone();
                next.remove(pos);
                StepResult::Returns(Value::some(Value::int(k)), next)
            }
            Err(_) => StepResult::Returns(Value::Fail, s.clone()),
        },
        "ContainsKey" => StepResult::Returns(Value::Bool(found.is_ok()), s.clone()),
        other => StepResult::Panics(format!("set oracle: unknown op {other}")),
    }
}

#[allow(clippy::ptr_arg)]
fn pqueue_step(s: &Vec<i64>, inv: &Invocation) -> StepResult<Vec<i64>> {
    match inv.name.as_str() {
        "Insert" => {
            let p = int_arg!(inv);
            let mut next = s.clone();
            let pos = next.partition_point(|&q| q <= p);
            next.insert(pos, p);
            StepResult::Returns(Value::Unit, next)
        }
        "ExtractMin" => match s.first() {
            Some(&v) => StepResult::Returns(Value::some(Value::int(v)), s[1..].to_vec()),
            None => StepResult::Returns(Value::Fail, s.clone()),
        },
        other => StepResult::Panics(format!("pqueue oracle: unknown op {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::SeqOracle;

    fn run(kind: AdtKind, state: Vec<i64>, inv: Invocation) -> (Value, Vec<i64>) {
        match ideal_step(kind)(&state, &inv) {
            StepResult::Returns(v, next) => (v, next),
            other => panic!("unexpected step result: {other:?}"),
        }
    }

    #[test]
    fn queue_is_fifo() {
        let (v, s) = run(AdtKind::Queue, vec![1, 2], Invocation::new("TryDequeue"));
        assert_eq!(v, Value::some(Value::int(1)));
        assert_eq!(s, vec![2]);
    }

    #[test]
    fn stack_is_lifo() {
        let (v, s) = run(AdtKind::Stack, vec![1, 2], Invocation::new("TryPop"));
        assert_eq!(v, Value::some(Value::int(2)));
        assert_eq!(s, vec![1]);
    }

    #[test]
    fn state_invocations_rebuild_the_state() {
        for kind in AdtKind::ALL {
            let state = match kind {
                AdtKind::Queue | AdtKind::Stack => vec![5, 3, 9],
                _ => vec![3, 5, 9], // set/pqueue states are kept sorted
            };
            let step = ideal_step(kind);
            let mut s: Vec<i64> = Vec::new();
            for inv in state_invocations(kind, &state) {
                match step(&s, &inv) {
                    StepResult::Returns(_, next) => s = next,
                    other => panic!("rebuild step failed: {other:?}"),
                }
            }
            assert_eq!(s, state, "{kind}");
        }
    }

    #[test]
    fn ideal_oracle_from_resumes_mid_state() {
        let oracle = ideal_oracle_from(AdtKind::Queue, vec![7, 8]);
        let s0 = oracle.initial();
        match oracle.step(&s0, &Invocation::new("TryDequeue")) {
            StepResult::Returns(v, _) => assert_eq!(v, Value::some(Value::int(7))),
            other => panic!("unexpected: {other:?}"),
        }
    }
}
