//! **lineup-monitor**: a standalone linearizability monitor and a native
//! stress-test runner for the Line-Up reproduction.
//!
//! The core `lineup` crate checks histories by *looking up* serial
//! witnesses in a pre-enumerated observation set. This crate adds the
//! complementary, monitor-style backend (Wing & Gong's algorithm with
//! Lowe's state memoization and Horn & Kroening's P-compositionality):
//!
//! * [`SeqOracle`] — an executable deterministic sequential specification,
//!   stepped on demand. Write one by hand with [`FnOracle`], or let
//!   [`ReplayOracle`] derive it automatically by replaying the component
//!   itself serially (Line-Up's "the implementation is its own spec").
//! * [`Monitor`] — decides whether a recorded [`History`](lineup::History)
//!   is linearizable against the oracle, including the *stuck* variant for
//!   blocking operations and the asynchronous relaxation. It implements
//!   [`lineup::HistoryMonitor`], so it plugs into
//!   [`lineup::CheckOptions::with_monitor_backend`] as an alternative
//!   phase-2 witness backend.
//! * [`run_stress`] — executes a test matrix on real OS threads (the
//!   instrumented primitives pass through to `std::sync` outside the model
//!   checker), records call/return histories, and monitors them online.
//!
//! # Example: model checking with the monitor backend
//!
//! ```
//! use std::sync::Arc;
//! use lineup::{check, CheckOptions, Invocation, TestMatrix};
//! use lineup::doc_support::CounterTarget;
//! use lineup_monitor::monitor_backend;
//!
//! let m = TestMatrix::from_columns(vec![
//!     vec![Invocation::new("inc")],
//!     vec![Invocation::new("inc"), Invocation::new("get")],
//! ]);
//! let options = CheckOptions::new()
//!     .with_monitor_backend(monitor_backend(Arc::new(CounterTarget), &m));
//! assert!(check(&CounterTarget, &m, &options).passed());
//! ```
//!
//! # Example: native stress testing
//!
//! ```
//! use std::sync::Arc;
//! use lineup::{Invocation, TestMatrix};
//! use lineup::doc_support::CounterTarget;
//! use lineup_monitor::{Monitor, ReplayOracle, run_stress, StressOptions};
//!
//! let m = TestMatrix::from_columns(vec![
//!     vec![Invocation::new("inc")],
//!     vec![Invocation::new("get")],
//! ]);
//! let monitor = Monitor::new(ReplayOracle::new(Arc::new(CounterTarget), m.init.clone()));
//! let report = run_stress(&CounterTarget, &m, &monitor, &StressOptions {
//!     runs: 10,
//!     ..StressOptions::default()
//! });
//! assert!(report.passed());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ideal;
pub mod linearize;
pub mod oracle;
pub(crate) mod specialized;
pub mod stress;

pub use ideal::{ideal_oracle, ideal_oracle_from, ideal_step, state_invocations, IdealStep};
pub use linearize::{Monitor, MonitorStats, PartitionFn};
pub use oracle::{FnOracle, ReplayOracle, SeqOracle, StepResult, TracedOp};
pub use stress::{run_stress, StressOptions, StressReport, StressViolation};

use std::sync::Arc;

use lineup::{AdtKind, ErasedTarget, MonitorHandle, TestMatrix};

/// Builds the automatic monitor backend for a test: a [`Monitor`] over a
/// [`ReplayOracle`] that replays `target` with the matrix's init sequence,
/// wrapped for [`lineup::CheckOptions::with_monitor_backend`].
pub fn monitor_backend(
    target: Arc<dyn ErasedTarget + Send + Sync>,
    matrix: &TestMatrix,
) -> Arc<Monitor<ReplayOracle>> {
    Arc::new(Monitor::new(ReplayOracle::new(target, matrix.init.clone())))
}

/// Like [`monitor_backend`], additionally annotating the monitor with the
/// target's [`AdtKind`] (when known): checks then take the specialized
/// log-linear path for unambiguous histories and fall back to the
/// Wing–Gong search otherwise. `None` behaves exactly like
/// [`monitor_backend`].
pub fn adt_monitor_backend(
    target: Arc<dyn ErasedTarget + Send + Sync>,
    matrix: &TestMatrix,
    kind: Option<AdtKind>,
) -> Arc<Monitor<ReplayOracle>> {
    let mut monitor = Monitor::new(ReplayOracle::new(target, matrix.init.clone()))
        .with_adt_init(matrix.init.clone());
    if let Some(kind) = kind {
        monitor = monitor.with_adt_kind(kind);
    }
    Arc::new(monitor)
}

/// Convenience: the same backend as [`monitor_backend`], pre-wrapped in a
/// [`MonitorHandle`] (useful when constructing `CheckOptions` manually).
pub fn monitor_handle(
    target: Arc<dyn ErasedTarget + Send + Sync>,
    matrix: &TestMatrix,
) -> MonitorHandle {
    MonitorHandle(monitor_backend(target, matrix))
}
