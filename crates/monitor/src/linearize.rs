//! The linearizability monitor: a memoized Wing–Gong search over the
//! linearizations of a recorded history, stepping a [`SeqOracle`] on
//! demand.
//!
//! Where Line-Up's phase 2 looks a history's witness *up* in the
//! pre-enumerated observation set, the monitor *decides* the same
//! question directly: does some total order of the history's operations —
//! consistent with per-thread program order and with the precedence order
//! `<H` (relaxed for asynchronous methods) — replay against the sequential
//! oracle with exactly the recorded responses? This works for arbitrary
//! recorded histories, not only those of a pre-enumerated test, which is
//! what the native stress runner (see [`crate::stress`]) needs.
//!
//! Two classic optimizations keep the search tractable:
//!
//! * **Memoized configurations** (Lowe's extension of Wing–Gong): a search
//!   configuration is the set of linearized operations *plus the oracle
//!   state*; configurations that failed once are never re-explored. The
//!   oracle state is part of the key because the oracle is a black box —
//!   two linearizations of the same set may reach different states. An
//!   oracle whose state equality *over*-distinguishes (a
//!   [`ReplayOracle`](crate::ReplayOracle)'s state is the whole trace, so
//!   no two orders ever compare equal) supplies a coarser
//!   [`SeqOracle::canonical_key`] and the memo keys on that instead.
//! * **P-compositionality** (Horn & Kroening): when a partition function
//!   maps every operation to an independent sub-object (e.g. a dictionary
//!   key), each partition is checked on its own — the monitor then runs
//!   once per partition on a far smaller history. Any operation the
//!   function cannot place (returns `None`) disables partitioning for
//!   that history, which is always sound.

use std::collections::{BTreeMap, HashSet};
use std::sync::{Arc, Mutex};

use lineup::{
    AdtKind, FallbackReason, History, HistoryMonitor, Invocation, MonitorPathStats, OpIndex,
    Outcome, SerialHistory, SpecOp, Value,
};

use crate::oracle::{SeqOracle, StepResult, TracedOp};
use crate::specialized::{check_specialized, SpecialVerdict};

/// Maps an invocation to the independent sub-object it operates on —
/// `None` when the operation spans sub-objects (disables partitioning for
/// histories containing it). See P-compositionality in the module docs.
pub type PartitionFn = Arc<dyn Fn(&Invocation) -> Option<Value> + Send + Sync>;

/// Counters accumulated across all checks of one [`Monitor`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Histories checked (full + stuck).
    pub checks: u64,
    /// Oracle steps performed (the unit of monitoring work).
    pub oracle_steps: u64,
    /// Search configurations pruned by the memo table.
    pub memo_hits: u64,
    /// Checks that ran partitioned (P-compositionality applied).
    pub partitioned_checks: u64,
    /// Which path each check took: the specialized log-linear checker
    /// (for monitors annotated with an [`AdtKind`]) or the general
    /// Wing–Gong search, with a histogram of fallback reasons.
    pub paths: MonitorPathStats,
}

impl MonitorStats {
    /// Counters accumulated since an earlier snapshot (saturating).
    pub fn diff_since(&self, earlier: &MonitorStats) -> MonitorStats {
        MonitorStats {
            checks: self.checks.saturating_sub(earlier.checks),
            oracle_steps: self.oracle_steps.saturating_sub(earlier.oracle_steps),
            memo_hits: self.memo_hits.saturating_sub(earlier.memo_hits),
            partitioned_checks: self
                .partitioned_checks
                .saturating_sub(earlier.partitioned_checks),
            paths: self.paths.diff_since(&earlier.paths),
        }
    }
}

/// A linearizability monitor over an executable sequential oracle.
///
/// The monitor is [`Send`]`+`[`Sync`] and keeps no per-check state besides
/// its statistics, so one instance can serve a whole stress campaign (and
/// a [`ReplayOracle`](crate::ReplayOracle) inside it shares its memoized
/// replays across checks).
pub struct Monitor<O: SeqOracle> {
    oracle: O,
    partition: Option<PartitionFn>,
    adt: Option<AdtKind>,
    adt_init: Vec<Invocation>,
    stats: Mutex<MonitorStats>,
}

impl<O: SeqOracle> std::fmt::Debug for Monitor<O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Monitor")
            .field("partitioned", &self.partition.is_some())
            .finish()
    }
}

impl<O: SeqOracle> Monitor<O> {
    /// Creates a monitor over the given oracle.
    pub fn new(oracle: O) -> Self {
        Monitor {
            oracle,
            partition: None,
            adt: None,
            adt_init: Vec::new(),
            stats: Mutex::new(MonitorStats::default()),
        }
    }

    /// Annotates the target as implementing `kind`, builder style: checks
    /// route through the specialized log-linear checker first and fall
    /// back to the general search when the history is ambiguous (see
    /// [`crate::specialized`]). The annotation claims that the target,
    /// executed *serially*, behaves as the ideal ADT; with that claim the
    /// fast path agrees with the oracle search on every verdict.
    pub fn with_adt_kind(mut self, kind: AdtKind) -> Self {
        self.adt = Some(kind);
        self
    }

    /// Supplies the test's init sequence (operations executed before the
    /// recorded history begins), builder style. The specialized checkers
    /// prepend them as already-completed insertions; required whenever
    /// the oracle's start state is non-empty.
    pub fn with_adt_init(mut self, init: Vec<Invocation>) -> Self {
        self.adt_init = init;
        self
    }

    /// Enables P-compositional checking with the given partition function,
    /// builder style. Only sound when operations mapped to different keys
    /// are independent in the sequential specification (dictionary entries
    /// under distinct keys, registers of an array, …).
    pub fn with_partition(mut self, partition: PartitionFn) -> Self {
        self.partition = Some(partition);
        self
    }

    /// The oracle this monitor steps.
    pub fn oracle(&self) -> &O {
        &self.oracle
    }

    /// A snapshot of the accumulated statistics.
    pub fn stats(&self) -> MonitorStats {
        self.stats.lock().unwrap().clone()
    }

    /// The [`AdtKind`] annotation set via [`with_adt_kind`](Self::with_adt_kind),
    /// if any.
    pub fn adt_kind(&self) -> Option<AdtKind> {
        self.adt
    }

    /// Whether the *complete* history is linearizable with respect to the
    /// oracle (Definition 1 with the executable spec).
    ///
    /// # Panics
    ///
    /// Panics if the history has pending operations (use
    /// [`check_stuck`](Monitor::check_stuck)).
    pub fn check_full(&self, h: &History, async_methods: &[String]) -> bool {
        assert!(
            h.is_complete(),
            "use check_stuck on histories with pending operations"
        );
        let complete = h.complete_ops();
        self.check_groups(h, &complete, None, async_methods)
    }

    /// Whether `H[e]` — the complete operations plus the pending operation
    /// `e` — has a *stuck* linearization: the complete operations
    /// linearize with matching responses and the oracle then blocks on
    /// `e`'s invocation (Definition 2). Other pending operations are
    /// ignored, exactly as in `WitnessQuery::for_stuck`.
    ///
    /// # Panics
    ///
    /// Panics if `pending` is in fact complete.
    pub fn check_stuck(&self, h: &History, pending: OpIndex, async_methods: &[String]) -> bool {
        assert!(
            !h.ops[pending].is_complete(),
            "check_stuck requires a pending operation"
        );
        let complete = h.complete_ops();
        self.check_groups(h, &complete, Some(pending), async_methods)
    }

    /// Finds a linearization of a complete history: the serial witness the
    /// monitor's acceptance is based on, as a [`SerialHistory`] (the same
    /// form phase 1 records, so it can join an
    /// [`ObservationSet`](lineup::ObservationSet) and be serialized with
    /// [`lineup::write_observation_file`]). Partitioning is *not* used:
    /// the witness must order the whole history.
    ///
    /// # Panics
    ///
    /// Panics if the history has pending operations.
    pub fn find_linearization(
        &self,
        h: &History,
        async_methods: &[String],
    ) -> Option<SerialHistory> {
        assert!(
            h.is_complete(),
            "find_linearization requires a complete history"
        );
        let complete = h.complete_ops();
        let order = self.search(h, &complete, None, async_methods)?;
        Some(serialize_order(h, &order, None))
    }

    /// Like [`find_linearization`](Monitor::find_linearization) for a
    /// stuck history: the returned serial history ends with `e` pending.
    ///
    /// # Panics
    ///
    /// Panics if `pending` is in fact complete.
    pub fn find_stuck_linearization(
        &self,
        h: &History,
        pending: OpIndex,
        async_methods: &[String],
    ) -> Option<SerialHistory> {
        assert!(
            !h.ops[pending].is_complete(),
            "find_stuck_linearization requires a pending operation"
        );
        let complete = h.complete_ops();
        let order = self.search(h, &complete, Some(pending), async_methods)?;
        Some(serialize_order(h, &order, Some(pending)))
    }

    /// Splits the target operations into P-compositional groups and checks
    /// each; falls back to one group when partitioning is off or
    /// inapplicable.
    fn check_groups(
        &self,
        h: &History,
        complete: &[OpIndex],
        pending: Option<OpIndex>,
        async_methods: &[String],
    ) -> bool {
        {
            let mut stats = self.stats.lock().unwrap();
            stats.checks = stats.checks.saturating_add(1);
        }
        match self.try_specialized(h, pending, async_methods) {
            Ok(verdict) => {
                self.stats.lock().unwrap().paths.record_specialized();
                return verdict;
            }
            Err(reason) => self.stats.lock().unwrap().paths.record_fallback(reason),
        }
        if let Some(groups) = self.partition_groups(h, complete, pending) {
            {
                let mut stats = self.stats.lock().unwrap();
                stats.partitioned_checks = stats.partitioned_checks.saturating_add(1);
            }
            return groups
                .into_iter()
                .all(|(ops, e)| self.search(h, &ops, e, async_methods).is_some());
        }
        self.search(h, complete, pending, async_methods).is_some()
    }

    /// Attempts the specialized log-linear path: `Ok(verdict)` when the
    /// ADT-kind checker decided the history, `Err(reason)` when the check
    /// must fall back to the general search. The specialized algorithms
    /// handle neither stuck linearizations nor the asynchronous
    /// relaxation, so those route straight to the fallback.
    fn try_specialized(
        &self,
        h: &History,
        pending: Option<OpIndex>,
        async_methods: &[String],
    ) -> Result<bool, FallbackReason> {
        let kind = self.adt.ok_or(FallbackReason::Unregistered)?;
        if pending.is_some() {
            return Err(FallbackReason::PendingOps);
        }
        if !async_methods.is_empty() {
            return Err(FallbackReason::AsyncRelaxation);
        }
        match check_specialized(kind, &self.adt_init, h) {
            SpecialVerdict::Linearizable => Ok(true),
            SpecialVerdict::NotLinearizable => Ok(false),
            SpecialVerdict::Fallback(reason) => Err(reason),
        }
    }

    /// Groups target operations by partition key. `None` when partitioning
    /// is disabled or some operation has no key (sound fallback).
    /// Singleton grouping (everything one key) is returned as-is — the
    /// search cost is the same either way.
    fn partition_groups(
        &self,
        h: &History,
        complete: &[OpIndex],
        pending: Option<OpIndex>,
    ) -> Option<Vec<(Vec<OpIndex>, Option<OpIndex>)>> {
        let partition = self.partition.as_ref()?;
        let mut groups: BTreeMap<Value, (Vec<OpIndex>, Option<OpIndex>)> = BTreeMap::new();
        for &i in complete {
            let key = partition(&h.ops[i].invocation)?;
            groups.entry(key).or_default().0.push(i);
        }
        if let Some(e) = pending {
            let key = partition(&h.ops[e].invocation)?;
            groups.entry(key).or_default().1 = Some(e);
        }
        Some(groups.into_values().collect())
    }

    /// The memoized Wing–Gong search: finds a linearization of `complete`
    /// (in `h`'s relaxed precedence order) after which the oracle blocks
    /// on `pending` (if given). Returns the linearization order of the
    /// complete operations.
    fn search(
        &self,
        h: &History,
        complete: &[OpIndex],
        pending: Option<OpIndex>,
        async_methods: &[String],
    ) -> Option<Vec<OpIndex>> {
        // Target ops in call order; per-thread subsequences give program
        // order, which a witness must preserve unconditionally (H|t = S|t)
        // — the async relaxation only drops *cross-thread* constraints.
        let mut ops: Vec<OpIndex> = complete.to_vec();
        ops.sort_by_key(|&i| h.ops[i].call_pos);
        let n = ops.len();
        let mut thread_seq: Vec<Vec<usize>> = vec![Vec::new(); h.thread_count];
        for (pos, &i) in ops.iter().enumerate() {
            thread_seq[h.ops[i].thread].push(pos);
        }
        // Cross-thread precedence blockers, relaxed for async methods.
        let blockers: Vec<Vec<usize>> = ops
            .iter()
            .map(|&o| {
                ops.iter()
                    .enumerate()
                    .filter(|&(_, &p)| {
                        p != o
                            && h.precedes(p, o)
                            && h.ops[p].thread != h.ops[o].thread
                            && !async_methods.contains(&h.ops[p].invocation.name)
                    })
                    .map(|(q, _)| q)
                    .collect()
            })
            .collect();

        // The operations this search may step, in thread-major program
        // order (so searches over different interleavings of one matrix
        // share the oracle's per-universe canonicalization work). The
        // pending operation is part of the universe: a canonical key must
        // also predict whether it blocks at the end.
        let mut universe: Vec<TracedOp> = ops
            .iter()
            .map(|&i| (h.ops[i].thread, h.ops[i].invocation.clone()))
            .chain(pending.map(|e| (h.ops[e].thread, h.ops[e].invocation.clone())))
            .collect();
        universe.sort_by_key(|(t, _)| *t);

        let mut search = Search {
            h,
            oracle: &self.oracle,
            ops: &ops,
            pending,
            thread_seq: &thread_seq,
            blockers: &blockers,
            universe: &universe,
            memo: HashSet::new(),
            oracle_steps: 0,
            memo_hits: 0,
        };
        let mut mask = Bits::new(n);
        let mut chosen = Vec::with_capacity(n);
        let state = self.oracle.initial();
        let found = search.dfs(&mut mask, &state, &mut chosen);
        {
            let mut stats = self.stats.lock().unwrap();
            stats.oracle_steps = stats.oracle_steps.saturating_add(search.oracle_steps);
            stats.memo_hits = stats.memo_hits.saturating_add(search.memo_hits);
        }
        found.then_some(chosen)
    }
}

/// Builds the serial history of a found linearization.
fn serialize_order(h: &History, order: &[OpIndex], pending: Option<OpIndex>) -> SerialHistory {
    let mut ops: Vec<SpecOp> = order
        .iter()
        .map(|&i| SpecOp {
            thread: h.ops[i].thread,
            invocation: h.ops[i].invocation.clone(),
            outcome: Outcome::Returned(
                h.ops[i]
                    .response
                    .clone()
                    .expect("linearized op is complete"),
            ),
        })
        .collect();
    if let Some(e) = pending {
        ops.push(SpecOp {
            thread: h.ops[e].thread,
            invocation: h.ops[e].invocation.clone(),
            outcome: Outcome::Pending,
        });
    }
    SerialHistory {
        thread_count: h.thread_count,
        ops,
    }
}

/// The state component of a memo-table entry: the canonical key the
/// oracle derived for the state, or the state itself when the oracle
/// declined ([`SeqOracle::canonical_key`] returned `None`).
#[derive(Clone, PartialEq, Eq, Hash)]
enum MemoKey<S> {
    State(S),
    Canon(Vec<u32>),
}

/// One in-flight search (borrowed context plus the memo table).
struct Search<'a, O: SeqOracle> {
    h: &'a History,
    oracle: &'a O,
    ops: &'a [OpIndex],
    pending: Option<OpIndex>,
    thread_seq: &'a [Vec<usize>],
    blockers: &'a [Vec<usize>],
    /// Every operation the search may step, in thread-major program order
    /// (the `universe` of [`SeqOracle::canonical_key`]).
    universe: &'a [TracedOp],
    /// Failed configurations: (linearized set, oracle state key).
    memo: HashSet<(Bits, MemoKey<O::State>)>,
    oracle_steps: u64,
    memo_hits: u64,
}

impl<O: SeqOracle> Search<'_, O> {
    fn dfs(&mut self, mask: &mut Bits, state: &O::State, chosen: &mut Vec<OpIndex>) -> bool {
        if chosen.len() == self.ops.len() {
            return match self.pending {
                None => true,
                Some(e) => {
                    // The stuck serial witness ends at the blocked call:
                    // the oracle must block on e after everything else.
                    self.oracle_steps += 1;
                    matches!(
                        self.oracle
                            .step_on(state, self.h.ops[e].thread, &self.h.ops[e].invocation),
                        StepResult::Blocks
                    )
                }
            };
        }
        let key = match self.oracle.canonical_key(state, self.universe) {
            Some(canon) => MemoKey::Canon(canon),
            None => MemoKey::State(state.clone()),
        };
        if !self.memo.insert((mask.clone(), key)) {
            self.memo_hits += 1;
            return false;
        }
        // Candidates: the next-in-program-order op of each thread whose
        // cross-thread blockers have all linearized.
        for seq in self.thread_seq {
            let Some(&pos) = seq.iter().find(|&&p| !mask.get(p)) else {
                continue;
            };
            if self.blockers[pos].iter().any(|&q| !mask.get(q)) {
                continue;
            }
            let op = self.ops[pos];
            self.oracle_steps += 1;
            match self
                .oracle
                .step_on(state, self.h.ops[op].thread, &self.h.ops[op].invocation)
            {
                StepResult::Returns(v, next) if Some(&v) == self.h.ops[op].response.as_ref() => {
                    mask.set(pos);
                    chosen.push(op);
                    if self.dfs(mask, &next, chosen) {
                        return true;
                    }
                    chosen.pop();
                    mask.clear(pos);
                }
                // Mismatched response, blocking, or a panic: this op
                // cannot linearize here.
                _ => {}
            }
        }
        false
    }
}

/// A fixed-size bit set (the linearized-operations component of a memo
/// key).
#[derive(Clone, PartialEq, Eq, Hash)]
struct Bits(Vec<u64>);

impl Bits {
    fn new(n: usize) -> Self {
        Bits(vec![0; n.div_ceil(64)])
    }

    fn get(&self, i: usize) -> bool {
        self.0[i / 64] & (1 << (i % 64)) != 0
    }

    fn set(&mut self, i: usize) {
        self.0[i / 64] |= 1 << (i % 64);
    }

    fn clear(&mut self, i: usize) {
        self.0[i / 64] &= !(1 << (i % 64));
    }
}

impl<O: SeqOracle> HistoryMonitor for Monitor<O> {
    fn check_full(&self, history: &History, async_methods: &[String]) -> bool {
        Monitor::check_full(self, history, async_methods)
    }

    fn check_stuck(&self, history: &History, pending: OpIndex, async_methods: &[String]) -> bool {
        Monitor::check_stuck(self, history, pending, async_methods)
    }

    fn path_stats(&self) -> Option<MonitorPathStats> {
        Some(self.stats().paths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::FnOracle;

    /// A counter oracle: inc/get over an i64.
    fn counter() -> Monitor<FnOracle<i64, impl Fn(&i64, &Invocation) -> StepResult<i64>>> {
        Monitor::new(FnOracle::new(0i64, |s: &i64, inv: &Invocation| {
            match inv.name.as_str() {
                "inc" => StepResult::Returns(Value::Unit, s + 1),
                "get" => StepResult::Returns(Value::Int(*s), *s),
                other => StepResult::Panics(format!("unknown {other}")),
            }
        }))
    }

    fn inv(name: &str) -> Invocation {
        Invocation::new(name)
    }

    #[test]
    fn overlapping_ops_linearize() {
        // (inc A)(get B)(ok A)(ok(0) B): get must linearize before inc.
        let mut h = History::new(2);
        let i = h.push_call(0, inv("inc"));
        let g = h.push_call(1, inv("get"));
        h.push_return(i, Value::Unit);
        h.push_return(g, Value::Int(0));
        assert!(counter().check_full(&h, &[]));
    }

    #[test]
    fn lost_update_is_rejected() {
        // The §2.2.1 example: two completed incs, then get -> 1. Serially
        // impossible — get must return 2.
        let mut h = History::new(2);
        let i1 = h.push_call(0, inv("inc"));
        let i2 = h.push_call(1, inv("inc"));
        h.push_return(i1, Value::Unit);
        h.push_return(i2, Value::Unit);
        let g = h.push_call(0, inv("get"));
        h.push_return(g, Value::Int(1));
        assert!(!counter().check_full(&h, &[]));
    }

    #[test]
    fn precedence_is_respected() {
        // get -> 0 strictly AFTER inc returned: no valid linearization
        // even though get -> 0 would be fine before the inc.
        let mut h = History::new(2);
        let i = h.push_call(0, inv("inc"));
        h.push_return(i, Value::Unit);
        let g = h.push_call(1, inv("get"));
        h.push_return(g, Value::Int(0));
        assert!(!counter().check_full(&h, &[]));
    }

    #[test]
    fn async_methods_relax_cross_thread_precedence() {
        // Same history as above, but inc declared asynchronous: its
        // effect may land after get.
        let mut h = History::new(2);
        let i = h.push_call(0, inv("inc"));
        h.push_return(i, Value::Unit);
        let g = h.push_call(1, inv("get"));
        h.push_return(g, Value::Int(0));
        assert!(counter().check_full(&h, &["inc".to_string()]));
    }

    #[test]
    fn async_does_not_relax_program_order() {
        // Thread A: inc then get -> 0. Program order pins inc before get
        // even when inc is async (H|t = S|t is unconditional).
        let mut h = History::new(1);
        let i = h.push_call(0, inv("inc"));
        h.push_return(i, Value::Unit);
        let g = h.push_call(0, inv("get"));
        h.push_return(g, Value::Int(0));
        assert!(!counter().check_full(&h, &["inc".to_string()]));
    }

    /// An event oracle: Wait blocks until Set; Reset re-arms it.
    fn event() -> Monitor<FnOracle<bool, impl Fn(&bool, &Invocation) -> StepResult<bool>>> {
        Monitor::new(FnOracle::new(
            false,
            |s: &bool, inv: &Invocation| match inv.name.as_str() {
                "Set" => StepResult::Returns(Value::Unit, true),
                "Reset" => StepResult::Returns(Value::Unit, false),
                "Wait" if *s => StepResult::Returns(Value::Unit, *s),
                "Wait" => StepResult::Blocks,
                other => StepResult::Panics(format!("unknown {other}")),
            },
        ))
    }

    #[test]
    fn stuck_wait_after_reset_is_justified() {
        // (Wait A)(Set B)(ok B)(Reset B)(ok B) #: Wait may linearize after
        // Reset, where it blocks.
        let mut h = History::new(2);
        let w = h.push_call(0, inv("Wait"));
        for name in ["Set", "Reset"] {
            let o = h.push_call(1, inv(name));
            h.push_return(o, Value::Unit);
        }
        h.stuck = true;
        assert!(event().check_stuck(&h, w, &[]));
    }

    #[test]
    fn fig9_lost_wakeup_is_detected() {
        // The paper's Fig. 9: Wait stuck although the history ends after
        // Set-Reset-Set — serially Wait cannot block with the event set.
        let mut h = History::new(2);
        let w = h.push_call(0, inv("Wait"));
        for name in ["Set", "Reset", "Set"] {
            let o = h.push_call(1, inv(name));
            h.push_return(o, Value::Unit);
        }
        h.stuck = true;
        assert!(!event().check_stuck(&h, w, &[]));
    }

    #[test]
    fn stuck_check_ignores_other_pending_ops() {
        // A second pending op (thread C) is no obstacle: H[e] drops it.
        let mut h = History::new(3);
        let w = h.push_call(0, inv("Wait"));
        let _other = h.push_call(2, inv("Wait"));
        for name in ["Set", "Reset"] {
            let o = h.push_call(1, inv(name));
            h.push_return(o, Value::Unit);
        }
        h.stuck = true;
        assert!(event().check_stuck(&h, w, &[]));
    }

    #[test]
    fn linearization_is_returned_and_valid() {
        let mut h = History::new(2);
        let i = h.push_call(0, inv("inc"));
        let g = h.push_call(1, inv("get"));
        h.push_return(i, Value::Unit);
        h.push_return(g, Value::Int(1));
        let m = counter();
        let s = m.find_linearization(&h, &[]).expect("linearizable");
        assert_eq!(s.ops.len(), 2);
        // inc must come first for get to see 1.
        assert_eq!(s.ops[0].invocation, inv("inc"));
        assert_eq!(s.ops[1].outcome, Outcome::Returned(Value::Int(1)));
        // The witness is a witness in lineup's own sense.
        let q = lineup::WitnessQuery::for_full(&h);
        assert!(lineup::is_witness(&s, &q));
    }

    #[test]
    fn stuck_linearization_ends_pending() {
        let mut h = History::new(2);
        let w = h.push_call(0, inv("Wait"));
        let o = h.push_call(1, inv("Reset"));
        h.push_return(o, Value::Unit);
        h.stuck = true;
        let m = event();
        let s = m
            .find_stuck_linearization(&h, w, &[])
            .expect("wait blocks after reset");
        assert!(s.is_stuck());
        assert_eq!(s.ops.last().unwrap().invocation, inv("Wait"));
    }

    /// A two-slot register file keyed by the first argument — exercises
    /// P-compositionality.
    type Regs = (i64, i64);
    fn regs() -> Monitor<FnOracle<Regs, impl Fn(&Regs, &Invocation) -> StepResult<Regs>>> {
        let step = |s: &Regs, inv: &Invocation| {
            let key = match inv.args.first() {
                Some(Value::Int(k)) => *k,
                _ => return StepResult::Panics("missing key".into()),
            };
            let (a, b) = *s;
            match inv.name.as_str() {
                "write" => {
                    let v = match inv.args.get(1) {
                        Some(Value::Int(v)) => *v,
                        _ => return StepResult::Panics("missing value".into()),
                    };
                    let next = if key == 0 { (v, b) } else { (a, v) };
                    StepResult::Returns(Value::Unit, next)
                }
                "read" => StepResult::Returns(Value::Int(if key == 0 { a } else { b }), *s),
                other => StepResult::Panics(format!("unknown {other}")),
            }
        };
        Monitor::new(FnOracle::new((0, 0), step))
            .with_partition(Arc::new(|inv: &Invocation| inv.args.first().cloned()))
    }

    fn wr(key: i64, v: i64) -> Invocation {
        Invocation::with_args("write", [Value::Int(key), Value::Int(v)])
    }

    fn rd(key: i64) -> Invocation {
        Invocation::with_int("read", key)
    }

    #[test]
    fn partitioned_check_accepts_independent_keys() {
        // Key 0 and key 1 traffic interleaved; each key alone linearizes.
        let mut h = History::new(2);
        let w0 = h.push_call(0, wr(0, 7));
        let r1 = h.push_call(1, rd(1));
        h.push_return(w0, Value::Unit);
        h.push_return(r1, Value::Int(0));
        let r0 = h.push_call(1, rd(0));
        h.push_return(r0, Value::Int(7));
        let m = regs();
        assert!(m.check_full(&h, &[]));
        assert_eq!(m.stats().partitioned_checks, 1);
    }

    #[test]
    fn partitioned_check_rejects_per_key_violation() {
        // read(0) -> 0 strictly after write(0,7) returned: key 0 alone is
        // not linearizable.
        let mut h = History::new(2);
        let w0 = h.push_call(0, wr(0, 7));
        h.push_return(w0, Value::Unit);
        let r0 = h.push_call(1, rd(0));
        h.push_return(r0, Value::Int(0));
        assert!(!regs().check_full(&h, &[]));
    }

    #[test]
    fn memoization_prunes_repeated_configurations() {
        // Three concurrent incs followed by get -> 3: all 6 inc orders
        // collapse to identical (set, state) configurations, so the memo
        // table must register hits.
        let mut h = History::new(3);
        let ops: Vec<_> = (0..3).map(|t| h.push_call(t, inv("inc"))).collect();
        for o in ops {
            h.push_return(o, Value::Unit);
        }
        let g = h.push_call(0, inv("get"));
        h.push_return(g, Value::Int(3));
        let m = counter();
        assert!(m.check_full(&h, &[]));
        // Force full exploration of an unsatisfiable variant to see hits.
        let mut bad = History::new(3);
        let ops: Vec<_> = (0..3).map(|t| bad.push_call(t, inv("inc"))).collect();
        for o in ops {
            bad.push_return(o, Value::Unit);
        }
        let g = bad.push_call(0, inv("get"));
        bad.push_return(g, Value::Int(99));
        assert!(!m.check_full(&bad, &[]));
        assert!(m.stats().memo_hits > 0, "{:?}", m.stats());
    }

    #[test]
    fn replay_oracle_memo_fires_on_commuting_operations() {
        // Regression: the memo key used the oracle state directly, and a
        // ReplayOracle state is the whole trace — no two linearization
        // orders ever compared equal, so `BENCH_monitorcmp.json` reported
        // `memo_hits: 0` for every class. With the canonical suffix-
        // signature key, the three inc orders collapse and the exhaustive
        // rejection below must register hits.
        use crate::oracle::ReplayOracle;
        use lineup::doc_support::CounterTarget;
        let m = Monitor::new(ReplayOracle::new(Arc::new(CounterTarget), Vec::new()));
        let mut h = History::new(3);
        let ops: Vec<_> = (0..3).map(|t| h.push_call(t, inv("inc"))).collect();
        for o in ops {
            h.push_return(o, Value::Unit);
        }
        let g = h.push_call(0, inv("get"));
        h.push_return(g, Value::Int(99));
        assert!(!m.check_full(&h, &[]), "get -> 99 is serially impossible");
        assert!(m.stats().memo_hits > 0, "{:?}", m.stats());
    }

    #[test]
    fn canonical_memo_keeps_order_sensitive_linearizations_apart() {
        // Soundness guard for the canonical key: concurrent Enqueue(10)
        // and Enqueue(20) followed by dequeues observing 20 first. Only
        // the enq(20)-before-enq(10) linearization matches, and the
        // search tries the failing enq(10)-first order before it — a key
        // that collapsed the two enqueue orders would memo the failure
        // and wrongly reject the history.
        use crate::oracle::ReplayOracle;
        use lineup_collections::concurrent_queue::ConcurrentQueueTarget;
        use lineup_collections::registry::Variant;
        let m = Monitor::new(ReplayOracle::new(
            Arc::new(ConcurrentQueueTarget {
                variant: Variant::Fixed,
            }),
            Vec::new(),
        ));
        let mut h = History::new(2);
        let e10 = h.push_call(0, Invocation::with_int("Enqueue", 10));
        let e20 = h.push_call(1, Invocation::with_int("Enqueue", 20));
        h.push_return(e10, Value::Unit);
        h.push_return(e20, Value::Unit);
        let d1 = h.push_call(0, inv("TryDequeue"));
        h.push_return(d1, Value::some(Value::Int(20)));
        let d2 = h.push_call(0, inv("TryDequeue"));
        h.push_return(d2, Value::some(Value::Int(10)));
        assert!(m.check_full(&h, &[]), "20-first is a valid linearization");
    }

    #[test]
    #[should_panic(expected = "use check_stuck")]
    fn check_full_rejects_pending() {
        let mut h = History::new(1);
        h.push_call(0, inv("inc"));
        h.stuck = true;
        counter().check_full(&h, &[]);
    }

    #[test]
    #[should_panic(expected = "requires a pending operation")]
    fn check_stuck_rejects_complete() {
        let mut h = History::new(1);
        let i = h.push_call(0, inv("inc"));
        h.push_return(i, Value::Unit);
        counter().check_stuck(&h, i, &[]);
    }
}
