//! Executable sequential oracles: the specification side of the monitor.
//!
//! The witness search of `lineup` consults the *pre-enumerated*
//! observation set; a monitor instead steps a specification on demand — an
//! abstract state machine whose transitions are invocations. For Line-Up's
//! automatic setting the state machine is the component itself, replayed
//! serially: [`ReplayOracle`] runs any [`ErasedTarget`] one invocation
//! sequence at a time (with memoization), so the monitor needs no manual
//! specification either.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Mutex};

use lineup::{ErasedTarget, Invocation, Outcome, TestMatrix, Value, Violation};

/// The result of stepping an oracle with one invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepResult<S> {
    /// The operation returns this value, moving the oracle to a new state.
    Returns(Value, S),
    /// The operation blocks in this state (the serial execution is stuck —
    /// the `#` of the paper's stuck histories).
    Blocks,
    /// The operation panics — never a valid specification step.
    Panics(String),
}

/// An executable deterministic sequential specification.
///
/// States are compared and hashed for memoization, so two histories (or
/// two branches of one search) reaching the same abstract state share
/// their continuations. Determinism is a *precondition*: for a given state
/// and invocation, `step` must always produce the same result (Line-Up's
/// phase-1 determinism check establishes exactly this before any monitor
/// runs).
pub trait SeqOracle: Send + Sync {
    /// The abstract state type.
    type State: Clone + Eq + Hash;

    /// The state of a freshly created component (after any init sequence).
    fn initial(&self) -> Self::State;

    /// Performs one operation in the given state.
    fn step(&self, state: &Self::State, invocation: &Invocation) -> StepResult<Self::State>;

    /// Performs one operation *on behalf of a specific test thread*.
    ///
    /// Most sequential specifications are thread-agnostic and the default
    /// simply forwards to [`step`](SeqOracle::step). Override it for
    /// components whose serial behavior depends on the performing thread —
    /// `ConcurrentBag` with its per-thread work-stealing pools is the
    /// classic case — matching Line-Up's phase 1, which also preserves the
    /// matrix's thread placement when enumerating serial executions.
    fn step_on(
        &self,
        state: &Self::State,
        thread: usize,
        invocation: &Invocation,
    ) -> StepResult<Self::State> {
        let _ = thread;
        self.step(state, invocation)
    }
}

/// A [`SeqOracle`] defined by an initial state and a step closure — handy
/// for hand-written specifications and tests.
pub struct FnOracle<S, F> {
    initial: S,
    step: F,
}

impl<S, F> FnOracle<S, F>
where
    S: Clone + Eq + Hash + Send + Sync,
    F: Fn(&S, &Invocation) -> StepResult<S> + Send + Sync,
{
    /// Creates the oracle from an initial state and a transition function.
    pub fn new(initial: S, step: F) -> Self {
        FnOracle { initial, step }
    }
}

impl<S, F> std::fmt::Debug for FnOracle<S, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FnOracle(..)")
    }
}

impl<S, F> SeqOracle for FnOracle<S, F>
where
    S: Clone + Eq + Hash + Send + Sync,
    F: Fn(&S, &Invocation) -> StepResult<S> + Send + Sync,
{
    type State = S;

    fn initial(&self) -> S {
        self.initial.clone()
    }

    fn step(&self, state: &S, invocation: &Invocation) -> StepResult<S> {
        (self.step)(state, invocation)
    }
}

/// A traced operation: the performing test thread and its invocation.
type TracedOp = (usize, Invocation);

/// The memoized outcome of one invocation sequence.
#[derive(Debug, Clone)]
enum CachedStep {
    Returns(Value),
    Blocks,
    Panics(String),
}

/// The automatic oracle: replays the component itself, serially.
///
/// The abstract state is the `(thread, invocation)` trace performed so
/// far. A step appends one operation and re-runs the whole trace as a
/// serial test whose matrix preserves the original thread placement: the
/// trace's threads become columns, and among the serial executions of
/// that matrix (enumerated with the same phase-1 machinery the witness
/// search consults) the one realizing exactly the trace order determines
/// the outcome — the last operation either returns one specific value,
/// blocks, or panics. Keeping the placement matters for components whose
/// behavior depends on the performing thread (e.g. `ConcurrentBag`'s
/// per-thread pools); Line-Up's phase 1 preserves it the same way.
///
/// Step results are memoized per trace, shared across threads. The state
/// is "just" the trace, so two traces only share oracle work when they are
/// equal — the memoized linearization search in [`Monitor`](crate::Monitor)
/// does exactly that, and the P-compositional partitioning multiplies the
/// sharing by shrinking the traces. Each probe enumerates the serial
/// schedules of its trace matrix, so the per-step cost grows with the
/// trace's interleaving count — fine for the small matrices Line-Up tests
/// are made of, and amortized by the cache.
pub struct ReplayOracle {
    target: Arc<dyn ErasedTarget + Send + Sync>,
    init: Vec<Invocation>,
    cache: Mutex<HashMap<Vec<TracedOp>, CachedStep>>,
}

impl std::fmt::Debug for ReplayOracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplayOracle")
            .field("target", &self.target.name())
            .field("init", &self.init)
            .finish()
    }
}

impl ReplayOracle {
    /// Creates an oracle replaying `target`, running `init` (the test
    /// matrix's init sequence) before every sequence — unrecorded, exactly
    /// like the model-checking harness does.
    pub fn new(target: Arc<dyn ErasedTarget + Send + Sync>, init: Vec<Invocation>) -> Self {
        ReplayOracle {
            target,
            init,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Number of memoized invocation sequences.
    pub fn cached_sequences(&self) -> usize {
        self.cache.lock().unwrap().len()
    }

    fn probe(&self, sequence: &[TracedOp]) -> CachedStep {
        // Rebuild a test matrix with the trace's thread placement. The
        // placement is *absolute*: thread `t` becomes column `t`, with
        // empty columns for threads absent from the trace, so the harness
        // spawns the performing threads in the same positions as the
        // original run — components that key behavior on thread identity
        // (ConcurrentBag's per-slot lists and slot-order stealing) then
        // see the exact same layout.
        let width = 1 + sequence.iter().map(|(t, _)| *t).max().unwrap_or(0);
        let mut columns: Vec<Vec<Invocation>> = vec![Vec::new(); width];
        for (t, inv) in sequence {
            columns[*t].push(inv.clone());
        }
        let matrix = TestMatrix::from_columns(columns).with_init(self.init.clone());
        let (set, _, violation) = self.target.synthesize_spec(&matrix);
        // Among the serial executions, the one following exactly the trace
        // order (ops not yet invoked cannot affect earlier outcomes, so
        // its results equal those of any larger test realizing the same
        // serial prefix). Determinism — checked in phase 1 before any
        // monitor runs — makes the outcome unique.
        let mut result: Option<CachedStep> = None;
        for h in set.iter() {
            if h.ops.len() != sequence.len() {
                continue;
            }
            let realizes = h
                .ops
                .iter()
                .zip(sequence.iter())
                .all(|(op, (t, inv))| op.thread == *t && op.invocation == *inv);
            if !realizes {
                continue;
            }
            let step = match &h.ops[sequence.len() - 1].outcome {
                Outcome::Returned(v) => CachedStep::Returns(v.clone()),
                Outcome::Pending => CachedStep::Blocks,
            };
            match &result {
                None => result = Some(step),
                Some(prev) => assert!(
                    matches!(
                        (prev, &step),
                        (CachedStep::Returns(a), CachedStep::Returns(b)) if a == b
                    ) || matches!((prev, &step), (CachedStep::Blocks, CachedStep::Blocks)),
                    "replay oracle: sequential behavior of {:?} is nondeterministic",
                    sequence
                ),
            }
        }
        match result {
            Some(step) => step,
            // The trace order was not realized. With a serial panic the
            // exploration may have ended before reaching it — and a panic
            // is never a valid specification step anyway.
            None => match violation {
                Some(Violation::Panic { message, .. }) => CachedStep::Panics(message),
                _ => panic!(
                    "replay oracle: serial replay never realized its own trace \
                     (is the target nondeterministic?): {sequence:?}"
                ),
            },
        }
    }

    fn step_traced(&self, state: &[TracedOp], op: TracedOp) -> StepResult<Vec<TracedOp>> {
        let mut sequence = state.to_vec();
        sequence.push(op);
        let cached = {
            let cache = self.cache.lock().unwrap();
            cache.get(&sequence).cloned()
        };
        let step = match cached {
            Some(s) => s,
            None => {
                // Probe outside the lock: replays are the expensive part,
                // and concurrent probes of the same sequence agree anyway.
                let s = self.probe(&sequence);
                self.cache
                    .lock()
                    .unwrap()
                    .entry(sequence.clone())
                    .or_insert(s)
                    .clone()
            }
        };
        match step {
            CachedStep::Returns(v) => StepResult::Returns(v, sequence),
            CachedStep::Blocks => StepResult::Blocks,
            CachedStep::Panics(m) => StepResult::Panics(m),
        }
    }
}

impl SeqOracle for ReplayOracle {
    /// The `(thread, invocation)` trace performed so far.
    type State = Vec<TracedOp>;

    fn initial(&self) -> Vec<TracedOp> {
        Vec::new()
    }

    /// Thread-agnostic stepping: performs the operation on thread 0. Use
    /// [`step_on`](SeqOracle::step_on) (as [`Monitor`](crate::Monitor)
    /// does) to preserve thread placement.
    fn step(&self, state: &Vec<TracedOp>, invocation: &Invocation) -> StepResult<Vec<TracedOp>> {
        self.step_traced(state, (0, invocation.clone()))
    }

    fn step_on(
        &self,
        state: &Vec<TracedOp>,
        thread: usize,
        invocation: &Invocation,
    ) -> StepResult<Vec<TracedOp>> {
        self.step_traced(state, (thread, invocation.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lineup::doc_support::CounterTarget;

    fn counter_oracle() -> ReplayOracle {
        ReplayOracle::new(Arc::new(CounterTarget), Vec::new())
    }

    #[test]
    fn replay_oracle_steps_the_counter() {
        let o = counter_oracle();
        let s0 = o.initial();
        let StepResult::Returns(v, s1) = o.step(&s0, &Invocation::new("inc")) else {
            panic!("inc returns");
        };
        assert_eq!(v, Value::Unit);
        let StepResult::Returns(v, _) = o.step(&s1, &Invocation::new("get")) else {
            panic!("get returns");
        };
        assert_eq!(v, Value::Int(1));
        // From the initial state, get sees 0.
        let StepResult::Returns(v, _) = o.step(&s0, &Invocation::new("get")) else {
            panic!("get returns");
        };
        assert_eq!(v, Value::Int(0));
    }

    #[test]
    fn replay_preserves_thread_placement() {
        // For a thread-agnostic counter the placement does not change the
        // outcome, but it is part of the oracle state (distinct traces).
        let o = counter_oracle();
        let s0 = o.initial();
        let StepResult::Returns(_, s1) = o.step_on(&s0, 3, &Invocation::new("inc")) else {
            panic!("inc returns");
        };
        assert_eq!(s1, vec![(3, Invocation::new("inc"))]);
        let StepResult::Returns(v, _) = o.step_on(&s1, 1, &Invocation::new("get")) else {
            panic!("get returns");
        };
        assert_eq!(v, Value::Int(1));
    }

    #[test]
    fn replay_oracle_memoizes() {
        let o = counter_oracle();
        let s0 = o.initial();
        let _ = o.step(&s0, &Invocation::new("inc"));
        let before = o.cached_sequences();
        let _ = o.step(&s0, &Invocation::new("inc"));
        assert_eq!(o.cached_sequences(), before, "second step hits the cache");
    }

    #[test]
    fn replay_oracle_respects_init() {
        let o = ReplayOracle::new(
            Arc::new(CounterTarget),
            vec![Invocation::new("inc"), Invocation::new("inc")],
        );
        let StepResult::Returns(v, _) = o.step(&o.initial(), &Invocation::new("get")) else {
            panic!("get returns");
        };
        assert_eq!(v, Value::Int(2), "init sequence ran before the trace");
    }

    #[test]
    fn fn_oracle_works() {
        let o = FnOracle::new(0i64, |s: &i64, inv: &Invocation| match inv.name.as_str() {
            "inc" => StepResult::Returns(Value::Unit, s + 1),
            "get" => StepResult::Returns(Value::Int(*s), *s),
            "block" => StepResult::Blocks,
            other => StepResult::Panics(format!("unknown {other}")),
        });
        let s = o.initial();
        assert!(matches!(
            o.step(&s, &Invocation::new("block")),
            StepResult::Blocks
        ));
        assert!(matches!(
            o.step(&s, &Invocation::new("nope")),
            StepResult::Panics(_)
        ));
        // step_on defaults to the thread-agnostic step.
        assert!(matches!(
            o.step_on(&s, 7, &Invocation::new("block")),
            StepResult::Blocks
        ));
    }
}
