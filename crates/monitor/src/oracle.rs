//! Executable sequential oracles: the specification side of the monitor.
//!
//! The witness search of `lineup` consults the *pre-enumerated*
//! observation set; a monitor instead steps a specification on demand — an
//! abstract state machine whose transitions are invocations. For Line-Up's
//! automatic setting the state machine is the component itself, replayed
//! serially: [`ReplayOracle`] runs any [`ErasedTarget`] one invocation
//! sequence at a time (with memoization), so the monitor needs no manual
//! specification either.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Mutex};

use lineup::{ErasedTarget, Invocation, Outcome, TestMatrix, Value, Violation};

/// The result of stepping an oracle with one invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepResult<S> {
    /// The operation returns this value, moving the oracle to a new state.
    Returns(Value, S),
    /// The operation blocks in this state (the serial execution is stuck —
    /// the `#` of the paper's stuck histories).
    Blocks,
    /// The operation panics — never a valid specification step.
    Panics(String),
}

/// An executable deterministic sequential specification.
///
/// States are compared and hashed for memoization, so two histories (or
/// two branches of one search) reaching the same abstract state share
/// their continuations. Determinism is a *precondition*: for a given state
/// and invocation, `step` must always produce the same result (Line-Up's
/// phase-1 determinism check establishes exactly this before any monitor
/// runs).
pub trait SeqOracle: Send + Sync {
    /// The abstract state type.
    type State: Clone + Eq + Hash;

    /// The state of a freshly created component (after any init sequence).
    fn initial(&self) -> Self::State;

    /// Performs one operation in the given state.
    fn step(&self, state: &Self::State, invocation: &Invocation) -> StepResult<Self::State>;

    /// Performs one operation *on behalf of a specific test thread*.
    ///
    /// Most sequential specifications are thread-agnostic and the default
    /// simply forwards to [`step`](SeqOracle::step). Override it for
    /// components whose serial behavior depends on the performing thread —
    /// `ConcurrentBag` with its per-thread work-stealing pools is the
    /// classic case — matching Line-Up's phase 1, which also preserves the
    /// matrix's thread placement when enumerating serial executions.
    fn step_on(
        &self,
        state: &Self::State,
        thread: usize,
        invocation: &Invocation,
    ) -> StepResult<Self::State> {
        let _ = thread;
        self.step(state, invocation)
    }

    /// Derives a *canonical* memo key for `state`, given the `universe` of
    /// operations the current search draws from, or `None` to memoize on
    /// the state itself (the default).
    ///
    /// The linearization search in [`Monitor`](crate::Monitor) memoizes
    /// failed configurations by `(linearized set, oracle state)`, which is
    /// only as coarse as the state's equality. A [`ReplayOracle`] state is
    /// the whole trace performed so far, so two different orders of the
    /// same operations never compare equal and the memo never fires.
    /// Overriding this hook lets such an oracle collapse states that are
    /// *behaviorally* equivalent for the remainder of the search.
    ///
    /// Soundness contract: two states may map to equal keys only if they
    /// step identically (same [`StepResult`], with successor states again
    /// mapping to equal keys) on every operation sequence drawn from
    /// `universe` that extends them in per-thread program order. `universe`
    /// lists every operation the search may perform, in thread-major
    /// program order; `state` must be a subsequence of it.
    fn canonical_key(&self, state: &Self::State, universe: &[TracedOp]) -> Option<Vec<u32>> {
        let _ = (state, universe);
        None
    }
}

/// A [`SeqOracle`] defined by an initial state and a step closure — handy
/// for hand-written specifications and tests.
pub struct FnOracle<S, F> {
    initial: S,
    step: F,
}

impl<S, F> FnOracle<S, F>
where
    S: Clone + Eq + Hash + Send + Sync,
    F: Fn(&S, &Invocation) -> StepResult<S> + Send + Sync,
{
    /// Creates the oracle from an initial state and a transition function.
    pub fn new(initial: S, step: F) -> Self {
        FnOracle { initial, step }
    }
}

impl<S, F> std::fmt::Debug for FnOracle<S, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FnOracle(..)")
    }
}

impl<S, F> SeqOracle for FnOracle<S, F>
where
    S: Clone + Eq + Hash + Send + Sync,
    F: Fn(&S, &Invocation) -> StepResult<S> + Send + Sync,
{
    type State = S;

    fn initial(&self) -> S {
        self.initial.clone()
    }

    fn step(&self, state: &S, invocation: &Invocation) -> StepResult<S> {
        (self.step)(state, invocation)
    }
}

/// A traced operation: the performing test thread and its invocation —
/// the alphabet of [`ReplayOracle`] states and of the `universe` handed to
/// [`SeqOracle::canonical_key`].
pub type TracedOp = (usize, Invocation);

/// The memoized outcome of one invocation sequence.
#[derive(Debug, Clone)]
enum CachedStep {
    Returns(Value),
    Blocks,
    Panics(String),
}

/// The automatic oracle: replays the component itself, serially.
///
/// The abstract state is the `(thread, invocation)` trace performed so
/// far. A step appends one operation and re-runs the whole trace as a
/// serial test whose matrix preserves the original thread placement: the
/// trace's threads become columns, and among the serial executions of
/// that matrix (enumerated with the same phase-1 machinery the witness
/// search consults) the one realizing exactly the trace order determines
/// the outcome — the last operation either returns one specific value,
/// blocks, or panics. Keeping the placement matters for components whose
/// behavior depends on the performing thread (e.g. `ConcurrentBag`'s
/// per-thread pools); Line-Up's phase 1 preserves it the same way.
///
/// Step results are memoized per trace, shared across threads. The state
/// is "just" the trace, so trace equality alone would make the
/// linearization memo in [`Monitor`](crate::Monitor) useless (two orders
/// of the same operations never compare equal); the oracle therefore
/// implements [`SeqOracle::canonical_key`] with a *suffix signature* that
/// collapses traces the universe's serial executions cannot tell apart.
/// Each probe enumerates the serial schedules of its trace matrix, so the
/// per-step cost grows with the trace's interleaving count — fine for the
/// small matrices Line-Up tests are made of, and amortized by the cache.
pub struct ReplayOracle {
    target: Arc<dyn ErasedTarget + Send + Sync>,
    init: Vec<Invocation>,
    cache: Mutex<HashMap<Vec<TracedOp>, CachedStep>>,
    universes: Mutex<HashMap<Vec<TracedOp>, Option<Arc<UniverseSpec>>>>,
}

/// The pre-enumerated serial behavior of one search universe: every serial
/// execution of the universe's matrix, stored as the per-position
/// performing thread and outcome (`None` marks the pending operation a
/// stuck execution ends with). The suffixes of these rows below a trace
/// are its behavioral signature — see [`ReplayOracle::canonical_key`] —
/// and the interner gives each distinct suffix a stable small id.
struct UniverseSpec {
    rows: Vec<(Vec<usize>, Vec<Option<Value>>)>,
    interner: Mutex<HashMap<RowSuffix, u32>>,
}

/// One row suffix: the (thread, outcome) tail of a serial execution below
/// some trace prefix. `None` outcomes mark the pending final operation of
/// a stuck execution.
type RowSuffix = Vec<(usize, Option<Value>)>;

impl std::fmt::Debug for ReplayOracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplayOracle")
            .field("target", &self.target.name())
            .field("init", &self.init)
            .finish()
    }
}

impl ReplayOracle {
    /// Creates an oracle replaying `target`, running `init` (the test
    /// matrix's init sequence) before every sequence — unrecorded, exactly
    /// like the model-checking harness does.
    pub fn new(target: Arc<dyn ErasedTarget + Send + Sync>, init: Vec<Invocation>) -> Self {
        ReplayOracle {
            target,
            init,
            cache: Mutex::new(HashMap::new()),
            universes: Mutex::new(HashMap::new()),
        }
    }

    /// Number of memoized invocation sequences.
    pub fn cached_sequences(&self) -> usize {
        self.cache.lock().unwrap().len()
    }

    fn probe(&self, sequence: &[TracedOp]) -> CachedStep {
        // Rebuild a test matrix with the trace's thread placement. The
        // placement is *absolute*: thread `t` becomes column `t`, with
        // empty columns for threads absent from the trace, so the harness
        // spawns the performing threads in the same positions as the
        // original run — components that key behavior on thread identity
        // (ConcurrentBag's per-slot lists and slot-order stealing) then
        // see the exact same layout.
        let width = 1 + sequence.iter().map(|(t, _)| *t).max().unwrap_or(0);
        let mut columns: Vec<Vec<Invocation>> = vec![Vec::new(); width];
        for (t, inv) in sequence {
            columns[*t].push(inv.clone());
        }
        let matrix = TestMatrix::from_columns(columns).with_init(self.init.clone());
        let (set, _, violation) = self.target.synthesize_spec(&matrix);
        // Among the serial executions, the one following exactly the trace
        // order (ops not yet invoked cannot affect earlier outcomes, so
        // its results equal those of any larger test realizing the same
        // serial prefix). Determinism — checked in phase 1 before any
        // monitor runs — makes the outcome unique.
        let mut result: Option<CachedStep> = None;
        for h in set.iter() {
            if h.ops.len() != sequence.len() {
                continue;
            }
            let realizes = h
                .ops
                .iter()
                .zip(sequence.iter())
                .all(|(op, (t, inv))| op.thread == *t && op.invocation == *inv);
            if !realizes {
                continue;
            }
            let step = match &h.ops[sequence.len() - 1].outcome {
                Outcome::Returned(v) => CachedStep::Returns(v.clone()),
                Outcome::Pending => CachedStep::Blocks,
            };
            match &result {
                None => result = Some(step),
                Some(prev) => assert!(
                    matches!(
                        (prev, &step),
                        (CachedStep::Returns(a), CachedStep::Returns(b)) if a == b
                    ) || matches!((prev, &step), (CachedStep::Blocks, CachedStep::Blocks)),
                    "replay oracle: sequential behavior of {:?} is nondeterministic",
                    sequence
                ),
            }
        }
        match result {
            Some(step) => step,
            // The trace order was not realized. With a serial panic the
            // exploration may have ended before reaching it — and a panic
            // is never a valid specification step anyway.
            None => match violation {
                Some(Violation::Panic { message, .. }) => CachedStep::Panics(message),
                _ => panic!(
                    "replay oracle: serial replay never realized its own trace \
                     (is the target nondeterministic?): {sequence:?}"
                ),
            },
        }
    }

    /// The serial executions of the universe's matrix, synthesized once
    /// per distinct universe and shared by every signature computation.
    /// `None` when the serial enumeration was truncated by a panic — an
    /// incomplete row set would under-approximate the signatures, so
    /// canonicalization is declined outright for that universe.
    fn universe_spec(&self, universe: &[TracedOp]) -> Option<Arc<UniverseSpec>> {
        if let Some(cached) = self.universes.lock().unwrap().get(universe) {
            return cached.clone();
        }
        let width = 1 + universe.iter().map(|(t, _)| *t).max().unwrap_or(0);
        let mut columns: Vec<Vec<Invocation>> = vec![Vec::new(); width];
        for (t, inv) in universe {
            columns[*t].push(inv.clone());
        }
        let matrix = TestMatrix::from_columns(columns).with_init(self.init.clone());
        let (set, _, violation) = self.target.synthesize_spec(&matrix);
        let spec = if violation.is_some() {
            None
        } else {
            let rows = set
                .iter()
                .map(|h| {
                    (
                        h.ops.iter().map(|op| op.thread).collect::<Vec<_>>(),
                        h.ops
                            .iter()
                            .map(|op| match &op.outcome {
                                Outcome::Returned(v) => Some(v.clone()),
                                Outcome::Pending => None,
                            })
                            .collect::<Vec<_>>(),
                    )
                })
                .collect();
            Some(Arc::new(UniverseSpec {
                rows,
                interner: Mutex::new(HashMap::new()),
            }))
        };
        self.universes
            .lock()
            .unwrap()
            .entry(universe.to_vec())
            .or_insert(spec)
            .clone()
    }

    fn step_traced(&self, state: &[TracedOp], op: TracedOp) -> StepResult<Vec<TracedOp>> {
        let mut sequence = state.to_vec();
        sequence.push(op);
        let cached = {
            let cache = self.cache.lock().unwrap();
            cache.get(&sequence).cloned()
        };
        let step = match cached {
            Some(s) => s,
            None => {
                // Probe outside the lock: replays are the expensive part,
                // and concurrent probes of the same sequence agree anyway.
                let s = self.probe(&sequence);
                self.cache
                    .lock()
                    .unwrap()
                    .entry(sequence.clone())
                    .or_insert(s)
                    .clone()
            }
        };
        match step {
            CachedStep::Returns(v) => StepResult::Returns(v, sequence),
            CachedStep::Blocks => StepResult::Blocks,
            CachedStep::Panics(m) => StepResult::Panics(m),
        }
    }
}

impl SeqOracle for ReplayOracle {
    /// The `(thread, invocation)` trace performed so far.
    type State = Vec<TracedOp>;

    fn initial(&self) -> Vec<TracedOp> {
        Vec::new()
    }

    /// Thread-agnostic stepping: performs the operation on thread 0. Use
    /// [`step_on`](SeqOracle::step_on) (as [`Monitor`](crate::Monitor)
    /// does) to preserve thread placement.
    fn step(&self, state: &Vec<TracedOp>, invocation: &Invocation) -> StepResult<Vec<TracedOp>> {
        self.step_traced(state, (0, invocation.clone()))
    }

    fn step_on(
        &self,
        state: &Vec<TracedOp>,
        thread: usize,
        invocation: &Invocation,
    ) -> StepResult<Vec<TracedOp>> {
        self.step_traced(state, (thread, invocation.clone()))
    }

    /// The *suffix signature* of the trace: the set of ways the universe's
    /// serial executions continue below it. Two traces over the same
    /// operation set with equal signatures step identically on every
    /// remaining operation — the outcome of appending `op` is read off the
    /// rows extending the trace (operations not yet invoked cannot affect
    /// earlier outcomes, the same argument [`probe`](ReplayOracle) rests
    /// on) — so collapsing them in the memo is sound, while traces whose
    /// operation *order* matters (say, two enqueues observed by a later
    /// dequeue) keep distinct signatures. Suffixes record `(thread,
    /// outcome)` only: under a fixed linearized set, per-thread program
    /// order pins which invocation each entry denotes.
    fn canonical_key(&self, state: &Vec<TracedOp>, universe: &[TracedOp]) -> Option<Vec<u32>> {
        let spec = self.universe_spec(universe)?;
        let threads: Vec<usize> = state.iter().map(|(t, _)| *t).collect();
        let mut ids: Vec<u32> = Vec::new();
        for (row_threads, row_outcomes) in &spec.rows {
            if row_threads.len() < threads.len() || row_threads[..threads.len()] != threads[..] {
                continue;
            }
            let suffix: RowSuffix = row_threads[threads.len()..]
                .iter()
                .copied()
                .zip(row_outcomes[threads.len()..].iter().cloned())
                .collect();
            let mut interner = spec.interner.lock().unwrap();
            let next = interner.len() as u32;
            ids.push(*interner.entry(suffix).or_insert(next));
        }
        ids.sort_unstable();
        ids.dedup();
        Some(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lineup::doc_support::CounterTarget;

    fn counter_oracle() -> ReplayOracle {
        ReplayOracle::new(Arc::new(CounterTarget), Vec::new())
    }

    #[test]
    fn replay_oracle_steps_the_counter() {
        let o = counter_oracle();
        let s0 = o.initial();
        let StepResult::Returns(v, s1) = o.step(&s0, &Invocation::new("inc")) else {
            panic!("inc returns");
        };
        assert_eq!(v, Value::Unit);
        let StepResult::Returns(v, _) = o.step(&s1, &Invocation::new("get")) else {
            panic!("get returns");
        };
        assert_eq!(v, Value::Int(1));
        // From the initial state, get sees 0.
        let StepResult::Returns(v, _) = o.step(&s0, &Invocation::new("get")) else {
            panic!("get returns");
        };
        assert_eq!(v, Value::Int(0));
    }

    #[test]
    fn replay_preserves_thread_placement() {
        // For a thread-agnostic counter the placement does not change the
        // outcome, but it is part of the oracle state (distinct traces).
        let o = counter_oracle();
        let s0 = o.initial();
        let StepResult::Returns(_, s1) = o.step_on(&s0, 3, &Invocation::new("inc")) else {
            panic!("inc returns");
        };
        assert_eq!(s1, vec![(3, Invocation::new("inc"))]);
        let StepResult::Returns(v, _) = o.step_on(&s1, 1, &Invocation::new("get")) else {
            panic!("get returns");
        };
        assert_eq!(v, Value::Int(1));
    }

    #[test]
    fn replay_oracle_memoizes() {
        let o = counter_oracle();
        let s0 = o.initial();
        let _ = o.step(&s0, &Invocation::new("inc"));
        let before = o.cached_sequences();
        let _ = o.step(&s0, &Invocation::new("inc"));
        assert_eq!(o.cached_sequences(), before, "second step hits the cache");
    }

    #[test]
    fn replay_oracle_respects_init() {
        let o = ReplayOracle::new(
            Arc::new(CounterTarget),
            vec![Invocation::new("inc"), Invocation::new("inc")],
        );
        let StepResult::Returns(v, _) = o.step(&o.initial(), &Invocation::new("get")) else {
            panic!("get returns");
        };
        assert_eq!(v, Value::Int(2), "init sequence ran before the trace");
    }

    #[test]
    fn canonical_key_collapses_commuting_orders() {
        // Two incs on different threads: either order leaves the counter
        // in the same abstract state, so the suffix signatures (and hence
        // the memo keys) must coincide.
        let o = counter_oracle();
        let universe: Vec<TracedOp> = vec![
            (0, Invocation::new("inc")),
            (0, Invocation::new("get")),
            (1, Invocation::new("inc")),
        ];
        let t1 = vec![(0, Invocation::new("inc")), (1, Invocation::new("inc"))];
        let t2 = vec![(1, Invocation::new("inc")), (0, Invocation::new("inc"))];
        let k1 = o.canonical_key(&t1, &universe).expect("spec synthesized");
        let k2 = o.canonical_key(&t2, &universe).expect("spec synthesized");
        assert_eq!(k1, k2, "inc orders are behaviorally equivalent");
    }

    #[test]
    fn canonical_key_distinguishes_order_sensitive_states() {
        use lineup_collections::concurrent_queue::ConcurrentQueueTarget;
        use lineup_collections::registry::Variant;
        let o = ReplayOracle::new(
            Arc::new(ConcurrentQueueTarget {
                variant: Variant::Fixed,
            }),
            Vec::new(),
        );
        let enq = |v| Invocation::with_int("Enqueue", v);
        let universe: Vec<TracedOp> = vec![
            (0, enq(10)),
            (0, Invocation::new("TryDequeue")),
            (1, enq(20)),
        ];
        let t1 = vec![(0, enq(10)), (1, enq(20))];
        let t2 = vec![(1, enq(20)), (0, enq(10))];
        let k1 = o.canonical_key(&t1, &universe).expect("spec synthesized");
        let k2 = o.canonical_key(&t2, &universe).expect("spec synthesized");
        assert_ne!(k1, k2, "the later dequeue observes the enqueue order");
    }

    #[test]
    fn fn_oracle_works() {
        let o = FnOracle::new(0i64, |s: &i64, inv: &Invocation| match inv.name.as_str() {
            "inc" => StepResult::Returns(Value::Unit, s + 1),
            "get" => StepResult::Returns(Value::Int(*s), *s),
            "block" => StepResult::Blocks,
            other => StepResult::Panics(format!("unknown {other}")),
        });
        let s = o.initial();
        assert!(matches!(
            o.step(&s, &Invocation::new("block")),
            StepResult::Blocks
        ));
        assert!(matches!(
            o.step(&s, &Invocation::new("nope")),
            StepResult::Panics(_)
        ));
        // step_on defaults to the thread-agnostic step.
        assert!(matches!(
            o.step_on(&s, 7, &Invocation::new("block")),
            StepResult::Blocks
        ));
    }
}
