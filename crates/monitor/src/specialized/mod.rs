//! Specialized log-linear linearizability checkers for unambiguous
//! histories over known ADTs.
//!
//! The general Wing–Gong search is complete but worst-case exponential.
//! When the target is annotated with an [`AdtKind`] and the recorded
//! history is *unambiguous* — every value inserted at most once, all
//! operations within the ADT's alphabet, no pending calls — the
//! decrease-and-conquer algorithms of Lee & Mathur and the
//! interval-pattern characterizations of Abdulla et al. (see PAPERS.md)
//! decide linearizability directly from the call/return intervals, in
//! O(n log n) for queue and set and near-linear for stack and
//! priority-queue on the common path.
//!
//! Every checker is *conservative*: it returns
//! [`SpecialVerdict::Linearizable`] only when it can construct or imply a
//! witness, [`SpecialVerdict::NotLinearizable`] only for certain
//! violation patterns, and otherwise [`SpecialVerdict::Fallback`] so the
//! caller re-runs the general search. Fallback therefore preserves the
//! monitor's completeness; the specialized path is purely a fast path.
//!
//! # Slot semantics
//!
//! Linearization points are discretized into *slots*: slot `k` is the
//! gap between event positions `k` and `k+1` of the history. An
//! operation with call position `c` and return position `r` may
//! linearize in any slot of `[c, r-1]`, and the relative order of
//! operations placed in the *same* slot is free. All interval conditions
//! below are derived under exactly this discretization, which matches
//! the precedence order `<H` the general search uses. Init-sequence
//! operations (executed before the threads start and not recorded in the
//! history) are prepended as synthetic sequential operations at negative
//! positions.

pub(crate) mod pqueue;
pub(crate) mod queue;
pub(crate) mod set;
pub(crate) mod stack;

use lineup::{AdtKind, FallbackReason, History, Invocation, Value};

/// Outcome of a specialized check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SpecialVerdict {
    /// A linearization certainly exists.
    Linearizable,
    /// No linearization exists (a certain violation pattern was found).
    NotLinearizable,
    /// The specialized checker cannot decide; run the general search.
    Fallback(FallbackReason),
}

/// A classified operation with its call/return event positions.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Timed<T> {
    pub op: T,
    pub call: i64,
    pub ret: i64,
}

/// Entry point: classify the history's operations for `kind` and run the
/// matching checker. `init` is the matrix's init sequence (replayed into
/// the oracle's start state but absent from recorded histories).
pub(crate) fn check_specialized(
    kind: AdtKind,
    init: &[Invocation],
    history: &History,
) -> SpecialVerdict {
    let verdict = match kind {
        AdtKind::Queue => collect(history, init, queue::classify_init, queue::classify)
            .map(|ops| queue::check(&ops)),
        AdtKind::Stack => collect(history, init, stack::classify_init, stack::classify)
            .map(|ops| stack::check(&ops)),
        AdtKind::Set => {
            collect(history, init, set::classify_init, set::classify).map(|ops| set::check(&ops))
        }
        AdtKind::PriorityQueue => collect(history, init, pqueue::classify_init, pqueue::classify)
            .map(|ops| pqueue::check(&ops)),
    };
    match verdict {
        Ok(v) => v,
        Err(reason) => SpecialVerdict::Fallback(reason),
    }
}

/// Classifies every operation of a complete history (plus the synthetic
/// init prefix) into the ADT's typed alphabet. Any operation outside the
/// alphabet aborts classification with the fallback reason.
fn collect<T>(
    history: &History,
    init: &[Invocation],
    classify_init: impl Fn(&Invocation) -> Option<T>,
    classify: impl Fn(&Invocation, &Value) -> Result<T, FallbackReason>,
) -> Result<Vec<Timed<T>>, FallbackReason> {
    let mut out = Vec::with_capacity(init.len() + history.ops.len());
    // Init ops ran serially before all recorded events: give them
    // non-overlapping negative positions, preserving their order.
    let m = init.len() as i64;
    for (j, inv) in init.iter().enumerate() {
        let op = classify_init(inv).ok_or(FallbackReason::UnknownOp)?;
        let call = 2 * (j as i64 - m);
        out.push(Timed {
            op,
            call,
            ret: call + 1,
        });
    }
    for o in &history.ops {
        let ret = match o.return_pos {
            Some(r) => r as i64,
            None => return Err(FallbackReason::PendingOps),
        };
        let resp = o.response.as_ref().ok_or(FallbackReason::PendingOps)?;
        let op = classify(&o.invocation, resp)?;
        out.push(Timed {
            op,
            call: o.call_pos as i64,
            ret,
        });
    }
    Ok(out)
}

/// The single integer argument of an invocation, if that is its exact
/// shape.
pub(crate) fn single_int_arg(inv: &Invocation) -> Option<i64> {
    match inv.args.as_slice() {
        [Value::Int(v)] => Some(*v),
        _ => None,
    }
}

/// The integer payload of a successful `Opt(Some(Int))` response.
pub(crate) fn opt_int(resp: &Value) -> Option<i64> {
    match resp {
        Value::Opt(Some(inner)) => match inner.as_ref() {
            Value::Int(v) => Some(*v),
            _ => None,
        },
        _ => None,
    }
}

/// Sorts and merges closed integer intervals, joining adjacent ones
/// (slots are integers, so `[1,3]` and `[4,6]` cover `[1,6]` gaplessly).
pub(crate) fn merge_intervals(mut intervals: Vec<(i64, i64)>) -> Vec<(i64, i64)> {
    intervals.sort_unstable();
    let mut merged: Vec<(i64, i64)> = Vec::with_capacity(intervals.len());
    for (lo, hi) in intervals {
        match merged.last_mut() {
            Some(last) if lo <= last.1.saturating_add(1) => last.1 = last.1.max(hi),
            _ => merged.push((lo, hi)),
        }
    }
    merged
}

/// Whether `[lo, hi]` is fully covered by the merged (sorted, disjoint,
/// non-adjacent) union — i.e. contained in a single merged interval.
pub(crate) fn covers(merged: &[(i64, i64)], lo: i64, hi: i64) -> bool {
    match merged.binary_search_by(|&(a, _)| a.cmp(&lo)) {
        Ok(i) => merged[i].1 >= hi,
        Err(0) => false,
        Err(i) => merged[i - 1].1 >= hi,
    }
}

/// Incrementally builds a candidate serial witness, with support for
/// *relocating* an already-placed operation to the current end of the
/// order (the old slot becomes a tombstone). Used by the stack and
/// priority-queue greedy constructors, whose heuristics may revise an
/// earlier placement; any order they produce is validated afterwards by
/// an exact replay + precedence check, so the heuristics themselves
/// carry no soundness burden.
pub(crate) struct WitnessBuilder {
    slots: Vec<Option<usize>>,
    placed_at: Vec<usize>,
    /// Whether each operation is currently placed in the witness.
    pub linearized: Vec<bool>,
}

impl WitnessBuilder {
    pub fn new(n: usize) -> Self {
        WitnessBuilder {
            slots: Vec::with_capacity(n + n / 4),
            placed_at: vec![usize::MAX; n],
            linearized: vec![false; n],
        }
    }

    /// Appends operation `i` to the witness order.
    pub fn place(&mut self, i: usize) {
        self.linearized[i] = true;
        self.placed_at[i] = self.slots.len();
        self.slots.push(Some(i));
    }

    /// Moves the already-placed operation `i` to the current end.
    pub fn relocate(&mut self, i: usize) {
        self.slots[self.placed_at[i]] = None;
        self.place(i);
    }

    /// The final order (tombstones dropped).
    pub fn order(self) -> Vec<usize> {
        self.slots.into_iter().flatten().collect()
    }
}

/// Whether `order` respects real-time precedence: whenever
/// `ret(a) < call(b)`, `a` must come before `b`. Scanning in order, an
/// operation violates iff its return lies strictly before the call of
/// some operation already placed.
pub(crate) fn respects_precedence<T>(ops: &[Timed<T>], order: &[usize]) -> bool {
    let mut max_call = i64::MIN;
    for &i in order {
        if ops[i].ret < max_call {
            return false;
        }
        max_call = max_call.max(ops[i].call);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_joins_overlapping_and_adjacent() {
        let merged = merge_intervals(vec![(5, 9), (1, 3), (4, 6), (20, i64::MAX)]);
        assert_eq!(merged, vec![(1, 9), (20, i64::MAX)]);
    }

    #[test]
    fn covers_requires_single_interval_containment() {
        let merged = vec![(1, 9), (20, i64::MAX)];
        assert!(covers(&merged, 1, 9));
        assert!(covers(&merged, 3, 3));
        assert!(covers(&merged, 25, 1_000_000));
        assert!(!covers(&merged, 0, 2));
        assert!(!covers(&merged, 9, 20));
        assert!(!covers(&merged, 10, 12));
    }
}
