//! Specialized checker for unambiguous min-priority-queue histories.
//!
//! Same architecture as the stack checker: a sound greedy constructive
//! accept, a set of certain-reject patterns, and a conservative
//! fallback.
//!
//! * **Verified greedy accept** — process operations in return order
//!   with a sorted present-set, forcing unlinearized operations in the
//!   slot just before their return; a forced `ExtractMin = p` first
//!   linearizes `Insert p` if needed, then per smaller present priority
//!   either cascades its callable extract or relocates its insert past
//!   the extract (overlapping inserts linearized later instead). The
//!   candidate order is validated exactly afterwards — permutation,
//!   real-time precedence, min-queue replay — so accepts are sound
//!   regardless of which heuristics fired.
//! * **Certain rejects** — matching (extract of a value never inserted,
//!   duplicate extracts), causality (`extract` completes before `insert`
//!   begins), the empty-report covering argument, and *priority
//!   domination*: priorities `v < w` where the forced-presence interval
//!   of `v` — `[ret(insert v), call(extract v) − 1]`, unbounded if `v`
//!   is never extracted — covers every candidate slot of `extract(w)`,
//!   so the smaller `v` is present wherever `extract(w)` linearizes and
//!   `ExtractMin` could not have returned `w`.

use std::collections::{BTreeSet, HashMap};

use lineup::{FallbackReason, Invocation, Value};

use super::{
    covers, merge_intervals, opt_int, respects_precedence, single_int_arg, SpecialVerdict, Timed,
    WitnessBuilder,
};

/// Priority-queue alphabet. Priorities double as values, so unambiguity
/// means every priority is inserted at most once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PqOp {
    /// `Insert p` returning `Unit`.
    Insert(i64),
    /// `ExtractMin` returning `Some(p)`.
    ExtractSome(i64),
    /// `ExtractMin` reporting empty (`Fail`).
    ExtractEmpty,
}

/// Classifies an init-sequence invocation (must be an insert).
pub(crate) fn classify_init(inv: &Invocation) -> Option<PqOp> {
    match inv.name.as_str() {
        "Insert" => single_int_arg(inv).map(PqOp::Insert),
        _ => None,
    }
}

/// Classifies a recorded operation, or reports why it falls outside the
/// priority-queue alphabet.
pub(crate) fn classify(inv: &Invocation, resp: &Value) -> Result<PqOp, FallbackReason> {
    match (inv.name.as_str(), resp) {
        ("Insert", Value::Unit) => single_int_arg(inv)
            .map(PqOp::Insert)
            .ok_or(FallbackReason::UnknownOp),
        ("ExtractMin", Value::Fail) if inv.args.is_empty() => Ok(PqOp::ExtractEmpty),
        ("ExtractMin", _) if inv.args.is_empty() => opt_int(resp)
            .map(PqOp::ExtractSome)
            .ok_or(FallbackReason::UnknownOp),
        _ => Err(FallbackReason::UnknownOp),
    }
}

/// Decides (or declines) linearizability of a classified, complete
/// priority-queue history.
pub(crate) fn check(ops: &[Timed<PqOp>]) -> SpecialVerdict {
    let mut insert_of: HashMap<i64, usize> = HashMap::new();
    for (i, t) in ops.iter().enumerate() {
        if let PqOp::Insert(p) = t.op {
            if insert_of.insert(p, i).is_some() {
                return SpecialVerdict::Fallback(FallbackReason::DuplicateValue);
            }
        }
    }
    let mut extract_of: HashMap<i64, usize> = HashMap::new();
    let mut empties: Vec<(i64, i64)> = Vec::new();
    for (i, t) in ops.iter().enumerate() {
        match t.op {
            PqOp::Insert(_) => {}
            PqOp::ExtractSome(p) => {
                if extract_of.insert(p, i).is_some() {
                    return SpecialVerdict::NotLinearizable;
                }
            }
            PqOp::ExtractEmpty => empties.push((t.call, t.ret)),
        }
    }
    for (p, &xi) in &extract_of {
        match insert_of.get(p) {
            None => return SpecialVerdict::NotLinearizable,
            Some(&ii) => {
                if ops[xi].ret <= ops[ii].call {
                    return SpecialVerdict::NotLinearizable;
                }
            }
        }
    }

    // Empty-report covering.
    if !empties.is_empty() {
        let mut blocked: Vec<(i64, i64)> = Vec::new();
        for (p, &ii) in &insert_of {
            let hi = match extract_of.get(p) {
                Some(&xi) => ops[xi].call - 1,
                None => i64::MAX,
            };
            if ops[ii].ret <= hi {
                blocked.push((ops[ii].ret, hi));
            }
        }
        let merged = merge_intervals(blocked);
        for &(c, r) in &empties {
            if covers(&merged, c, r - 1) {
                return SpecialVerdict::NotLinearizable;
            }
        }
    }

    if greedy_accept(ops, &insert_of, &extract_of) {
        return SpecialVerdict::Linearizable;
    }

    // Priority domination: a smaller priority provably present across
    // the whole window of a larger priority's extract.
    let mut prios: Vec<i64> = insert_of.keys().copied().collect();
    prios.sort_unstable();
    for (vi, &v) in prios.iter().enumerate() {
        let iv = insert_of[&v];
        let v_hi = match extract_of.get(&v) {
            Some(&xv) => ops[xv].call - 1,
            None => i64::MAX,
        };
        for &w in &prios[vi + 1..] {
            if let Some(&xw) = extract_of.get(&w) {
                if ops[iv].ret <= ops[xw].call && ops[xw].ret - 1 <= v_hi {
                    return SpecialVerdict::NotLinearizable;
                }
            }
        }
    }
    SpecialVerdict::Fallback(FallbackReason::Inconclusive)
}

/// Attempts to build an explicit linearization greedily (see module
/// docs), then validates it exactly. Returns `true` on success; `false`
/// means "don't know".
fn greedy_accept(
    ops: &[Timed<PqOp>],
    insert_of: &HashMap<i64, usize>,
    extract_of: &HashMap<i64, usize>,
) -> bool {
    let order = greedy_witness(ops, insert_of, extract_of);
    verify_witness(ops, &order)
}

/// Builds a candidate witness order. Heuristics (soundness-free —
/// [`verify_witness`] is the authority): operations are processed in
/// return order, each linearized by its own return at the latest; a
/// forced `extract(p)` first linearizes `insert(p)` if needed, then for
/// every smaller present priority either cascades its callable extract
/// (each is the minimum at its turn) or *relocates* its insert to just
/// after this extract — the overlapping insert linearizes later instead;
/// a forced empty-report extracts what it can and relocates the
/// remaining inserts past itself.
fn greedy_witness(
    ops: &[Timed<PqOp>],
    insert_of: &HashMap<i64, usize>,
    extract_of: &HashMap<i64, usize>,
) -> Vec<usize> {
    let n = ops.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by_key(|&i| ops[i].ret);
    let mut b = WitnessBuilder::new(n);
    let mut present: BTreeSet<i64> = BTreeSet::new();
    for &x in &order {
        if b.linearized[x] {
            continue;
        }
        let deadline = ops[x].ret;
        match ops[x].op {
            PqOp::Insert(p) => {
                b.place(x);
                present.insert(p);
            }
            PqOp::ExtractSome(p) => {
                if !present.contains(&p) {
                    if let Some(&ip) = insert_of.get(&p) {
                        if !b.linearized[ip] {
                            b.place(ip);
                            present.insert(p);
                        }
                    }
                }
                // Smaller present priorities must go before this extract
                // (cascade) or have their inserts deferred past it.
                let smaller: Vec<i64> = present.range(..p).copied().collect();
                let mut deferred: Vec<i64> = Vec::new();
                for u in smaller {
                    match extract_of.get(&u) {
                        Some(&xu) if !b.linearized[xu] && ops[xu].call < deadline => {
                            b.place(xu);
                            present.remove(&u);
                        }
                        _ => {
                            present.remove(&u);
                            deferred.push(u);
                        }
                    }
                }
                present.remove(&p);
                b.place(x);
                for &u in &deferred {
                    b.relocate(insert_of[&u]);
                    present.insert(u);
                }
            }
            PqOp::ExtractEmpty => {
                let all: Vec<i64> = present.iter().copied().collect();
                let mut deferred: Vec<i64> = Vec::new();
                for u in all {
                    match extract_of.get(&u) {
                        Some(&xu) if !b.linearized[xu] && ops[xu].call < deadline => {
                            b.place(xu);
                            present.remove(&u);
                        }
                        _ => {
                            present.remove(&u);
                            deferred.push(u);
                        }
                    }
                }
                b.place(x);
                for &u in &deferred {
                    b.relocate(insert_of[&u]);
                    present.insert(u);
                }
            }
        }
    }
    b.order()
}

/// Exact witness validation: full permutation, real-time precedence,
/// and a min-priority-queue replay (every extract takes the minimum,
/// every empty-report sees an empty queue). Any `true` is a sound
/// accept.
fn verify_witness(ops: &[Timed<PqOp>], order: &[usize]) -> bool {
    if order.len() != ops.len() || !respects_precedence(ops, order) {
        return false;
    }
    let mut present: BTreeSet<i64> = BTreeSet::new();
    for &i in order {
        match ops[i].op {
            PqOp::Insert(p) => {
                if !present.insert(p) {
                    return false;
                }
            }
            PqOp::ExtractSome(p) => {
                if present.iter().next() != Some(&p) {
                    return false;
                }
                present.remove(&p);
            }
            PqOp::ExtractEmpty => {
                if !present.is_empty() {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(op: PqOp, call: i64, ret: i64) -> Timed<PqOp> {
        Timed { op, call, ret }
    }

    #[test]
    fn sequential_min_order_accepts() {
        let ops = vec![
            t(PqOp::Insert(5), 0, 1),
            t(PqOp::Insert(3), 2, 3),
            t(PqOp::ExtractSome(3), 4, 5),
            t(PqOp::ExtractSome(5), 6, 7),
            t(PqOp::ExtractEmpty, 8, 9),
        ];
        assert_eq!(check(&ops), SpecialVerdict::Linearizable);
    }

    #[test]
    fn extracting_larger_while_smaller_forced_present_rejects() {
        // 3 is inserted (done by pos 1) and never extracted, yet
        // ExtractMin later returns 5.
        let ops = vec![
            t(PqOp::Insert(3), 0, 1),
            t(PqOp::Insert(5), 2, 3),
            t(PqOp::ExtractSome(5), 4, 5),
        ];
        assert_eq!(check(&ops), SpecialVerdict::NotLinearizable);
    }

    #[test]
    fn overlapping_insert_excuses_larger_extract() {
        // insert(3) overlaps extract(5): extract first, insert after.
        let ops = vec![
            t(PqOp::Insert(5), 0, 1),
            t(PqOp::Insert(3), 2, 6),
            t(PqOp::ExtractSome(5), 3, 4),
            t(PqOp::ExtractSome(3), 7, 8),
        ];
        assert_eq!(check(&ops), SpecialVerdict::Linearizable);
    }

    #[test]
    fn forced_cascade_of_smaller_priorities_accepts() {
        // extract(7) forces extracting 1 and 3 first; both callable.
        let ops = vec![
            t(PqOp::Insert(1), 0, 1),
            t(PqOp::Insert(3), 2, 3),
            t(PqOp::Insert(7), 4, 5),
            t(PqOp::ExtractSome(7), 6, 11),
            t(PqOp::ExtractSome(1), 7, 12),
            t(PqOp::ExtractSome(3), 8, 13),
        ];
        assert_eq!(check(&ops), SpecialVerdict::Linearizable);
    }

    #[test]
    fn extract_before_insert_rejects() {
        let ops = vec![t(PqOp::ExtractSome(1), 0, 1), t(PqOp::Insert(1), 2, 3)];
        assert_eq!(check(&ops), SpecialVerdict::NotLinearizable);
    }

    #[test]
    fn unmatched_extract_rejects() {
        assert_eq!(
            check(&[t(PqOp::ExtractSome(9), 0, 1)]),
            SpecialVerdict::NotLinearizable
        );
    }

    #[test]
    fn empty_report_on_provably_nonempty_pq_rejects() {
        let ops = vec![t(PqOp::Insert(1), 0, 1), t(PqOp::ExtractEmpty, 2, 3)];
        assert_eq!(check(&ops), SpecialVerdict::NotLinearizable);
    }

    #[test]
    fn duplicate_insert_falls_back() {
        let ops = vec![
            t(PqOp::Insert(1), 0, 1),
            t(PqOp::Insert(1), 2, 3),
            t(PqOp::ExtractSome(1), 4, 5),
        ];
        assert_eq!(
            check(&ops),
            SpecialVerdict::Fallback(FallbackReason::DuplicateValue)
        );
    }
}
