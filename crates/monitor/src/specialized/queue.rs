//! Specialized checker for unambiguous FIFO-queue histories.
//!
//! For a complete history in which every value is enqueued at most once,
//! linearizability is equivalent to the absence of four interval
//! patterns (the queue violation characterization of Bouajjani, Emmi,
//! Enea & Hamza; cf. Abdulla et al. in PAPERS.md):
//!
//! * **Q0 (matching)** — a dequeue returns a value never enqueued, or
//!   two dequeues return the same (uniquely-enqueued) value.
//! * **Q1 (causality)** — a dequeue of `v` completes before the enqueue
//!   of `v` begins.
//! * **Q2 (FIFO)** — `enq(v) <H enq(w)`, `w` is dequeued, and either `v`
//!   is never dequeued or `deq(w) <H deq(v)`: `w` overtook `v`.
//! * **Q3 (empty)** — a `TryDequeue` that reported *empty* has every
//!   candidate slot covered by some value's forced-presence interval
//!   `[ret(enq v), call(deq v) − 1]` (unbounded if `v` is never
//!   dequeued), so no linearization point can see an empty queue.
//!
//! All four are decided in O(n log n): hash-join for Q0/Q1, a sort +
//! prefix-maximum + binary search for Q2, and interval merging for Q3.
//! Duplicate *enqueues* make matching ambiguous and fall back to the
//! general search.

use std::collections::HashMap;

use lineup::{FallbackReason, Invocation, Value};

use super::{covers, merge_intervals, opt_int, single_int_arg, SpecialVerdict, Timed};

/// Queue alphabet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum QueueOp {
    /// `Enqueue v` / `Add v` returning `Unit`.
    Enq(i64),
    /// `TryDequeue` / `TryTake` returning `Some(v)`.
    DeqSome(i64),
    /// `TryDequeue` / `TryTake` reporting empty (`Fail`).
    DeqEmpty,
}

/// Classifies an init-sequence invocation (must be an enqueue).
pub(crate) fn classify_init(inv: &Invocation) -> Option<QueueOp> {
    match inv.name.as_str() {
        "Enqueue" | "Add" => single_int_arg(inv).map(QueueOp::Enq),
        _ => None,
    }
}

/// Classifies a recorded operation, or reports why it falls outside the
/// queue alphabet.
pub(crate) fn classify(inv: &Invocation, resp: &Value) -> Result<QueueOp, FallbackReason> {
    match (inv.name.as_str(), resp) {
        ("Enqueue" | "Add", Value::Unit) => single_int_arg(inv)
            .map(QueueOp::Enq)
            .ok_or(FallbackReason::UnknownOp),
        ("TryDequeue" | "TryTake", Value::Fail) if inv.args.is_empty() => Ok(QueueOp::DeqEmpty),
        ("TryDequeue" | "TryTake", _) if inv.args.is_empty() => opt_int(resp)
            .map(QueueOp::DeqSome)
            .ok_or(FallbackReason::UnknownOp),
        _ => Err(FallbackReason::UnknownOp),
    }
}

/// Decides linearizability of a classified, complete queue history.
pub(crate) fn check(ops: &[Timed<QueueOp>]) -> SpecialVerdict {
    // Pass 1: index enqueues. A duplicate enqueue value breaks the
    // unambiguity precondition of every pattern below.
    let mut enq: HashMap<i64, (i64, i64)> = HashMap::new();
    for t in ops {
        if let QueueOp::Enq(v) = t.op {
            if enq.insert(v, (t.call, t.ret)).is_some() {
                return SpecialVerdict::Fallback(FallbackReason::DuplicateValue);
            }
        }
    }

    // Pass 2: index dequeues; Q0 duplicates are certain violations
    // because the matching enqueue is unique.
    let mut deq: HashMap<i64, (i64, i64)> = HashMap::new();
    let mut empties: Vec<(i64, i64)> = Vec::new();
    for t in ops {
        match t.op {
            QueueOp::Enq(_) => {}
            QueueOp::DeqSome(v) => {
                if deq.insert(v, (t.call, t.ret)).is_some() {
                    return SpecialVerdict::NotLinearizable;
                }
            }
            QueueOp::DeqEmpty => empties.push((t.call, t.ret)),
        }
    }

    // Q0 + Q1.
    for (v, &(_c_d, r_d)) in &deq {
        match enq.get(v) {
            None => return SpecialVerdict::NotLinearizable,
            Some(&(c_e, _r_e)) => {
                if r_d <= c_e {
                    return SpecialVerdict::NotLinearizable;
                }
            }
        }
    }

    // Q2 (FIFO overtaking): violation iff some enqueued value v has
    // ret(enq v) < call(enq w) for a dequeued w with
    // call(deq v) > ret(deq w) (call(deq v) = +inf when v is never
    // dequeued). Sorting by ret(enq) and keeping a prefix maximum of
    // call(deq) turns the existential into a binary search.
    let mut by_enq_ret: Vec<(i64, i64)> = enq
        .iter()
        .map(|(v, &(_c_e, r_e))| {
            let c_d = deq.get(v).map(|&(c, _)| c).unwrap_or(i64::MAX);
            (r_e, c_d)
        })
        .collect();
    by_enq_ret.sort_unstable();
    let mut prefix_max: Vec<i64> = Vec::with_capacity(by_enq_ret.len() + 1);
    prefix_max.push(i64::MIN);
    for &(_, c_d) in &by_enq_ret {
        prefix_max.push((*prefix_max.last().unwrap()).max(c_d));
    }
    for (w, &(c_ew, _r_ew)) in &enq {
        if let Some(&(_c_dw, r_dw)) = deq.get(w) {
            let earlier = by_enq_ret.partition_point(|&(r_e, _)| r_e < c_ew);
            if prefix_max[earlier] > r_dw {
                return SpecialVerdict::NotLinearizable;
            }
        }
    }

    // Q3 (empty dequeues): value v forcibly occupies slots
    // [ret(enq v), call(deq v) - 1]; an empty-report whose candidate
    // slots [call, ret-1] are fully covered by the union of those
    // intervals is a certain violation — and an uncovered slot always
    // admits a witness (place enqueues late, dequeues early).
    if !empties.is_empty() {
        let mut blocked: Vec<(i64, i64)> = Vec::new();
        for (v, &(_c_e, r_e)) in &enq {
            let hi = match deq.get(v) {
                Some(&(c_d, _r_d)) => c_d - 1,
                None => i64::MAX,
            };
            if r_e <= hi {
                blocked.push((r_e, hi));
            }
        }
        let merged = merge_intervals(blocked);
        for &(c, r) in &empties {
            if covers(&merged, c, r - 1) {
                return SpecialVerdict::NotLinearizable;
            }
        }
    }

    SpecialVerdict::Linearizable
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(op: QueueOp, call: i64, ret: i64) -> Timed<QueueOp> {
        Timed { op, call, ret }
    }

    #[test]
    fn sequential_fifo_accepts() {
        let ops = vec![
            t(QueueOp::Enq(1), 0, 1),
            t(QueueOp::Enq(2), 2, 3),
            t(QueueOp::DeqSome(1), 4, 5),
            t(QueueOp::DeqSome(2), 6, 7),
            t(QueueOp::DeqEmpty, 8, 9),
        ];
        assert_eq!(check(&ops), SpecialVerdict::Linearizable);
    }

    #[test]
    fn overlapping_enqueues_may_commute() {
        // enq(1) and enq(2) overlap: dequeuing 2 first is linearizable.
        let ops = vec![
            t(QueueOp::Enq(1), 0, 3),
            t(QueueOp::Enq(2), 1, 2),
            t(QueueOp::DeqSome(2), 4, 5),
            t(QueueOp::DeqSome(1), 6, 7),
        ];
        assert_eq!(check(&ops), SpecialVerdict::Linearizable);
    }

    #[test]
    fn fifo_overtaking_rejects() {
        // enq(1) strictly precedes enq(2), but 2 is dequeued first.
        let ops = vec![
            t(QueueOp::Enq(1), 0, 1),
            t(QueueOp::Enq(2), 2, 3),
            t(QueueOp::DeqSome(2), 4, 5),
            t(QueueOp::DeqSome(1), 6, 7),
        ];
        assert_eq!(check(&ops), SpecialVerdict::NotLinearizable);
    }

    #[test]
    fn lost_value_rejects() {
        // enq(1) strictly precedes enq(2); 2 is dequeued, 1 never is.
        let ops = vec![
            t(QueueOp::Enq(1), 0, 1),
            t(QueueOp::Enq(2), 2, 3),
            t(QueueOp::DeqSome(2), 4, 5),
        ];
        assert_eq!(check(&ops), SpecialVerdict::NotLinearizable);
    }

    #[test]
    fn dequeue_before_enqueue_rejects() {
        let ops = vec![t(QueueOp::DeqSome(1), 0, 1), t(QueueOp::Enq(1), 2, 3)];
        assert_eq!(check(&ops), SpecialVerdict::NotLinearizable);
    }

    #[test]
    fn unmatched_and_duplicate_dequeues_reject() {
        assert_eq!(
            check(&[t(QueueOp::DeqSome(7), 0, 1)]),
            SpecialVerdict::NotLinearizable
        );
        let ops = vec![
            t(QueueOp::Enq(1), 0, 1),
            t(QueueOp::DeqSome(1), 2, 3),
            t(QueueOp::DeqSome(1), 4, 5),
        ];
        assert_eq!(check(&ops), SpecialVerdict::NotLinearizable);
    }

    #[test]
    fn duplicate_enqueue_falls_back() {
        let ops = vec![
            t(QueueOp::Enq(1), 0, 1),
            t(QueueOp::Enq(1), 2, 3),
            t(QueueOp::DeqSome(1), 4, 5),
        ];
        assert_eq!(
            check(&ops),
            SpecialVerdict::Fallback(FallbackReason::DuplicateValue)
        );
    }

    #[test]
    fn empty_report_on_provably_nonempty_queue_rejects() {
        // 1 is enqueued (done by pos 1) and never dequeued: every later
        // empty-report is impossible.
        let ops = vec![t(QueueOp::Enq(1), 0, 1), t(QueueOp::DeqEmpty, 2, 3)];
        assert_eq!(check(&ops), SpecialVerdict::NotLinearizable);
    }

    #[test]
    fn empty_report_overlapping_enqueue_accepts() {
        // The empty-report overlaps the enqueue: report first, then enq.
        let ops = vec![t(QueueOp::Enq(1), 0, 3), t(QueueOp::DeqEmpty, 1, 2)];
        assert_eq!(check(&ops), SpecialVerdict::Linearizable);
    }

    #[test]
    fn empty_report_covered_jointly_by_two_values_rejects() {
        // Neither value alone covers the report's window, but their
        // forced-presence intervals tile it: slots [1,4] (v=1, dequeued
        // at call 5) and [4,8] (v=2). Report candidates are slots [2,6].
        let ops = vec![
            t(QueueOp::Enq(1), 0, 1),
            t(QueueOp::DeqSome(1), 5, 6),
            t(QueueOp::Enq(2), 3, 4),
            t(QueueOp::DeqSome(2), 9, 10),
            t(QueueOp::DeqEmpty, 2, 7),
        ];
        assert_eq!(check(&ops), SpecialVerdict::NotLinearizable);
    }

    #[test]
    fn empty_report_with_gap_between_values_accepts() {
        // v=1 is gone by slot 2 (deq call 3); v=2 arrives at slot 5:
        // slot in between is empty.
        let ops = vec![
            t(QueueOp::Enq(1), 0, 1),
            t(QueueOp::DeqSome(1), 3, 4),
            t(QueueOp::Enq(2), 5, 6),
            t(QueueOp::DeqSome(2), 7, 8),
            t(QueueOp::DeqEmpty, 2, 7),
        ];
        assert_eq!(check(&ops), SpecialVerdict::Linearizable);
    }
}
