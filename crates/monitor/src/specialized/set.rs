//! Specialized checker for set / integer-keyed dictionary histories.
//!
//! Keys are independent: a linearization exists iff one exists per key
//! (P-compositionality in its purest form), so the history is split by
//! key and each key is decided in O(k) after classification. A key's
//! lifetime has at most one successful add (more are ambiguous — which
//! observer saw which insertion? — and fall back) and then at most one
//! successful remove, so the key's membership is a single interval
//! `[slot(add), slot(remove))` and every observation constrains those
//! two slots:
//!
//! * *present* observers (`TryAdd = false`, `ContainsKey = true`) must
//!   overlap the interval: they force `slot(add) ≤ ret − 1` and
//!   `slot(remove) ≥ call`;
//! * *absent* observers (`TryRemove = Fail`, `ContainsKey = false`)
//!   must linearize before the add or after the remove — a disjunction,
//!   but on the frontier where `slot(remove)` is chosen minimal it
//!   simplifies: only observers that *cannot* fit after the remove
//!   (their last slot lies before every feasible `slot(remove)`) matter,
//!   and each just forces `slot(add) ≥ call`.
//!
//! What remains is interval non-emptiness checks — exact, not
//! conservative, for the unambiguous case. Remove payloads are ignored:
//! the annotation's claim includes "a successful remove's payload is a
//! pure function of the key", which holds for every registry dictionary
//! (values are derived from keys) — membership, not payload identity,
//! is what the specialized path decides.

use std::collections::BTreeMap;

use lineup::{FallbackReason, Invocation, Value};

use super::{single_int_arg, SpecialVerdict, Timed};

/// Set alphabet. Every variant carries the key it concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SetOp {
    /// `TryAdd k` returning `true`.
    AddOk(i64),
    /// `TryAdd k` returning `false` (key already present).
    AddFail(i64),
    /// `TryRemove k` returning `Some(_)` (payload ignored, see module
    /// docs).
    RemoveOk(i64),
    /// `TryRemove k` returning `Fail` (key absent).
    RemoveFail(i64),
    /// `ContainsKey k` returning `true`.
    ContainsTrue(i64),
    /// `ContainsKey k` returning `false`.
    ContainsFalse(i64),
}

/// Classifies an init-sequence invocation (must be a `TryAdd`, which on
/// the fresh structure necessarily succeeds).
pub(crate) fn classify_init(inv: &Invocation) -> Option<SetOp> {
    match inv.name.as_str() {
        "TryAdd" => single_int_arg(inv).map(SetOp::AddOk),
        _ => None,
    }
}

/// Classifies a recorded operation, or reports why it falls outside the
/// set alphabet.
pub(crate) fn classify(inv: &Invocation, resp: &Value) -> Result<SetOp, FallbackReason> {
    let key = single_int_arg(inv).ok_or(FallbackReason::UnknownOp)?;
    match (inv.name.as_str(), resp) {
        ("TryAdd", Value::Bool(true)) => Ok(SetOp::AddOk(key)),
        ("TryAdd", Value::Bool(false)) => Ok(SetOp::AddFail(key)),
        ("TryRemove", Value::Opt(Some(_))) => Ok(SetOp::RemoveOk(key)),
        ("TryRemove", Value::Fail) => Ok(SetOp::RemoveFail(key)),
        ("ContainsKey", Value::Bool(true)) => Ok(SetOp::ContainsTrue(key)),
        ("ContainsKey", Value::Bool(false)) => Ok(SetOp::ContainsFalse(key)),
        _ => Err(FallbackReason::UnknownOp),
    }
}

/// Call/return intervals of one key's operations.
#[derive(Debug, Default)]
struct KeyOps {
    adds: Vec<(i64, i64)>,
    removes: Vec<(i64, i64)>,
    present: Vec<(i64, i64)>,
    absent: Vec<(i64, i64)>,
}

/// Selects the `KeyOps` interval list an operation belongs to.
type Bucket = fn(&mut KeyOps) -> &mut Vec<(i64, i64)>;

/// Decides linearizability of a classified, complete set history.
pub(crate) fn check(ops: &[Timed<SetOp>]) -> SpecialVerdict {
    let mut keys: BTreeMap<i64, KeyOps> = BTreeMap::new();
    for t in ops {
        let iv = (t.call, t.ret);
        let (key, bucket): (i64, Bucket) = match t.op {
            SetOp::AddOk(k) => (k, |ko| &mut ko.adds),
            SetOp::RemoveOk(k) => (k, |ko| &mut ko.removes),
            SetOp::AddFail(k) | SetOp::ContainsTrue(k) => (k, |ko| &mut ko.present),
            SetOp::RemoveFail(k) | SetOp::ContainsFalse(k) => (k, |ko| &mut ko.absent),
        };
        bucket(keys.entry(key).or_default()).push(iv);
    }

    let mut fallback: Option<FallbackReason> = None;
    for ko in keys.values() {
        match check_key(ko) {
            SpecialVerdict::Linearizable => {}
            SpecialVerdict::NotLinearizable => return SpecialVerdict::NotLinearizable,
            SpecialVerdict::Fallback(reason) => {
                // Keep scanning: a later key may still certainly reject,
                // which beats falling back.
                fallback.get_or_insert(reason);
            }
        }
    }
    match fallback {
        Some(reason) => SpecialVerdict::Fallback(reason),
        None => SpecialVerdict::Linearizable,
    }
}

/// Decides one key (see module docs for the derivation).
fn check_key(ko: &KeyOps) -> SpecialVerdict {
    if ko.adds.len() >= 2 {
        return SpecialVerdict::Fallback(FallbackReason::DuplicateValue);
    }
    if ko.removes.len() >= 2 {
        // At most one add means at most one membership episode: a second
        // successful remove has nothing to remove.
        return SpecialVerdict::NotLinearizable;
    }
    let Some(&(c_i, r_i)) = ko.adds.first() else {
        // Never added: any successful remove or present-observation is
        // impossible; absent-observations are trivially fine.
        if !ko.removes.is_empty() || !ko.present.is_empty() {
            return SpecialVerdict::NotLinearizable;
        }
        return SpecialVerdict::Linearizable;
    };

    // slot(add) upper bound: own window, and every present observer must
    // still be able to end at or after it.
    let add_hi = ko
        .present
        .iter()
        .map(|&(_c, r)| r - 1)
        .fold(r_i - 1, i64::min);

    let Some(&(c_r, r_r)) = ko.removes.first() else {
        // No remove: membership never ends, so absent observers must all
        // fit before the add.
        let add_lo = ko.absent.iter().map(|&(c, _r)| c).fold(c_i, i64::max);
        if add_lo > add_hi {
            return SpecialVerdict::NotLinearizable;
        }
        return SpecialVerdict::Linearizable;
    };

    // slot(remove) bounds: own window, pulled up by present observers
    // (each must start before the removal).
    let rem_lo = ko.present.iter().map(|&(c, _r)| c).fold(c_r, i64::max);
    let rem_hi = r_r - 1;
    if rem_lo > rem_hi {
        return SpecialVerdict::NotLinearizable;
    }
    // Absent observers that cannot linearize after any feasible removal
    // slot must go before the add instead, forcing slot(add) upward;
    // the rest always fit (before the add if slot(add) passes them,
    // after the removal otherwise).
    let add_lo = ko
        .absent
        .iter()
        .filter(|&&(_c, r)| r - 1 < rem_lo)
        .map(|&(c, _r)| c)
        .fold(c_i, i64::max);
    // slot(add) must also leave room for the removal after it.
    if add_lo > add_hi.min(rem_hi) {
        return SpecialVerdict::NotLinearizable;
    }
    SpecialVerdict::Linearizable
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(op: SetOp, call: i64, ret: i64) -> Timed<SetOp> {
        Timed { op, call, ret }
    }

    #[test]
    fn sequential_lifecycle_accepts() {
        let ops = vec![
            t(SetOp::ContainsFalse(1), 0, 1),
            t(SetOp::AddOk(1), 2, 3),
            t(SetOp::ContainsTrue(1), 4, 5),
            t(SetOp::AddFail(1), 6, 7),
            t(SetOp::RemoveOk(1), 8, 9),
            t(SetOp::RemoveFail(1), 10, 11),
        ];
        assert_eq!(check(&ops), SpecialVerdict::Linearizable);
    }

    #[test]
    fn observation_before_any_add_rejects() {
        let ops = vec![t(SetOp::ContainsTrue(1), 0, 1), t(SetOp::AddOk(1), 2, 3)];
        assert_eq!(check(&ops), SpecialVerdict::NotLinearizable);
    }

    #[test]
    fn remove_without_add_rejects() {
        assert_eq!(
            check(&[t(SetOp::RemoveOk(1), 0, 1)]),
            SpecialVerdict::NotLinearizable
        );
    }

    #[test]
    fn absent_observation_between_add_and_remove_rejects() {
        // ContainsKey=false strictly inside the forced-present window.
        let ops = vec![
            t(SetOp::AddOk(1), 0, 1),
            t(SetOp::ContainsFalse(1), 2, 3),
            t(SetOp::RemoveOk(1), 4, 5),
        ];
        assert_eq!(check(&ops), SpecialVerdict::NotLinearizable);
    }

    #[test]
    fn absent_observation_overlapping_add_accepts() {
        let ops = vec![
            t(SetOp::AddOk(1), 0, 3),
            t(SetOp::ContainsFalse(1), 1, 2),
            t(SetOp::RemoveOk(1), 4, 5),
        ];
        assert_eq!(check(&ops), SpecialVerdict::Linearizable);
    }

    #[test]
    fn present_observation_after_remove_rejects() {
        let ops = vec![
            t(SetOp::AddOk(1), 0, 1),
            t(SetOp::RemoveOk(1), 2, 3),
            t(SetOp::ContainsTrue(1), 4, 5),
        ];
        assert_eq!(check(&ops), SpecialVerdict::NotLinearizable);
    }

    #[test]
    fn overlapping_observers_squeeze_but_fit() {
        // Present observer forces remove >= 4; absent observer (ret 4)
        // cannot fit after it, so it forces add >= 3 — still <= add_hi.
        let ops = vec![
            t(SetOp::AddOk(1), 0, 7),
            t(SetOp::ContainsFalse(1), 3, 4),
            t(SetOp::ContainsTrue(1), 4, 6),
            t(SetOp::RemoveOk(1), 5, 9),
        ];
        assert_eq!(check(&ops), SpecialVerdict::Linearizable);
    }

    #[test]
    fn double_add_falls_back_but_other_keys_still_reject() {
        let ops = vec![
            t(SetOp::AddOk(1), 0, 1),
            t(SetOp::AddOk(1), 2, 3),
            t(SetOp::ContainsTrue(2), 4, 5),
        ];
        // Key 2 is observed present but never added: certain violation
        // wins over key 1's ambiguity.
        assert_eq!(check(&ops), SpecialVerdict::NotLinearizable);
    }

    #[test]
    fn double_add_alone_falls_back() {
        let ops = vec![t(SetOp::AddOk(1), 0, 1), t(SetOp::AddOk(1), 2, 3)];
        assert_eq!(
            check(&ops),
            SpecialVerdict::Fallback(FallbackReason::DuplicateValue)
        );
    }

    #[test]
    fn double_remove_with_single_add_rejects() {
        let ops = vec![
            t(SetOp::AddOk(1), 0, 1),
            t(SetOp::RemoveOk(1), 2, 3),
            t(SetOp::RemoveOk(1), 4, 5),
        ];
        assert_eq!(check(&ops), SpecialVerdict::NotLinearizable);
    }

    #[test]
    fn independent_keys_compose() {
        let ops = vec![
            t(SetOp::AddOk(1), 0, 3),
            t(SetOp::AddOk(2), 1, 2),
            t(SetOp::RemoveOk(2), 4, 7),
            t(SetOp::ContainsTrue(1), 5, 6),
            t(SetOp::ContainsFalse(2), 8, 9),
        ];
        assert_eq!(check(&ops), SpecialVerdict::Linearizable);
    }
}
