//! Specialized checker for unambiguous LIFO-stack histories.
//!
//! Two sound procedures compose into a near-complete decision:
//!
//! 1. **Verified greedy accept.** Process operations in return order,
//!    maintaining a simulated stack, building an explicit candidate
//!    witness order; heuristic *relocation* repairs (re-ordering
//!    overlapping pushes, deferring pushes past an empty-report) handle
//!    the common jitter inversions. The candidate is then validated
//!    exactly — permutation, real-time precedence, LIFO replay — so an
//!    accept is always backed by a checked witness regardless of which
//!    heuristics fired. Sound, though not complete.
//! 2. **Certain-reject patterns.** Matching violations (pop of a value
//!    never pushed, duplicate pops), causality (`pop` completes before
//!    `push` begins), the empty-report covering argument (same interval
//!    union as the queue checker), and the two LIFO order patterns:
//!    `push(v) <H push(w) <H pop(v) <H pop(w)` (with `w` below the
//!    forced-present `v`... symmetric witness with both popped), and
//!    `push(w) <H push(v)`, `v` never popped, `push(v) <H pop(w)` —
//!    `v` sits above `w` forever, so `pop(w)` cannot return `w`.
//!
//! When greedy fails and no reject pattern fires the history goes to the
//! general search ([`FallbackReason::Inconclusive`]); the pattern scan is
//! O(n²) but only runs on that rare path.

use std::collections::HashMap;

use lineup::{FallbackReason, Invocation, Value};

use super::{
    covers, merge_intervals, opt_int, respects_precedence, single_int_arg, SpecialVerdict, Timed,
    WitnessBuilder,
};

/// Stack alphabet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StackOp {
    /// `Push v` returning `Unit`.
    Push(i64),
    /// `TryPop` returning `Some(v)`.
    PopSome(i64),
    /// `TryPop` reporting empty (`Fail`).
    PopEmpty,
}

/// Classifies an init-sequence invocation (must be a push).
pub(crate) fn classify_init(inv: &Invocation) -> Option<StackOp> {
    match inv.name.as_str() {
        "Push" => single_int_arg(inv).map(StackOp::Push),
        _ => None,
    }
}

/// Classifies a recorded operation, or reports why it falls outside the
/// stack alphabet.
pub(crate) fn classify(inv: &Invocation, resp: &Value) -> Result<StackOp, FallbackReason> {
    match (inv.name.as_str(), resp) {
        ("Push", Value::Unit) => single_int_arg(inv)
            .map(StackOp::Push)
            .ok_or(FallbackReason::UnknownOp),
        ("TryPop", Value::Fail) if inv.args.is_empty() => Ok(StackOp::PopEmpty),
        ("TryPop", _) if inv.args.is_empty() => opt_int(resp)
            .map(StackOp::PopSome)
            .ok_or(FallbackReason::UnknownOp),
        _ => Err(FallbackReason::UnknownOp),
    }
}

/// Decides (or declines) linearizability of a classified, complete stack
/// history.
pub(crate) fn check(ops: &[Timed<StackOp>]) -> SpecialVerdict {
    // Matching: unique pushes (else ambiguous), unique matched pops.
    let mut push_of: HashMap<i64, usize> = HashMap::new();
    for (i, t) in ops.iter().enumerate() {
        if let StackOp::Push(v) = t.op {
            if push_of.insert(v, i).is_some() {
                return SpecialVerdict::Fallback(FallbackReason::DuplicateValue);
            }
        }
    }
    let mut pop_of: HashMap<i64, usize> = HashMap::new();
    let mut empties: Vec<(i64, i64)> = Vec::new();
    for (i, t) in ops.iter().enumerate() {
        match t.op {
            StackOp::Push(_) => {}
            StackOp::PopSome(v) => {
                if pop_of.insert(v, i).is_some() {
                    return SpecialVerdict::NotLinearizable;
                }
            }
            StackOp::PopEmpty => empties.push((t.call, t.ret)),
        }
    }
    for (v, &pi) in &pop_of {
        match push_of.get(v) {
            None => return SpecialVerdict::NotLinearizable,
            Some(&qi) => {
                if ops[pi].ret <= ops[qi].call {
                    return SpecialVerdict::NotLinearizable;
                }
            }
        }
    }

    // Empty-report covering (identical argument to the queue's Q3: a
    // value forcibly on the stack blocks the emptiness of every slot in
    // [ret(push), call(pop) - 1]).
    if !empties.is_empty() {
        let mut blocked: Vec<(i64, i64)> = Vec::new();
        for (v, &qi) in &push_of {
            let hi = match pop_of.get(v) {
                Some(&pi) => ops[pi].call - 1,
                None => i64::MAX,
            };
            if ops[qi].ret <= hi {
                blocked.push((ops[qi].ret, hi));
            }
        }
        let merged = merge_intervals(blocked);
        for &(c, r) in &empties {
            if covers(&merged, c, r - 1) {
                return SpecialVerdict::NotLinearizable;
            }
        }
    }

    if greedy_accept(ops, &push_of, &pop_of) {
        return SpecialVerdict::Linearizable;
    }

    // Greedy got stuck: look for a certain LIFO violation pattern.
    let mut pushed: Vec<i64> = push_of.keys().copied().collect();
    pushed.sort_unstable(); // determinism of the scan order
    for &v in &pushed {
        let qv = push_of[&v];
        for &w in &pushed {
            if v == w {
                continue;
            }
            let qw = push_of[&w];
            match (pop_of.get(&v), pop_of.get(&w)) {
                // push(v) <H push(w) <H pop(v) <H pop(w): at pop(v)'s
                // point w is forcibly above v and not yet popped.
                (Some(&pv), Some(&pw))
                    if ops[qv].ret < ops[qw].call
                        && ops[qw].ret < ops[pv].call
                        && ops[pv].ret < ops[pw].call =>
                {
                    return SpecialVerdict::NotLinearizable;
                }
                // push(w) <H push(v), v never popped, push(v) <H
                // pop(w): v buries w forever before pop(w) can run.
                (None, Some(&pw)) if ops[qw].ret < ops[qv].call && ops[qv].ret <= ops[pw].call => {
                    return SpecialVerdict::NotLinearizable;
                }
                _ => {}
            }
        }
    }
    SpecialVerdict::Fallback(FallbackReason::Inconclusive)
}

/// Attempts to build an explicit linearization greedily (see module
/// docs), then validates it exactly. Returns `true` on success; `false`
/// means "don't know".
fn greedy_accept(
    ops: &[Timed<StackOp>],
    push_of: &HashMap<i64, usize>,
    pop_of: &HashMap<i64, usize>,
) -> bool {
    let order = greedy_witness(ops, push_of, pop_of);
    verify_witness(ops, &order)
}

/// Builds a candidate witness order. Heuristics (all soundness-free —
/// [`verify_witness`] is the authority):
///
/// * Operations are processed in return order, but pushes are *lazy*:
///   a push linearizes only when real-time precedence forces it before
///   the operation about to be placed (just-in-time flush), when its
///   own pop needs the value, or at the very end. Within a flushed
///   batch, pushes go latest-popped-first (subject to their mutual
///   precedence), matching LIFO nesting.
/// * A forced `pop(v)` with `v` buried cascade-pops the burying values
///   if all their pops are callable; otherwise it *relocates* `push(v)`
///   to the current slot — overlapping pushes linearized in the other
///   order — which hoists `v` to the top.
/// * A forced empty-report pops what it can and relocates the remaining
///   pushes to just after itself (unflushed pending pushes simply stay
///   lazy and linearize later).
fn greedy_witness(
    ops: &[Timed<StackOp>],
    push_of: &HashMap<i64, usize>,
    pop_of: &HashMap<i64, usize>,
) -> Vec<usize> {
    let n = ops.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by_key(|&i| ops[i].ret);
    let mut b = WitnessBuilder::new(n);
    let mut stack: Vec<i64> = Vec::new();
    // Pushes seen by the return-order scan but not yet linearized.
    let mut pending: Vec<usize> = Vec::new();
    // The slot a value must leave the stack by: its pop's call (values
    // popped later — or never — sit deeper under LIFO).
    let dealloc = |q: usize| -> i64 {
        let StackOp::Push(v) = ops[q].op else {
            return i64::MAX;
        };
        pop_of.get(&v).map_or(i64::MAX, |&p| ops[p].call)
    };
    // Places every pending push that must precede an op calling at
    // `threshold` (ret < call ⇒ ordered), latest-dealloc-first subject
    // to the batch's own precedence constraints.
    let flush =
        |threshold: i64, b: &mut WitnessBuilder, stack: &mut Vec<i64>, pending: &mut Vec<usize>| {
            pending.retain(|&q| !b.linearized[q]);
            let mut batch: Vec<usize> = Vec::new();
            pending.retain(|&q| {
                if ops[q].ret < threshold {
                    batch.push(q);
                    false
                } else {
                    true
                }
            });
            // Pull in callable pushes that LIFO-nest *below* a forced one:
            // w must go under f when w is popped later (or never) than f yet
            // w's push is forced before f's pop. Fixpoint, since a pulled
            // push can force further pulls beneath itself.
            while !batch.is_empty() {
                let mut pulled: Vec<usize> = Vec::new();
                pending.retain(|&q| {
                    let needed = ops[q].call < threshold
                        && batch.iter().any(|&f| {
                            let df = dealloc(f);
                            dealloc(q) > df && ops[q].ret < df
                        });
                    if needed {
                        pulled.push(q);
                    }
                    !needed
                });
                if pulled.is_empty() {
                    break;
                }
                batch.extend(pulled);
            }
            while !batch.is_empty() {
                let mut best: Option<usize> = None;
                for (k, &q) in batch.iter().enumerate() {
                    let ready = batch.iter().all(|&w| w == q || ops[w].ret >= ops[q].call);
                    if ready && best.is_none_or(|bk| dealloc(q) > dealloc(batch[bk])) {
                        best = Some(k);
                    }
                }
                // Precedence is a partial order, so a ready push exists.
                let q = batch.swap_remove(best.expect("acyclic batch"));
                // Values on top that must leave before q's value does (and
                // whose pops are callable this early) get popped first, so
                // the flushed push doesn't bury them — unless some still
                // unplaced push is precedence-forced before that pop.
                while let Some(&u) = stack.last() {
                    match pop_of.get(&u) {
                        Some(&pu)
                            if !b.linearized[pu]
                                && ops[pu].call < ops[q].ret
                                && ops[pu].call < dealloc(q)
                                && !batch
                                    .iter()
                                    .chain(pending.iter())
                                    .any(|&w| ops[w].ret < ops[pu].call) =>
                        {
                            stack.pop();
                            b.place(pu);
                        }
                        _ => break,
                    }
                }
                b.place(q);
                if let StackOp::Push(v) = ops[q].op {
                    stack.push(v);
                }
            }
        };
    for &x in &order {
        if b.linearized[x] {
            continue;
        }
        let deadline = ops[x].ret;
        match ops[x].op {
            StackOp::Push(_) => pending.push(x),
            StackOp::PopSome(v) => {
                // Any flush below can linearize x itself (its cascade
                // pops stack tops, placing their pops), so re-check
                // after each one.
                flush(ops[x].call, &mut b, &mut stack, &mut pending);
                if b.linearized[x] {
                    continue;
                }
                if !stack.contains(&v) {
                    // v not yet pushed: push(v) right here (the push's
                    // call may postdate the pop's, so flush what must
                    // precede the push first).
                    if let Some(&qv) = push_of.get(&v) {
                        if !b.linearized[qv] {
                            flush(ops[qv].call, &mut b, &mut stack, &mut pending);
                            if !b.linearized[qv] {
                                b.place(qv);
                                stack.push(v);
                            }
                        }
                    }
                }
                // Pop the buriers above v, flushing pushes forced before
                // each burier's pop (a flush can land new values on top,
                // so re-examine the top each round); an unpoppable
                // burier means v must instead be hoisted by relocating
                // its push to the current end.
                while let Some(&u) = stack.last() {
                    if b.linearized[x] {
                        break;
                    }
                    if u == v {
                        stack.pop();
                        break;
                    }
                    match pop_of.get(&u) {
                        Some(&pu) if !b.linearized[pu] && ops[pu].call < deadline => {
                            flush(ops[pu].call, &mut b, &mut stack, &mut pending);
                            if stack.last() == Some(&u) {
                                stack.pop();
                                b.place(pu);
                            }
                        }
                        _ => {
                            if let Some(d) = stack.iter().rposition(|&w| w == v) {
                                stack.remove(d);
                                b.relocate(push_of[&v]);
                            }
                            break;
                        }
                    }
                }
                if !b.linearized[x] {
                    b.place(x);
                }
            }
            StackOp::PopEmpty => {
                flush(ops[x].call, &mut b, &mut stack, &mut pending);
                let mut kept: Vec<i64> = Vec::new();
                while let Some(&u) = stack.last() {
                    match pop_of.get(&u) {
                        Some(&pu) if !b.linearized[pu] && ops[pu].call < deadline => {
                            flush(ops[pu].call, &mut b, &mut stack, &mut pending);
                            if stack.last() == Some(&u) {
                                stack.pop();
                                b.place(pu);
                            }
                        }
                        _ => {
                            stack.pop();
                            kept.push(u);
                        }
                    }
                }
                b.place(x);
                for &u in kept.iter().rev() {
                    b.relocate(push_of[&u]);
                    stack.push(u);
                }
            }
        }
    }
    flush(i64::MAX, &mut b, &mut stack, &mut pending);
    b.order()
}

/// Exact witness validation: the order must be a full permutation,
/// respect real-time precedence, and replay correctly through LIFO
/// semantics. Any `true` here is a sound accept.
fn verify_witness(ops: &[Timed<StackOp>], order: &[usize]) -> bool {
    if order.len() != ops.len() || !respects_precedence(ops, order) {
        return false;
    }
    let mut stack: Vec<i64> = Vec::new();
    for &i in order {
        match ops[i].op {
            StackOp::Push(v) => stack.push(v),
            StackOp::PopSome(v) => {
                if stack.pop() != Some(v) {
                    return false;
                }
            }
            StackOp::PopEmpty => {
                if !stack.is_empty() {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(op: StackOp, call: i64, ret: i64) -> Timed<StackOp> {
        Timed { op, call, ret }
    }

    #[test]
    fn sequential_lifo_accepts() {
        let ops = vec![
            t(StackOp::Push(1), 0, 1),
            t(StackOp::Push(2), 2, 3),
            t(StackOp::PopSome(2), 4, 5),
            t(StackOp::PopSome(1), 6, 7),
            t(StackOp::PopEmpty, 8, 9),
        ];
        assert_eq!(check(&ops), SpecialVerdict::Linearizable);
    }

    #[test]
    fn fifo_order_on_stack_rejects() {
        // push(1) <H push(2) <H pop(1) <H pop(2): FIFO behavior.
        let ops = vec![
            t(StackOp::Push(1), 0, 1),
            t(StackOp::Push(2), 2, 3),
            t(StackOp::PopSome(1), 4, 5),
            t(StackOp::PopSome(2), 6, 7),
        ];
        assert_eq!(check(&ops), SpecialVerdict::NotLinearizable);
    }

    #[test]
    fn overlapping_pushes_commute() {
        // Pushes overlap, so popping in either order is fine.
        let ops = vec![
            t(StackOp::Push(1), 0, 3),
            t(StackOp::Push(2), 1, 2),
            t(StackOp::PopSome(1), 4, 5),
            t(StackOp::PopSome(2), 6, 7),
        ];
        assert_eq!(check(&ops), SpecialVerdict::Linearizable);
    }

    #[test]
    fn pop_overlapping_push_accepts() {
        // pop(2) overlaps push(2): push can linearize first.
        let ops = vec![
            t(StackOp::Push(1), 0, 1),
            t(StackOp::Push(2), 3, 6),
            t(StackOp::PopSome(2), 4, 5),
            t(StackOp::PopSome(1), 7, 8),
        ];
        assert_eq!(check(&ops), SpecialVerdict::Linearizable);
    }

    #[test]
    fn unpopped_value_burying_popped_one_rejects() {
        // push(1) <H push(2); 2 stays forever; pop(1) called after
        // push(2) completes: 2 buries 1.
        let ops = vec![
            t(StackOp::Push(1), 0, 1),
            t(StackOp::Push(2), 2, 3),
            t(StackOp::PopSome(1), 4, 5),
        ];
        assert_eq!(check(&ops), SpecialVerdict::NotLinearizable);
    }

    #[test]
    fn pop_before_push_rejects() {
        let ops = vec![t(StackOp::PopSome(1), 0, 1), t(StackOp::Push(1), 2, 3)];
        assert_eq!(check(&ops), SpecialVerdict::NotLinearizable);
    }

    #[test]
    fn empty_report_on_provably_nonempty_stack_rejects() {
        let ops = vec![t(StackOp::Push(1), 0, 1), t(StackOp::PopEmpty, 2, 3)];
        assert_eq!(check(&ops), SpecialVerdict::NotLinearizable);
    }

    #[test]
    fn empty_report_before_everything_accepts() {
        let ops = vec![
            t(StackOp::PopEmpty, 0, 2),
            t(StackOp::Push(1), 1, 3),
            t(StackOp::PopSome(1), 4, 5),
        ];
        assert_eq!(check(&ops), SpecialVerdict::Linearizable);
    }

    #[test]
    fn duplicate_push_falls_back() {
        let ops = vec![
            t(StackOp::Push(1), 0, 1),
            t(StackOp::Push(1), 2, 3),
            t(StackOp::PopSome(1), 4, 5),
        ];
        assert_eq!(
            check(&ops),
            SpecialVerdict::Fallback(FallbackReason::DuplicateValue)
        );
    }

    #[test]
    fn interleaved_cascade_accepts() {
        // pop(1) forces the cascade pop of 3 and 2, both callable.
        let ops = vec![
            t(StackOp::Push(1), 0, 1),
            t(StackOp::Push(2), 2, 3),
            t(StackOp::Push(3), 4, 5),
            t(StackOp::PopSome(1), 6, 11),
            t(StackOp::PopSome(3), 7, 12),
            t(StackOp::PopSome(2), 8, 13),
        ];
        assert_eq!(check(&ops), SpecialVerdict::Linearizable);
    }
}
