//! Native stress testing: real threads, recorded histories, online
//! monitoring.
//!
//! Where `lineup::check` *enumerates* the schedules of a test under the
//! virtual scheduler, the stress runner executes the same test matrix on
//! real OS threads — the instrumented primitives of `lineup-sync` compile
//! down to plain `std::sync` operations in passthrough mode (see
//! `lineup_sched::register_native_thread`) — records each run's
//! call/return history with timestamps implied by recording order, and
//! checks every *distinct* history against a [`Monitor`] as it appears.
//! Seeded yield injection at the instrumented schedule points perturbs the
//! OS scheduler enough to surface races even on few cores.
//!
//! A run that does not finish within the watchdog timeout is snapshotted
//! as a *stuck* history (its unreturned calls pending) and its threads are
//! leaked — they may be deadlocked on real primitives that nothing will
//! ever signal, which is precisely the bug class the stuck check catches.
//! A generous timeout keeps merely-slow runs from being misreported; a
//! worker that panics also surfaces as a stuck run (its operation never
//! returns), which the monitor then rejects unless blocking there is
//! serially justified.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError};
use std::sync::{Arc, Barrier, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use lineup::{
    AdtKind, History, HistoryCache, Invocation, ObservationSet, OpIndex, SymmetryGroups,
    TestInstance, TestMatrix, TestTarget, Value,
};
use lineup_sched::{register_native_thread, NativeOptions};
use lineup_wire::StreamRecorder;

use crate::ideal::ideal_step;
use crate::linearize::Monitor;
use crate::oracle::{SeqOracle, StepResult};

/// Configuration of a stress campaign.
#[derive(Debug, Clone)]
pub struct StressOptions {
    /// Number of test executions.
    pub runs: usize,
    /// Master seed; each run and thread derives its own yield-injection
    /// stream from it.
    pub seed: u64,
    /// Yield with probability `1/yield_chance` at every instrumented
    /// schedule point (0 disables injection). Injection is what surfaces
    /// interleavings on machines with few cores.
    pub yield_chance: u32,
    /// Watchdog: a run not finishing within this bound is recorded as
    /// stuck and its threads are leaked.
    pub run_timeout: Duration,
    /// Methods checked under the asynchronous relaxation (paper §2.4).
    pub async_methods: Vec<String>,
    /// Stop the campaign at the first monitor rejection.
    pub stop_at_first_violation: bool,
    /// Key the per-history verdict cache on the *canonical* form of each
    /// history (default `true`): runs that differ only by renaming
    /// symmetric threads (per the target's
    /// [`lineup::SymmetryPolicy`]) share one monitor verdict, so OS
    /// schedules that merely permute interchangeable threads cost no
    /// monitor work. `false` falls back to literal history keys.
    pub symmetry: bool,
    /// Collect the serial witnesses of accepted complete histories into
    /// [`StressReport::witnesses`] (an extra unpartitioned search per
    /// distinct history).
    pub collect_witnesses: bool,
    /// Stream every run as wire-format events (one object per run) —
    /// e.g. into a capture file replayable by `lineup-server --replay`,
    /// or a live socket. Events are recorded inside the same critical
    /// sections that build the in-memory history, so the stream is
    /// byte-for-byte consistent with what the in-process monitor saw,
    /// including watchdog-stuck snapshots.
    pub recorder: Option<Arc<StreamRecorder>>,
}

impl Default for StressOptions {
    fn default() -> Self {
        StressOptions {
            runs: 100,
            seed: NativeOptions::default().seed,
            yield_chance: 2,
            run_timeout: Duration::from_secs(2),
            async_methods: Vec::new(),
            stop_at_first_violation: true,
            symmetry: true,
            collect_witnesses: false,
            recorder: None,
        }
    }
}

/// Wire recording for one run: one stream object, disarmable under the
/// history lock so a watchdog snapshot and the emitted stream agree on
/// exactly which events exist.
struct RunRecorder {
    rec: Arc<StreamRecorder>,
    object: u64,
    armed: AtomicBool,
}

impl RunRecorder {
    /// Registers a fresh object and replays the (unrecorded) init
    /// sequence as serial call/return pairs on thread 0, with responses
    /// from the ideal oracle — so a consumer checking from the empty
    /// state reaches the same start state the monitor was primed with.
    /// Kind-less objects skip init emission (consumers treat them as
    /// accounting-only and never check).
    fn begin(
        rec: &Arc<StreamRecorder>,
        kind: Option<AdtKind>,
        matrix: &TestMatrix,
        threads: usize,
    ) -> RunRecorder {
        let object = rec.alloc_object();
        let _ = rec.register(object, kind, threads as u32);
        if let Some(kind) = kind {
            let step = ideal_step(kind);
            let mut state: Vec<i64> = Vec::new();
            for inv in &matrix.init {
                let _ = rec.call(object, 0, &inv.name, &inv.args);
                let response = match step(&state, inv) {
                    StepResult::Returns(v, next) => {
                        state = next;
                        v
                    }
                    // Init that the ideal spec rejects cannot be given a
                    // faithful response; the consumer's check will flag
                    // the mismatch rather than us guessing here.
                    _ => Value::Fail,
                };
                let _ = rec.ret(object, 0, &response);
            }
        }
        RunRecorder {
            rec: Arc::clone(rec),
            object,
            armed: AtomicBool::new(true),
        }
    }

    /// Call-site hook; must run inside the history-lock critical section
    /// so stream order matches history order.
    fn call(&self, thread: usize, inv: &Invocation) {
        if self.armed.load(Ordering::Relaxed) {
            let _ = self
                .rec
                .call(self.object, thread as u32, &inv.name, &inv.args);
        }
    }

    /// Return-site hook; same locking requirement as [`Self::call`].
    fn ret(&self, thread: usize, response: &Value) {
        if self.armed.load(Ordering::Relaxed) {
            let _ = self.rec.ret(self.object, thread as u32, response);
        }
    }

    /// Stops recording; called under the history lock right before a
    /// watchdog snapshot so leaked threads cannot append events the
    /// snapshot does not contain.
    fn disarm(&self) {
        self.armed.store(false, Ordering::SeqCst);
    }

    fn finish(&self, stuck: bool) {
        self.disarm();
        let _ = self.rec.end(self.object, stuck);
    }
}

/// A monitor rejection observed during stress testing.
#[derive(Debug, Clone)]
pub struct StressViolation {
    /// Index of the first run exhibiting the history.
    pub run: usize,
    /// The rejected history.
    pub history: History,
    /// For stuck histories, the pending operation that has no stuck
    /// witness; `None` for complete histories.
    pub pending: Option<OpIndex>,
}

/// The outcome of a stress campaign.
#[derive(Debug, Clone)]
pub struct StressReport {
    /// Runs executed (may be fewer than requested when stopping early).
    pub runs: usize,
    /// Operations completed across all runs.
    pub ops: u64,
    /// Distinct histories observed (each checked once).
    pub distinct_histories: usize,
    /// Runs snapshotted as stuck by the watchdog.
    pub stuck_runs: usize,
    /// Monitor checks performed (distinct complete histories plus one per
    /// pending operation of distinct stuck histories).
    pub monitor_checks: u64,
    /// Runs whose history was already checked (verdict served from the
    /// canonically-keyed [`HistoryCache`] — no monitor work done),
    /// counting both literal repeats and symmetric renamings of checked
    /// histories. `runs` = `distinct_histories + history_cache_hits` when
    /// no run is cut off early, so throughput derived from
    /// `monitor_checks` measures fresh monitor work only.
    pub history_cache_hits: u64,
    /// The monitor's own counters accumulated over this campaign (oracle
    /// steps, memo hits, specialized-vs-fallback paths).
    pub monitor_stats: crate::linearize::MonitorStats,
    /// The rejections, in order of first occurrence.
    pub violations: Vec<StressViolation>,
    /// Total wall-clock time of the campaign.
    pub wall: Duration,
    /// Wall-clock time spent inside the monitor.
    pub monitor_wall: Duration,
    /// Serial witnesses of accepted complete histories (empty unless
    /// [`StressOptions::collect_witnesses`]).
    pub witnesses: ObservationSet,
}

impl StressReport {
    /// Whether every observed history was accepted by the monitor.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// SplitMix64: derives independent per-run / per-thread seed streams.
fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Locks ignoring poisoning: a panicked worker must not take the history
/// down with it — its half-recorded run is still a (stuck) observation.
fn lock_history(h: &Mutex<History>) -> MutexGuard<'_, History> {
    h.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `matrix` against `target` on real OS threads `options.runs` times,
/// checking every distinct recorded history against `monitor`.
///
/// The history shape matches the model checker's: columns record on thread
/// indexes `0..columns`, the final sequence (if any) on thread index
/// `columns`, init operations are unrecorded. Verdicts are memoized in a
/// [`HistoryCache`] keyed on each history's canonical form, so the
/// monitor runs once per *distinct* history — up to renaming symmetric
/// threads — no matter how often the OS scheduler reproduces one.
pub fn run_stress<T, O>(
    target: &T,
    matrix: &TestMatrix,
    monitor: &Monitor<O>,
    options: &StressOptions,
) -> StressReport
where
    T: TestTarget,
    T::Instance: Send + Sync + 'static,
    O: SeqOracle,
{
    let ncols = matrix.columns.len();
    let thread_count = ncols + usize::from(!matrix.finally.is_empty());
    let start = Instant::now();
    let stats_before = monitor.stats();
    let groups = if options.symmetry {
        matrix.symmetry_groups(target.symmetry_policy())
    } else {
        SymmetryGroups::default()
    };
    let verdicts: HistoryCache<bool> = HistoryCache::new(1);
    let mut report = StressReport {
        runs: 0,
        ops: 0,
        distinct_histories: 0,
        stuck_runs: 0,
        monitor_checks: 0,
        history_cache_hits: 0,
        monitor_stats: Default::default(),
        violations: Vec::new(),
        wall: Duration::ZERO,
        monitor_wall: Duration::ZERO,
        witnesses: ObservationSet::new(),
    };

    let adt_kind = monitor.adt_kind();
    for run in 0..options.runs {
        let run_seed = mix(options.seed, run as u64 + 1);
        let history = execute_run(target, matrix, thread_count, run_seed, options, adt_kind);
        report.runs += 1;
        report.ops += history.complete_ops().len() as u64;
        if history.stuck {
            report.stuck_runs += 1;
        }

        // Check each distinct (canonical) history once.
        let key = groups.canonicalize(&history);
        let known = verdicts.get(&key).is_some();
        if known {
            report.history_cache_hits += 1;
        }
        if !known {
            report.distinct_histories += 1;
            let t0 = Instant::now();
            let ok = if history.is_complete() {
                report.monitor_checks += 1;
                let ok = monitor.check_full(&history, &options.async_methods);
                if ok && options.collect_witnesses {
                    if let Some(s) = monitor.find_linearization(&history, &options.async_methods) {
                        report.witnesses.insert(s);
                    }
                }
                if !ok {
                    report.violations.push(StressViolation {
                        run,
                        history: history.clone(),
                        pending: None,
                    });
                }
                ok
            } else {
                let mut ok = true;
                for e in history.pending_ops() {
                    report.monitor_checks += 1;
                    if !monitor.check_stuck(&history, e, &options.async_methods) {
                        report.violations.push(StressViolation {
                            run,
                            history: history.clone(),
                            pending: Some(e),
                        });
                        ok = false;
                        break;
                    }
                }
                ok
            };
            report.monitor_wall += t0.elapsed();
            verdicts.insert_if_absent(&key, ok);
            if !ok && options.stop_at_first_violation {
                break;
            }
        }
    }
    report.wall = start.elapsed();
    report.monitor_stats = monitor.stats().diff_since(&stats_before);
    report
}

/// One native execution of the matrix; returns the recorded history
/// (stuck when the watchdog fired).
fn execute_run<T>(
    target: &T,
    matrix: &TestMatrix,
    thread_count: usize,
    run_seed: u64,
    options: &StressOptions,
    adt_kind: Option<AdtKind>,
) -> History
where
    T: TestTarget,
    T::Instance: Send + Sync + 'static,
{
    let ncols = matrix.columns.len();
    let wire: Option<Arc<RunRecorder>> = options
        .recorder
        .as_ref()
        .map(|rec| Arc::new(RunRecorder::begin(rec, adt_kind, matrix, thread_count)));
    // The coordinator registers too: init and final operations then run
    // with the same passthrough blocking/yield machinery as column ops.
    let guard = register_native_thread(NativeOptions {
        seed: mix(run_seed, 0),
        yield_chance: options.yield_chance,
    });
    let instance = Arc::new(target.create());
    for inv in &matrix.init {
        // State preparation, unrecorded (mirrors the model harness).
        let _ = instance.invoke(inv);
    }

    let history = Arc::new(Mutex::new(History::new(thread_count)));
    // +1: the coordinator joins the barrier so no column starts before all
    // workers (and the watchdog clock) are in place.
    let barrier = Arc::new(Barrier::new(ncols + 1));
    let (tx, rx) = channel::<usize>();

    let handles: Vec<_> = matrix
        .columns
        .iter()
        .enumerate()
        .map(|(t, column)| {
            let instance = Arc::clone(&instance);
            let history = Arc::clone(&history);
            let barrier = Arc::clone(&barrier);
            let column = column.clone();
            let tx = tx.clone();
            let seed = mix(run_seed, t as u64 + 1);
            let yield_chance = options.yield_chance;
            let wire = wire.clone();
            std::thread::spawn(move || {
                let _native = register_native_thread(NativeOptions { seed, yield_chance });
                barrier.wait();
                for inv in column {
                    let op = {
                        let mut h = lock_history(&history);
                        let op = h.push_call(t, inv.clone());
                        if let Some(w) = &wire {
                            w.call(t, &inv);
                        }
                        op
                    };
                    let response = instance.invoke(&inv);
                    let mut h = lock_history(&history);
                    if let Some(w) = &wire {
                        w.ret(t, &response);
                    }
                    h.push_return(op, response);
                }
                let _ = tx.send(t);
            })
        })
        .collect();
    drop(tx);
    barrier.wait();

    // Watchdog: wait for all columns, or give up and snapshot.
    let deadline = Instant::now() + options.run_timeout;
    let mut done = 0;
    let mut timed_out = false;
    while done < ncols {
        match rx.recv_timeout(deadline.saturating_duration_since(Instant::now())) {
            Ok(_) => done += 1,
            // Disconnected means a worker died without reporting (a panic
            // inside an operation): treat like a timeout — its operation
            // is pending forever.
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                timed_out = true;
                break;
            }
        }
    }

    if timed_out {
        // Leak the hung threads: they may be blocked on real primitives
        // that nothing will ever signal. The snapshot is consistent (the
        // history mutex orders record events), later writes by leaked
        // threads go to an Arc we no longer read. Disarming the wire
        // recorder inside the same critical section pins the emitted
        // stream to exactly the snapshot's events.
        drop(handles);
        let mut snapshot = {
            let h = lock_history(&history);
            if let Some(w) = &wire {
                w.disarm();
            }
            h.clone()
        };
        snapshot.stuck = true;
        if let Some(w) = &wire {
            w.finish(true);
        }
        return snapshot;
    }
    for h in handles {
        let _ = h.join();
    }
    // Final sequence: a dedicated observer thread index, totally ordered
    // after all columns (paper §4.3) — here simply run by the coordinator.
    if !matrix.finally.is_empty() {
        let t = ncols;
        for inv in &matrix.finally {
            let op = {
                let mut h = lock_history(&history);
                let op = h.push_call(t, inv.clone());
                if let Some(w) = &wire {
                    w.call(t, inv);
                }
                op
            };
            let response = instance.invoke(inv);
            let mut h = lock_history(&history);
            if let Some(w) = &wire {
                w.ret(t, &response);
            }
            h.push_return(op, response);
        }
    }
    drop(guard);
    if let Some(w) = &wire {
        w.finish(false);
    }
    let h = lock_history(&history).clone();
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{FnOracle, ReplayOracle, StepResult};
    use lineup::doc_support::{BuggyCounterTarget, CounterTarget};
    use lineup::{Invocation, Value};

    fn counter_monitor() -> Monitor<ReplayOracle> {
        Monitor::new(ReplayOracle::new(Arc::new(CounterTarget), Vec::new()))
    }

    fn counter_matrix() -> TestMatrix {
        TestMatrix::from_columns(vec![
            vec![Invocation::new("inc")],
            vec![Invocation::new("inc"), Invocation::new("get")],
        ])
        .with_finally(vec![Invocation::new("get")])
    }

    #[test]
    fn correct_counter_stress_is_green() {
        let m = counter_matrix();
        let monitor = counter_monitor();
        let report = run_stress(
            &CounterTarget,
            &m,
            &monitor,
            &StressOptions {
                runs: 50,
                ..StressOptions::default()
            },
        );
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(report.runs, 50);
        assert_eq!(report.stuck_runs, 0);
        assert!(report.ops >= 50 * 4);
        assert!(report.distinct_histories >= 1);
        // Cache accounting: every run is either a fresh history or a hit.
        assert_eq!(
            report.distinct_histories + report.history_cache_hits as usize,
            report.runs
        );
        assert_eq!(report.monitor_stats.checks, report.monitor_checks);
        // No ADT annotation: every check is a fallback.
        assert_eq!(report.monitor_stats.paths.specialized_checks, 0);
        assert_eq!(
            report.monitor_stats.paths.fallback_checks,
            report.monitor_checks
        );
    }

    #[test]
    fn buggy_counter_is_detected() {
        // The §2.2.1 lost update: two split read-modify-write incs can
        // both read 0; the final get then sees 1, which no serial order
        // explains. Yield injection makes the window likely.
        let m = TestMatrix::from_columns(vec![
            vec![Invocation::new("inc")],
            vec![Invocation::new("inc")],
        ])
        .with_finally(vec![Invocation::new("get")]);
        let monitor = Monitor::new(ReplayOracle::new(Arc::new(BuggyCounterTarget), Vec::new()));
        let report = run_stress(
            &BuggyCounterTarget,
            &m,
            &monitor,
            &StressOptions {
                runs: 5000,
                yield_chance: 2,
                ..StressOptions::default()
            },
        );
        assert!(
            !report.passed(),
            "expected the lost update within {} runs ({} distinct histories)",
            report.runs,
            report.distinct_histories
        );
        let v = &report.violations[0];
        assert!(v.pending.is_none(), "complete-history violation");
        assert!(v.history.is_complete());
    }

    #[test]
    fn witnesses_are_collected() {
        let m = counter_matrix();
        let monitor = counter_monitor();
        let report = run_stress(
            &CounterTarget,
            &m,
            &monitor,
            &StressOptions {
                runs: 20,
                collect_witnesses: true,
                ..StressOptions::default()
            },
        );
        assert!(report.passed());
        assert!(!report.witnesses.is_empty());
        for s in report.witnesses.iter() {
            assert!(!s.is_stuck());
            assert_eq!(s.ops.len(), 4);
        }
    }

    /// A target whose `wait` blocks forever: every run trips the watchdog
    /// and must be *accepted*, because waiting is serially justified.
    #[derive(Debug)]
    struct ForeverTarget;

    #[derive(Debug)]
    struct ForeverInstance {
        event: lineup_sync::Monitor,
    }

    impl lineup::TestInstance for ForeverInstance {
        fn invoke(&self, inv: &Invocation) -> Value {
            match inv.name.as_str() {
                "wait" => {
                    self.event.enter();
                    // No one ever pulses: blocks forever.
                    self.event.wait();
                    self.event.exit();
                    Value::Unit
                }
                other => panic!("unknown operation {other}"),
            }
        }
    }

    impl TestTarget for ForeverTarget {
        type Instance = ForeverInstance;
        fn name(&self) -> &str {
            "Forever"
        }
        fn create(&self) -> ForeverInstance {
            ForeverInstance {
                event: lineup_sync::Monitor::new(),
            }
        }
        fn invocations(&self) -> Vec<Invocation> {
            vec![Invocation::new("wait")]
        }
    }

    #[test]
    fn recorder_streams_every_run() {
        use std::io::Write;

        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = Arc::new(Mutex::new(Vec::new()));
        let rec = Arc::new(StreamRecorder::to_writer(Box::new(Shared(Arc::clone(&buf)))).unwrap());
        let m = counter_matrix();
        let monitor = counter_monitor();
        let report = run_stress(
            &CounterTarget,
            &m,
            &monitor,
            &StressOptions {
                runs: 5,
                recorder: Some(Arc::clone(&rec)),
                ..StressOptions::default()
            },
        );
        assert!(report.passed());
        rec.flush().unwrap();
        // Every completed op produced a call + return event.
        assert_eq!(rec.events(), 2 * report.ops);

        // The emitted bytes parse as one valid stream: 5 registered
        // objects, each register → events → end, properly bracketed.
        let bytes = buf.lock().unwrap().clone();
        let mut reader = lineup_wire::FrameReader::new(&bytes[..]);
        assert_eq!(reader.expect_hello().unwrap(), lineup_wire::VERSION);
        let mut registered = 0;
        let mut ended = 0;
        let mut open: Option<u64> = None;
        while let Some(record) = reader.next_record().unwrap() {
            match record {
                lineup_wire::Record::ObjectRegister { object, kind, .. } => {
                    assert_eq!(kind, None, "counter target has no ADT kind");
                    assert!(open.is_none());
                    open = Some(object);
                    registered += 1;
                }
                lineup_wire::Record::Call { object, .. }
                | lineup_wire::Record::Return { object, .. } => {
                    assert_eq!(Some(object), open);
                }
                lineup_wire::Record::ObjectEnd { object, stuck } => {
                    assert_eq!(Some(object), open.take());
                    assert!(!stuck);
                    ended += 1;
                }
                other => panic!("unexpected record {other:?}"),
            }
        }
        assert_eq!(registered, 5);
        assert_eq!(ended, 5);
    }

    #[test]
    fn justified_blocking_is_stuck_but_green() {
        let m = TestMatrix::from_columns(vec![vec![Invocation::new("wait")]]);
        // Oracle agrees that wait blocks from the initial state.
        let monitor = Monitor::new(FnOracle::new(0u8, |_: &u8, inv: &Invocation| {
            match inv.name.as_str() {
                "wait" => StepResult::Blocks,
                other => StepResult::Panics(format!("unknown {other}")),
            }
        }));
        let report = run_stress(
            &ForeverTarget,
            &m,
            &monitor,
            &StressOptions {
                runs: 2,
                run_timeout: Duration::from_millis(100),
                ..StressOptions::default()
            },
        );
        assert_eq!(report.stuck_runs, 2);
        assert!(
            report.passed(),
            "blocking is justified: {:?}",
            report.violations
        );
    }
}
