//! A minimal, offline drop-in for the subset of the `proptest` crate API
//! this workspace uses. The build environment cannot fetch crates.io, so
//! the real `proptest` cannot be resolved; this stub keeps the workspace
//! property tests runnable and self-contained.
//!
//! Supported surface: the `proptest!` macro (with optional
//! `#![proptest_config(...)]`), `Strategy` with `prop_map` /
//! `prop_recursive` / `boxed`, `BoxedStrategy`, `Just`, `any`,
//! `prop::collection::vec`, string strategies from `[class]{lo,hi}`
//! patterns, `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`,
//! `prop_assert_ne!`, and `prop_assume!`.
//!
//! Differences from real proptest: no shrinking (failures report the
//! original generated case), and generation is seeded deterministically
//! from the test name so runs are reproducible.

pub mod test_runner {
    use rand::{Rng, SeedableRng};

    /// Runner configuration (mirrors `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Maximum number of rejected (`prop_assume!`) cases tolerated.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 32,
                max_global_rejects: 4096,
            }
        }
    }

    impl ProptestConfig {
        /// A config requiring `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was vacuous (`prop_assume!` failed); try another.
        Reject,
        /// The property was falsified.
        Fail(String),
    }

    impl TestCaseError {
        /// Constructs a failure with the given message.
        pub fn fail(message: String) -> Self {
            TestCaseError::Fail(message)
        }
    }

    /// The random source handed to strategies.
    pub struct TestRng(rand::rngs::SmallRng);

    impl TestRng {
        /// A generator seeded deterministically from `name`.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the test name: stable across runs and platforms.
            let mut h = 0xcbf29ce484222325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng(rand::rngs::SmallRng::seed_from_u64(h))
        }

        /// Uniform draw from `0..bound` (`bound` must be non-zero).
        pub fn index(&mut self, bound: usize) -> usize {
            self.0.gen_range(0usize..bound)
        }

        /// Uniform draw from a half-open range.
        pub fn range<T: rand::SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
            self.0.gen_range(range)
        }

        /// Raw 64 random bits.
        pub fn bits(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// A generator of values of type `Self::Value` (mirrors
    /// `proptest::strategy::Strategy`, minus shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
        where
            Self: Sized + 'static,
            U: 'static,
            F: Fn(Self::Value) -> U + 'static,
        {
            let inner = self;
            BoxedStrategy(Rc::new(move |rng| f(inner.generate(rng))))
        }

        /// Builds recursive values: `self` generates leaves, and `recurse`
        /// wraps a strategy for depth-`k` values into one for depth-`k+1`
        /// values. `depth` bounds the nesting; the size hints are accepted
        /// for API compatibility but unused (no shrinking here).
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(current).boxed();
                current = union(vec![leaf.clone(), deeper]);
            }
            current
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let inner = self;
            BoxedStrategy(Rc::new(move |rng| inner.generate(rng)))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Picks uniformly among `arms` each generation (the engine behind
    /// `prop_oneof!`).
    pub fn union<T: 'static>(arms: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        BoxedStrategy(Rc::new(move |rng| {
            let i = rng.index(arms.len());
            arms[i].generate(rng)
        }))
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<T> Strategy for std::ops::Range<T>
    where
        T: rand::SampleUniform + 'static,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);

    impl Strategy for &'static str {
        type Value = String;

        /// Interprets the string as a tiny regex subset: a sequence of
        /// units, each a literal char or a `[...]` class (supporting
        /// ranges and backslash escapes), optionally repeated by `{n}` or
        /// `{lo,hi}`.
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            let mut chars = self.chars().peekable();
            while let Some(c) = chars.next() {
                let alphabet: Vec<char> = if c == '[' {
                    let mut set = Vec::new();
                    loop {
                        let m = chars.next().expect("unterminated [class] in pattern");
                        if m == ']' {
                            break;
                        }
                        let m = if m == '\\' {
                            unescape(chars.next().expect("dangling escape"))
                        } else {
                            m
                        };
                        // Range `a-b` (a `-` not followed by `]`).
                        if chars.peek() == Some(&'-') {
                            let mut probe = chars.clone();
                            probe.next();
                            if probe.peek().is_some() && probe.peek() != Some(&']') {
                                chars.next(); // consume '-'
                                let hi = chars.next().unwrap();
                                let hi = if hi == '\\' {
                                    unescape(chars.next().expect("dangling escape"))
                                } else {
                                    hi
                                };
                                for u in (m as u32)..=(hi as u32) {
                                    if let Some(ch) = char::from_u32(u) {
                                        set.push(ch);
                                    }
                                }
                                continue;
                            }
                        }
                        set.push(m);
                    }
                    set
                } else if c == '\\' {
                    vec![unescape(chars.next().expect("dangling escape"))]
                } else {
                    vec![c]
                };

                let (lo, hi) = if chars.peek() == Some(&'{') {
                    chars.next();
                    let mut spec = String::new();
                    for m in chars.by_ref() {
                        if m == '}' {
                            break;
                        }
                        spec.push(m);
                    }
                    match spec.split_once(',') {
                        Some((a, b)) => (
                            a.trim().parse::<usize>().expect("bad repeat bound"),
                            b.trim().parse::<usize>().expect("bad repeat bound"),
                        ),
                        None => {
                            let n = spec.trim().parse::<usize>().expect("bad repeat count");
                            (n, n)
                        }
                    }
                } else {
                    (1, 1)
                };

                let count = lo + rng.index(hi - lo + 1);
                for _ in 0..count {
                    out.push(alphabet[rng.index(alphabet.len())]);
                }
            }
            out
        }
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }
}

pub mod arbitrary {
    use std::rc::Rc;

    use crate::strategy::BoxedStrategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy (mirrors
    /// `proptest::arbitrary::Arbitrary`).
    pub trait Arbitrary: Sized + 'static {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.bits() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.bits() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
        BoxedStrategy(Rc::new(|rng| T::arbitrary(rng)))
    }
}

pub mod collection {
    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Accepted sizes for collection strategies: an exact count or a
    /// half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Generates `Vec`s of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.lo + rng.index(self.size.hi_exclusive - self.size.lo);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirror of the `prop` module alias exported by the real prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Fails the current test case with a formatted message unless `cond`
/// holds. Only usable inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?} == {:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Inequality assertion for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?} != {:?}`",
            left,
            right
        );
    }};
}

/// Rejects the current case (vacuous input) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among several strategies generating the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::union(::std::vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    // Internal: no test functions left.
    (@munch ($cfg:expr)) => {};

    // Internal: one test function, then recurse on the rest.
    (@munch ($cfg:expr)
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(::std::stringify!($name));
            $(let $arg = $strat;)*
            let mut passed = 0u32;
            let mut rejected = 0u32;
            while passed < config.cases {
                $(let $arg =
                    $crate::strategy::Strategy::generate(&$arg, &mut rng);)*
                let outcome = (|| -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject,
                    ) => {
                        rejected += 1;
                        if rejected > config.max_global_rejects {
                            ::std::panic!(
                                "proptest: too many rejected cases ({})",
                                rejected
                            );
                        }
                    }
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(message),
                    ) => {
                        ::std::panic!(
                            "proptest case {} failed: {}",
                            passed + 1,
                            message
                        );
                    }
                }
            }
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };

    // Entry with an explicit config.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };

    // Entry with the default config.
    ($($rest:tt)*) => {
        $crate::proptest!(
            @munch ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn string_pattern_respects_class_and_bounds() {
        let mut rng = TestRng::for_test("string_pattern");
        for _ in 0..200 {
            let s = "[a-c]{2,5}".generate(&mut rng);
            assert!((2..=5).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn string_pattern_handles_escapes_and_ranges() {
        let mut rng = TestRng::for_test("escapes");
        for _ in 0..200 {
            let s = "[ -~\n]{0,10}".generate(&mut rng);
            assert!(s.len() <= 10);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..200 {
            let (a, b) = (0usize..3, -5i64..5).generate(&mut rng);
            assert!(a < 3);
            assert!((-5..5).contains(&b));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::for_test("vecs");
        for _ in 0..100 {
            let v = prop::collection::vec(0usize..4, 1..7).generate(&mut rng);
            assert!((1..7).contains(&v.len()));
            let exact = prop::collection::vec(0usize..4, 3).generate(&mut rng);
            assert_eq!(exact.len(), 3);
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                prop::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut rng = TestRng::for_test("trees");
        for _ in 0..100 {
            assert!(depth(&strat.generate(&mut rng)) <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_assertions_work(x in 0usize..100, flip in any::<bool>()) {
            prop_assume!(x != 50);
            prop_assert!(x < 100);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
            if flip {
                return Ok(());
            }
        }
    }
}
