//! A minimal, dependency-free drop-in for the subset of the `rand` 0.8
//! API this workspace uses (`SmallRng`, `StdRng`, `SeedableRng`,
//! `Rng::gen_range`, `Rng::gen_bool`, `Rng::gen`).
//!
//! The build environment has no network access to crates.io, so the real
//! `rand` crate cannot be fetched; this stub keeps the workspace
//! self-contained. Only determinism-per-seed matters for the callers
//! (search strategies, random test generation) — statistical quality
//! requirements are modest, so both generators are SplitMix64-seeded
//! xoshiro256**, the same family the real `SmallRng` uses.

#![warn(missing_docs)]

/// Re-export module mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::{SmallRng, StdRng};
}

/// Sequence helpers mirroring `rand::seq`.
pub mod seq {
    use crate::Rng;

    /// Slice extensions mirroring `rand::seq::SliceRandom` (the subset
    /// the corpus scheduler needs: `shuffle` and `choose`).
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates, seeded through
        /// `rng`, so a fixed seed gives a fixed permutation).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if the slice is
        /// empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates, high to low, matching the real crate's
            // element-equally-likely guarantee.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Distribution helpers mirroring `rand::distributions`.
pub mod distributions {
    use crate::Rng;

    /// Error from [`WeightedIndex::new`] (mirrors
    /// `rand::distributions::WeightedError`).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum WeightedError {
        /// The weight list was empty.
        NoItem,
        /// All weights were zero (or the total overflowed).
        AllWeightsZero,
    }

    /// Samples indexes in proportion to a list of `u64` weights (the
    /// integer-weight subset of `rand::distributions::WeightedIndex`).
    #[derive(Debug, Clone)]
    pub struct WeightedIndex {
        /// Cumulative weight at the *end* of each item: item `i` owns the
        /// half-open value range `[cumulative[i-1], cumulative[i])`.
        cumulative: Vec<u64>,
        total: u64,
    }

    impl WeightedIndex {
        /// Builds the sampler. Zero-weight items are kept (and never
        /// drawn), matching the real crate.
        pub fn new<I>(weights: I) -> Result<Self, WeightedError>
        where
            I: IntoIterator<Item = u64>,
        {
            let mut cumulative = Vec::new();
            let mut total: u64 = 0;
            for w in weights {
                total = total.checked_add(w).ok_or(WeightedError::AllWeightsZero)?;
                cumulative.push(total);
            }
            if cumulative.is_empty() {
                return Err(WeightedError::NoItem);
            }
            if total == 0 {
                return Err(WeightedError::AllWeightsZero);
            }
            Ok(WeightedIndex { cumulative, total })
        }

        /// Draws one index, item `i` with probability `weights[i] / total`.
        pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
            let x = rng.gen_range(0..self.total);
            // First item whose cumulative weight exceeds x.
            self.cumulative.partition_point(|&c| c <= x)
        }
    }
}

/// A seedable random number generator (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a `Range` by [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[lo, hi)` given a raw `u64` source.
    fn sample_from(rng: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_from(rng: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u128;
                // Rejection-free modulo is fine for our span sizes.
                let r = ((rng() as u128) << 64 | rng() as u128) % span;
                lo.wrapping_add(r as $t)
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_from(rng: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let r = ((rng() as u128) << 64 | rng() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Generates a value from a raw `u64` source.
    fn generate(rng: &mut dyn FnMut() -> u64) -> Self;
}

impl Standard for bool {
    fn generate(rng: &mut dyn FnMut() -> u64) -> Self {
        rng() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn generate(rng: &mut dyn FnMut() -> u64) -> Self {
                rng() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing generator interface (mirrors `rand::Rng`).
pub trait Rng {
    /// Returns the next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        let mut f = || self.next_u64();
        T::sample_from(&mut f, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        ((self.next_u64() >> 11) as f64) / ((1u64 << 53) as f64) < p
    }

    /// Generates a value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        let mut f = || self.next_u64();
        T::generate(&mut f)
    }
}

/// xoshiro256** core shared by both generator types.
#[derive(Debug, Clone)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Xoshiro256 {
            s: [next(), next(), next(), next()],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

macro_rules! define_rng {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name(Xoshiro256);

        impl SeedableRng for $name {
            fn seed_from_u64(seed: u64) -> Self {
                $name(Xoshiro256::seed_from_u64(seed))
            }
        }

        impl Rng for $name {
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64()
            }
        }
    };
}

define_rng! {
    /// A small, fast generator (mirrors `rand::rngs::SmallRng`).
    SmallRng
}

define_rng! {
    /// The default generator (mirrors `rand::rngs::StdRng`). Not
    /// cryptographically secure — none of our uses need that.
    StdRng
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!(0..50).any(|_| r.gen_bool(0.0)));
        assert!((0..50).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn gen_standard_types() {
        let mut r = StdRng::seed_from_u64(3);
        let _: bool = r.gen();
        let _: u16 = r.gen();
        let _: i64 = r.gen();
    }

    mod seq {
        use super::super::seq::SliceRandom;
        use super::super::*;

        #[test]
        fn shuffle_is_a_permutation() {
            let mut r = SmallRng::seed_from_u64(11);
            let mut v: Vec<u32> = (0..20).collect();
            v.shuffle(&mut r);
            let mut sorted = v.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..20).collect::<Vec<u32>>());
        }

        #[test]
        fn shuffle_deterministic_per_seed() {
            let mut a: Vec<u32> = (0..16).collect();
            let mut b = a.clone();
            a.shuffle(&mut SmallRng::seed_from_u64(5));
            b.shuffle(&mut SmallRng::seed_from_u64(5));
            assert_eq!(a, b);
            let mut c: Vec<u32> = (0..16).collect();
            c.shuffle(&mut SmallRng::seed_from_u64(6));
            assert_ne!(a, c, "different seeds should permute differently");
        }

        #[test]
        fn shuffle_reaches_every_position() {
            // Element 0 must be able to land anywhere (Fisher–Yates is
            // unbiased; here we only smoke-test reachability).
            let mut r = SmallRng::seed_from_u64(2);
            let mut landed = [false; 4];
            for _ in 0..200 {
                let mut v = [0u8, 1, 2, 3];
                v.shuffle(&mut r);
                landed[v.iter().position(|&x| x == 0).unwrap()] = true;
            }
            assert!(landed.iter().all(|&l| l));
        }

        #[test]
        fn choose_empty_and_nonempty() {
            let mut r = SmallRng::seed_from_u64(8);
            let empty: [u8; 0] = [];
            assert_eq!(empty.choose(&mut r), None);
            let v = [10u8, 20, 30];
            let mut seen = [false; 3];
            for _ in 0..100 {
                let &x = v.choose(&mut r).unwrap();
                seen[(x / 10 - 1) as usize] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    mod distributions {
        use super::super::distributions::{WeightedError, WeightedIndex};
        use super::super::*;

        #[test]
        fn rejects_degenerate_weights() {
            assert_eq!(
                WeightedIndex::new(std::iter::empty()).unwrap_err(),
                WeightedError::NoItem
            );
            assert_eq!(
                WeightedIndex::new([0, 0, 0]).unwrap_err(),
                WeightedError::AllWeightsZero
            );
        }

        #[test]
        fn zero_weight_items_never_drawn() {
            let w = WeightedIndex::new([3, 0, 5]).unwrap();
            let mut r = SmallRng::seed_from_u64(4);
            for _ in 0..500 {
                assert_ne!(w.sample(&mut r), 1);
            }
        }

        #[test]
        fn samples_roughly_in_proportion() {
            let w = WeightedIndex::new([1, 9]).unwrap();
            let mut r = SmallRng::seed_from_u64(7);
            let heavy = (0..2000).filter(|_| w.sample(&mut r) == 1).count();
            // Expected 1800; a generous band keeps the test robust.
            assert!((1600..=1950).contains(&heavy), "heavy = {heavy}");
        }

        #[test]
        fn deterministic_per_seed() {
            let w = WeightedIndex::new([2, 3, 5]).unwrap();
            let mut a = SmallRng::seed_from_u64(9);
            let mut b = SmallRng::seed_from_u64(9);
            for _ in 0..100 {
                assert_eq!(w.sample(&mut a), w.sample(&mut b));
            }
        }
    }
}
