//! Exploration configuration.

/// How virtual threads are executed by [`explore`](crate::explore).
///
/// The backend decides what a baton *handoff* physically is; the schedule
/// *point* (step accounting, POR footprint settlement, enabled-set and
/// livelock checks, strategy consultation, decision recording) is backend-
/// independent, so schedules, histories, sleep sets, and work-stealing
/// subtree partitions are byte-identical across backends
/// (`tests/backend_equivalence.rs` asserts this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// One pooled OS thread per virtual thread; handoffs park/unpark
    /// through a [`WakeSlot`](crate::runtime) one-token parker. Works on
    /// every platform and is mandatory for [native](crate::native)
    /// passthrough mode, where blocking must block a real thread.
    OsThreads,
    /// Stackful coroutines on the exploring OS thread (see the
    /// [`fiber`](crate::fiber) module): a handoff is a direct userspace
    /// stack switch — no park/unpark, no kernel transition. Falls back to
    /// [`Backend::OsThreads`] on unsupported targets (anything other than
    /// x86_64 Linux, or when the `fibers` cargo feature is disabled).
    Fibers,
}

impl Backend {
    /// The preferred backend for this build: [`Backend::Fibers`] where the
    /// fiber context switch is implemented (x86_64 Linux with the `fibers`
    /// feature, the default), else [`Backend::OsThreads`].
    pub fn default_backend() -> Backend {
        if crate::fiber::supported() {
            Backend::Fibers
        } else {
            Backend::OsThreads
        }
    }

    /// The backend actually used: a [`Backend::Fibers`] request degrades
    /// to [`Backend::OsThreads`] on targets without fiber support, so a
    /// `Config` serialized on one machine stays valid on another.
    pub fn effective(self) -> Backend {
        match self {
            Backend::Fibers if crate::fiber::supported() => Backend::Fibers,
            _ => Backend::OsThreads,
        }
    }
}

impl Default for Backend {
    fn default() -> Self {
        Backend::default_backend()
    }
}

/// How context switches are constrained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Full concurrent exploration: the scheduler may switch at every
    /// schedule point (subject to the preemption bound). Used by Line-Up
    /// phase 2.
    Concurrent,
    /// Serial exploration: context switches are only allowed at operation
    /// boundaries (and forced when the running thread blocks, which ends
    /// the run as [`RunOutcome::StuckSerial`](crate::RunOutcome)). Used by
    /// Line-Up phase 1 to enumerate sequential behaviors.
    Serial,
}

/// The search strategy used to enumerate schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrategyKind {
    /// Exhaustive depth-first search over all choices (with replay).
    Dfs,
    /// Uniform random walk: each run picks every choice uniformly at
    /// random. Runs are independent; `max_runs` bounds the sample.
    Random {
        /// Seed for the pseudo-random choices, so explorations replay.
        seed: u64,
    },
    /// Probabilistic concurrency testing (PCT, Burckhardt et al. ASPLOS
    /// 2010): random thread priorities with `depth − 1` random priority-
    /// change points per run. Better bug-finding probability than a
    /// uniform random walk for bugs of bounded depth; `max_runs` bounds
    /// the sample.
    Pct {
        /// Seed for priorities and change points.
        seed: u64,
        /// Bug depth `d` (number of ordering constraints to hit).
        depth: usize,
    },
    /// Replays one recorded run: the decision indexes of a previous
    /// [`RunResult`](crate::RunResult) (its `decisions` field). Exactly
    /// one run is executed; because executions are deterministic given
    /// their decisions, it reproduces the original schedule and history.
    Replay {
        /// The recorded decision indexes.
        decisions: Vec<usize>,
    },
    /// Depth-first search restricted to the subtree rooted at a fixed
    /// decision prefix (see
    /// [`PrefixDfsStrategy`](crate::strategy::PrefixDfsStrategy)): the
    /// prefix is replayed at the start of every run and the DFS backtracks
    /// only beyond it. The unit of work of parallel exploration: every
    /// task claimed from a [`StealPool`](crate::explorer::StealPool) —
    /// whether the seed task or a stolen subtree — is explored as a
    /// prefix DFS.
    PrefixDfs {
        /// The decision prefix identifying the subtree.
        prefix: Vec<usize>,
        /// Per-decision sleep-set masks accumulated along the prefix by
        /// the victim at the moment of the split (see
        /// [`DfsStrategy::split_deepest`](crate::strategy::DfsStrategy));
        /// empty when partial-order reduction is off. Thieves replaying
        /// the prefix re-install these masks so they do not re-explore
        /// subtrees the victim's sleep set already covers.
        sleep: Vec<u64>,
    },
    /// Coverage-guided schedule fuzzing (see the
    /// [`coverage`](crate::coverage) module): runs fold per-decision
    /// coverage signatures into a shared bitmap, novel runs enter a
    /// corpus of decision vectors, and later runs replay + mutate corpus
    /// parents (flip a choice, splice two parents, extend a truncated
    /// prefix randomly, inject a preemption). Non-exhaustive like
    /// [`Random`](StrategyKind::Random) — `max_runs` bounds the campaign
    /// — but spends its budget near schedules that keep discovering new
    /// scheduler states, which is what cracks seeded bugs on matrices
    /// exhaustive search cannot finish.
    Coverage {
        /// Seed for mutation planning and random tails: a fixed seed
        /// reproduces the exact run sequence.
        seed: u64,
    },
    /// Enumerates the disjoint subtree roots at decision depth `depth`
    /// (see [`FrontierStrategy`](crate::strategy::FrontierStrategy)): one
    /// run per depth-`depth` decision prefix, always taking the first
    /// alternative beyond the frontier. Legacy partitioner used by
    /// [`split_frontier`](crate::explorer::split_frontier); the checker's
    /// parallel mode now splits subtrees dynamically via
    /// [`StealingStrategy`](crate::explorer::StealingStrategy) instead,
    /// which replays prefixes only when a steal actually happens.
    Frontier {
        /// The split depth (number of leading decisions to enumerate).
        depth: usize,
    },
}

/// Configuration for one [`explore`](crate::explore) call.
#[derive(Debug, Clone)]
pub struct Config {
    /// Serial or concurrent exploration.
    pub mode: Mode,
    /// Search strategy.
    pub strategy: StrategyKind,
    /// CHESS-style preemption bound: maximum number of context switches
    /// away from an enabled, non-yielding thread per run. `None` means
    /// unbounded. Switches at yields, blocks and thread completions are
    /// always free, so spin loops cannot exhaust the budget.
    pub preemption_bound: Option<usize>,
    /// Upper bound on the number of runs (safety net; `None` = unbounded).
    pub max_runs: Option<u64>,
    /// Upper bound on schedule points in one run; exceeding it aborts the
    /// exploration with a panic, indicating an unbounded loop that the
    /// livelock detector did not catch.
    pub max_steps: usize,
    /// Number of complete scheduling rounds in which every enabled thread
    /// only yields (no thread performs a state-changing action) before the
    /// run is declared a fair livelock.
    pub livelock_rounds: usize,
    /// Whether to record the full access log (needed by the §5.6
    /// comparison checkers; Line-Up itself does not need it).
    pub record_accesses: bool,
    /// Number of OS worker threads exploring disjoint schedule subtrees
    /// concurrently, coordinated by a work-stealing
    /// [`StealPool`](crate::explorer::StealPool). `1` (the default) means
    /// serial exploration; [`explore`](crate::explore) itself always runs
    /// serially regardless of this setting.
    pub workers: usize,
    /// Decision depth at which the *legacy* static partitioner
    /// [`split_frontier`](crate::explorer::split_frontier) cuts the
    /// schedule tree. `None` uses [`Config::DEFAULT_SPLIT_DEPTH`]. The
    /// work-stealing scheduler ignores this: it splits at the victim's
    /// deepest unexplored branch point, wherever that happens to be.
    pub split_depth: Option<usize>,
    /// Whether partial-order reduction (sleep sets + happens-before
    /// backtracking, see the [`por`](crate::por) module) prunes
    /// Mazurkiewicz-equivalent schedules. Defaults to `true`, but only
    /// takes effect for exhaustive concurrent strategies — see
    /// [`Config::effective_por`].
    pub por: bool,
    /// Whether the same-thread continuation fast path is taken at schedule
    /// points: when the scheduler picks the thread that is already running,
    /// it continues inline instead of parking and immediately waking
    /// itself through its wakeup slot. Defaults to `true`; setting it to
    /// `false` forces every schedule point through the full slot-based
    /// handoff. A debug knob: the scheduling *decisions* are identical
    /// either way (only the OS-level handoff is skipped), which
    /// `tests/handoff_equivalence.rs` asserts by comparing explorations
    /// with the knob on and off.
    pub fast_path: bool,
    /// Thread-symmetry groups of the test, one bitmask per group: each
    /// mask names a maximal set of virtual threads that execute identical
    /// programs up to value renaming (computed by the caller, e.g.
    /// `TestMatrix::symmetry_groups` in `lineup`). Empty (the default)
    /// means no symmetry reduction. When non-empty and
    /// [`Config::effective_symmetry`] holds, the scheduler prunes
    /// sibling orderings among *fresh* (not-yet-started) threads of the
    /// same group: only the lowest-indexed fresh member may be scheduled
    /// first, because any schedule starting with a higher-indexed member
    /// is the image of an already-explored schedule under a group
    /// permutation.
    pub symmetry: Vec<u64>,
    /// Execution backend for the virtual threads (see [`Backend`]).
    /// Defaults to [`Backend::default_backend`]: fibers where supported,
    /// OS threads elsewhere. Purely a mechanism choice — explorations are
    /// byte-identical across backends.
    pub backend: Backend,
    /// Usable stack size (bytes) of each fiber when
    /// [`backend`](Config::backend) is [`Backend::Fibers`]; rounded up to
    /// a page, with one guard page added below on targets with mmap.
    /// `None` uses [`Config::DEFAULT_FIBER_STACK`]. Exceeding the limit at
    /// a schedule point aborts the run with a clear diagnostic (reported
    /// as a panicked run); blowing past it *between* schedule points hits
    /// the guard page.
    pub fiber_stack_size: Option<usize>,
}

impl Config {
    /// Default split depth for the legacy static frontier partitioner
    /// (see [`Config::split_depth`]): deep enough to yield many more
    /// subtrees than workers on typical 2–3-thread tests, shallow enough
    /// that the serial frontier enumeration stays a negligible fraction
    /// of the exploration.
    pub const DEFAULT_SPLIT_DEPTH: usize = 4;

    /// Default usable fiber stack size (see [`Config::fiber_stack_size`]):
    /// 1 MiB, comfortably above what instrumented collection operations
    /// need even in debug builds, while a few fibers per exploration keep
    /// total reservation negligible.
    pub const DEFAULT_FIBER_STACK: usize = 1 << 20;

    /// Exhaustive, unbounded concurrent exploration.
    pub fn exhaustive() -> Self {
        Config {
            mode: Mode::Concurrent,
            strategy: StrategyKind::Dfs,
            preemption_bound: None,
            max_runs: None,
            max_steps: 20_000,
            livelock_rounds: 4,
            record_accesses: false,
            workers: 1,
            split_depth: None,
            por: true,
            symmetry: Vec::new(),
            fast_path: true,
            backend: Backend::default_backend(),
            fiber_stack_size: None,
        }
    }

    /// Concurrent DFS exploration with the given preemption bound
    /// (the paper uses 2, the CHESS default, for most classes — §5.4).
    pub fn preemption_bounded(bound: usize) -> Self {
        Config {
            preemption_bound: Some(bound),
            ..Config::exhaustive()
        }
    }

    /// Serial exploration (Line-Up phase 1): enumerate all serial
    /// executions of the test, without preempting threads inside
    /// operations.
    pub fn serial() -> Self {
        Config {
            mode: Mode::Serial,
            ..Config::exhaustive()
        }
    }

    /// Random-walk exploration with the given seed and number of runs.
    pub fn random(seed: u64, runs: u64) -> Self {
        Config {
            strategy: StrategyKind::Random { seed },
            max_runs: Some(runs),
            ..Config::exhaustive()
        }
    }

    /// PCT exploration (see [`StrategyKind::Pct`]) with the given seed,
    /// depth and run budget.
    pub fn pct(seed: u64, depth: usize, runs: u64) -> Self {
        Config {
            strategy: StrategyKind::Pct { seed, depth },
            max_runs: Some(runs),
            ..Config::exhaustive()
        }
    }

    /// Coverage-guided schedule fuzzing (see [`StrategyKind::Coverage`])
    /// with the given seed and run budget.
    pub fn coverage(seed: u64, runs: u64) -> Self {
        Config {
            strategy: StrategyKind::Coverage { seed },
            max_runs: Some(runs),
            ..Config::exhaustive()
        }
    }

    /// Replays one previously-recorded run (see
    /// [`StrategyKind::Replay`]). The mode and preemption bound must match
    /// the original exploration for the decision points to line up.
    pub fn replay(decisions: Vec<usize>) -> Self {
        Config {
            strategy: StrategyKind::Replay { decisions },
            max_runs: Some(1),
            ..Config::exhaustive()
        }
    }

    /// Sets [`Config::record_accesses`], builder style.
    pub fn with_access_log(mut self, record: bool) -> Self {
        self.record_accesses = record;
        self
    }

    /// Sets [`Config::max_runs`], builder style.
    pub fn with_max_runs(mut self, runs: u64) -> Self {
        self.max_runs = Some(runs);
        self
    }

    /// Explores the subtree rooted at the given decision prefix with DFS
    /// (see [`StrategyKind::PrefixDfs`]).
    pub fn prefix_dfs(prefix: Vec<usize>) -> Self {
        Config {
            strategy: StrategyKind::PrefixDfs {
                prefix,
                sleep: Vec::new(),
            },
            ..Config::exhaustive()
        }
    }

    /// Sets [`Config::workers`], builder style. `n` must be at least 1.
    pub fn with_workers(mut self, n: usize) -> Self {
        assert!(n >= 1, "workers must be at least 1");
        self.workers = n;
        self
    }

    /// Sets [`Config::split_depth`], builder style.
    pub fn with_split_depth(mut self, depth: usize) -> Self {
        self.split_depth = Some(depth);
        self
    }

    /// The legacy frontier split depth in effect (see
    /// [`Config::split_depth`]); the work-stealing scheduler does not
    /// consult it.
    pub fn effective_split_depth(&self) -> usize {
        self.split_depth.unwrap_or(Self::DEFAULT_SPLIT_DEPTH)
    }

    /// Sets [`Config::por`], builder style.
    pub fn with_por(mut self, por: bool) -> Self {
        self.por = por;
        self
    }

    /// Sets [`Config::symmetry`], builder style: one bitmask per
    /// thread-symmetry group (see the field docs). Passing an empty
    /// vector disables symmetry reduction.
    pub fn with_symmetry(mut self, groups: Vec<u64>) -> Self {
        self.symmetry = groups;
        self
    }

    /// Sets [`Config::fast_path`], builder style. Passing `false` forces
    /// the slow slot-based handoff at every schedule point (a debug knob
    /// for equivalence testing and for isolating the fast path's
    /// contribution in benchmarks).
    pub fn with_fast_path(mut self, fast_path: bool) -> Self {
        self.fast_path = fast_path;
        self
    }

    /// Sets [`Config::backend`], builder style. A [`Backend::Fibers`]
    /// request degrades to OS threads on unsupported targets (see
    /// [`Backend::effective`]).
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets [`Config::fiber_stack_size`], builder style (bytes of usable
    /// stack per fiber; only read by the fiber backend).
    pub fn with_fiber_stack_size(mut self, bytes: usize) -> Self {
        self.fiber_stack_size = Some(bytes);
        self
    }

    /// The usable fiber stack size in effect (see
    /// [`Config::fiber_stack_size`]).
    pub fn effective_fiber_stack(&self) -> usize {
        self.fiber_stack_size.unwrap_or(Self::DEFAULT_FIBER_STACK)
    }

    /// Whether partial-order reduction is actually applied: it requires
    /// [`Config::por`], concurrent mode, *no* preemption bound, and an
    /// exhaustive strategy (DFS, prefix DFS, or frontier enumeration).
    ///
    /// Preemption-bounded exploration keeps POR off because sleep sets are
    /// unsound under a preemption bound: the representative schedule of an
    /// equivalence class may need more preemptions than the class members
    /// the sleep set pruned, so a bounded search could lose the class
    /// entirely (cf. bounded partial-order reduction, Coons, Musuvathi &
    /// McKinley, OOPSLA 2013). Replay ignores pruning by construction
    /// ([`StrategyKind::Replay`] is excluded here), and serial phase-1
    /// mode is untouched. Sampling strategies (random walk, PCT,
    /// coverage-guided fuzzing) also stay unreduced: sleep sets encode
    /// "this subtree was exhaustively covered elsewhere", a statement a
    /// guided sample never earns — pruning there would be unsound, so
    /// coverage feedback only *orders* exploration and never prunes it.
    pub fn effective_por(&self) -> bool {
        self.por
            && self.mode == Mode::Concurrent
            && self.preemption_bound.is_none()
            && matches!(
                self.strategy,
                StrategyKind::Dfs | StrategyKind::PrefixDfs { .. } | StrategyKind::Frontier { .. }
            )
    }

    /// Whether symmetry reduction is actually applied: it requires
    /// non-empty [`Config::symmetry`] groups and the same exhaustive-
    /// concurrent gate as [`Config::effective_por`] — concurrent mode, no
    /// preemption bound, and a DFS / prefix-DFS / frontier strategy.
    ///
    /// The gating reasons mirror POR's. Under a preemption bound, pruning
    /// a sibling ordering is unsound for the same reason sleep sets are:
    /// the canonical (lowest-index-first) representative of a symmetry
    /// class may cost more preemptions than the pruned member, so a
    /// bounded search could lose the class entirely. Serial phase-1 mode
    /// must stay unpruned because the specification is the *set* of
    /// serial observations — dropping a renamed serial run would shrink
    /// the synthesized spec. Sampling strategies and replay make no
    /// coverage claim a prune could rely on, and replay in particular
    /// must reproduce recorded decisions verbatim.
    pub fn effective_symmetry(&self) -> bool {
        !self.symmetry.is_empty()
            && self.mode == Mode::Concurrent
            && self.preemption_bound.is_none()
            && matches!(
                self.strategy,
                StrategyKind::Dfs | StrategyKind::PrefixDfs { .. } | StrategyKind::Frontier { .. }
            )
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_modes() {
        assert_eq!(Config::exhaustive().mode, Mode::Concurrent);
        assert_eq!(Config::serial().mode, Mode::Serial);
        assert_eq!(Config::preemption_bounded(2).preemption_bound, Some(2));
        assert!(matches!(
            Config::random(7, 10).strategy,
            StrategyKind::Random { seed: 7 }
        ));
        assert_eq!(Config::random(7, 10).max_runs, Some(10));
    }

    #[test]
    fn builders_compose() {
        let c = Config::serial().with_access_log(true).with_max_runs(5);
        assert!(c.record_accesses);
        assert_eq!(c.max_runs, Some(5));
        assert_eq!(c.mode, Mode::Serial);
    }

    #[test]
    fn default_is_exhaustive() {
        let c = Config::default();
        assert_eq!(c.mode, Mode::Concurrent);
        assert_eq!(c.preemption_bound, None);
        assert_eq!(c.workers, 1);
        assert_eq!(c.split_depth, None);
    }

    #[test]
    fn worker_and_split_builders() {
        let c = Config::exhaustive().with_workers(4).with_split_depth(6);
        assert_eq!(c.workers, 4);
        assert_eq!(c.split_depth, Some(6));
        assert_eq!(c.effective_split_depth(), 6);
        assert_eq!(
            Config::exhaustive().effective_split_depth(),
            Config::DEFAULT_SPLIT_DEPTH
        );
    }

    #[test]
    fn fast_path_defaults_on_and_can_be_forced_off() {
        assert!(Config::exhaustive().fast_path);
        assert!(Config::serial().fast_path);
        assert!(!Config::exhaustive().with_fast_path(false).fast_path);
    }

    #[test]
    #[should_panic(expected = "workers must be at least 1")]
    fn zero_workers_rejected() {
        let _ = Config::exhaustive().with_workers(0);
    }

    #[test]
    fn prefix_dfs_constructor() {
        let c = Config::prefix_dfs(vec![1, 0, 2]);
        assert!(matches!(
            c.strategy,
            StrategyKind::PrefixDfs { ref prefix, .. } if prefix == &[1, 0, 2]
        ));
    }

    #[test]
    fn por_defaults_on_for_exhaustive_strategies() {
        assert!(Config::exhaustive().effective_por());
        assert!(Config::prefix_dfs(vec![0]).effective_por());
        let frontier = Config {
            strategy: StrategyKind::Frontier { depth: 3 },
            ..Config::exhaustive()
        };
        assert!(frontier.effective_por());
    }

    #[test]
    fn por_gated_off_where_unsound_or_meaningless() {
        assert!(!Config::exhaustive().with_por(false).effective_por());
        assert!(
            !Config::preemption_bounded(2).effective_por(),
            "sleep sets are unsound under a preemption bound"
        );
        assert!(!Config::serial().effective_por(), "phase 1 is untouched");
        assert!(
            !Config::replay(vec![0, 1]).effective_por(),
            "replay must ignore pruning"
        );
        assert!(!Config::random(1, 10).effective_por());
        assert!(!Config::pct(1, 3, 10).effective_por());
        assert!(
            !Config::coverage(1, 10).effective_por(),
            "coverage feedback orders exploration; it must never prune"
        );
    }

    #[test]
    fn symmetry_gated_like_por() {
        let sym = Config::exhaustive().with_symmetry(vec![0b011]);
        assert!(sym.effective_symmetry());
        assert!(
            !Config::exhaustive().effective_symmetry(),
            "no groups, no reduction"
        );
        assert!(!sym.clone().with_symmetry(Vec::new()).effective_symmetry());
        let bounded = Config {
            preemption_bound: Some(2),
            ..sym.clone()
        };
        assert!(
            !bounded.effective_symmetry(),
            "sibling pruning is unsound under a preemption bound"
        );
        let serial = Config {
            mode: Mode::Serial,
            ..sym.clone()
        };
        assert!(
            !serial.effective_symmetry(),
            "phase 1 must enumerate every serial observation"
        );
        for strategy in [
            StrategyKind::Random { seed: 1 },
            StrategyKind::Pct { seed: 1, depth: 3 },
            StrategyKind::Coverage { seed: 1 },
            StrategyKind::Replay { decisions: vec![0] },
        ] {
            let c = Config {
                strategy,
                ..sym.clone()
            };
            assert!(!c.effective_symmetry());
        }
        let prefix = Config {
            strategy: StrategyKind::PrefixDfs {
                prefix: vec![0],
                sleep: Vec::new(),
            },
            ..sym.clone()
        };
        assert!(prefix.effective_symmetry());
        let frontier = Config {
            strategy: StrategyKind::Frontier { depth: 2 },
            ..sym
        };
        assert!(frontier.effective_symmetry());
    }

    #[test]
    fn backend_defaults_and_builders() {
        let c = Config::exhaustive();
        assert_eq!(c.backend, Backend::default_backend());
        assert_eq!(c.effective_fiber_stack(), Config::DEFAULT_FIBER_STACK);
        let c = c
            .with_backend(Backend::OsThreads)
            .with_fiber_stack_size(64 * 1024);
        assert_eq!(c.backend, Backend::OsThreads);
        assert_eq!(c.effective_fiber_stack(), 64 * 1024);
        // OS threads are always effective; a fiber request degrades to OS
        // threads exactly when the target lacks support.
        assert_eq!(Backend::OsThreads.effective(), Backend::OsThreads);
        if crate::fiber::supported() {
            assert_eq!(Backend::Fibers.effective(), Backend::Fibers);
            assert_eq!(Backend::default_backend(), Backend::Fibers);
        } else {
            assert_eq!(Backend::Fibers.effective(), Backend::OsThreads);
            assert_eq!(Backend::default_backend(), Backend::OsThreads);
        }
    }
}
