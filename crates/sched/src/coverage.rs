//! Coverage-guided schedule fuzzing (the AFL recipe, transplanted from
//! input bytes to scheduling decisions).
//!
//! Exhaustive phase-2 search — even with partial-order reduction — caps
//! out around 3×3 test matrices; a uniform random walk or PCT wastes most
//! of its throughput re-exploring equivalent interleavings of the early
//! schedule. [`CoverageStrategy`] turns raw runs/sec into *find-time*:
//!
//! * every consulted scheduling decision folds a **coverage signature** —
//!   a hash of (abstract scheduler state, enabled-thread set, chosen
//!   thread) — into a fixed-size bitmap ([`CoverageShared`]), where the
//!   abstract state is the rolling hash of the signatures along the run
//!   (the AFL `(prev >> 1) ^ cur` edge trick, which distinguishes *paths*
//!   without storing them);
//! * a run that lights a bitmap bit no earlier run lit enters a **corpus**
//!   of decision vectors, weighted by how many new bits it found;
//! * subsequent runs **mutate** corpus entries: replay a parent's decision
//!   prefix, then diverge by flipping one choice, splicing two parents,
//!   extending a truncated prefix with a fresh random tail, or injecting a
//!   preemption (scheduling away from the running thread — the move that
//!   cracks "component preempted inside its critical section" bugs).
//!
//! Feedback only *orders* exploration, it never prunes: every decision
//! vector remains reachable (mutation tails are random with full
//! support — biased toward continuing the running thread, the schedule
//! texture real defects live in, but every alternative keeps positive
//! probability — and a fraction of runs ignore the corpus entirely), so
//! any violation the random walk could find, the guided search can find
//! too — it just spends most of its budget near schedules that keep
//! discovering new scheduler states. All randomness comes from one seeded [`SmallRng`],
//! so a fixed seed reproduces the exact run sequence, byte for byte,
//! on either execution backend.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rand::distributions::WeightedIndex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::strategy::Strategy;

/// Size of the coverage bitmap in bits. A power of two so signatures are
/// reduced by masking; 64 Ki bits (8 KiB) keeps hash collisions rare for
/// the schedule counts a fuzzing campaign reaches while staying resident
/// in L1/L2.
pub const COVERAGE_MAP_BITS: usize = 1 << 16;

/// Maximum corpus entries retained; beyond it the oldest entry is
/// recycled (novel schedules keep arriving as exploration deepens, and
/// stale parents rarely stay productive).
pub const CORPUS_CAP: usize = 256;

/// Snapshot of a coverage-guided exploration's feedback state, harvested
/// into [`ExploreStats`](crate::ExploreStats) when the exploration ends.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoverageCounters {
    /// Decision vectors currently in the corpus (≤ [`CORPUS_CAP`]).
    pub corpus_size: u64,
    /// Distinct bits set in the coverage bitmap.
    pub coverage_bits: u64,
    /// Runs that diverged from a corpus parent (as opposed to fresh
    /// random walks, which include every run before the first corpus
    /// entry exists).
    pub mutations: u64,
}

/// One corpus entry: the decision vector of a run that found new
/// coverage, weighted by how many bits it lit.
#[derive(Debug, Clone)]
struct CorpusEntry {
    decisions: Vec<usize>,
    /// Parent-selection weight: the entry's new-bit count, *capped*.
    /// The very first runs light hundreds of bits (everything is novel);
    /// uncapped weights would hand them the whole mutation budget, while
    /// the interesting parents are the late arrivals that reached a rare
    /// scheduler state worth a single fresh bit.
    weight: u64,
}

/// Cap on a corpus entry's parent-selection weight (see
/// [`CorpusEntry::weight`]).
const PARENT_WEIGHT_CAP: u64 = 4;

#[derive(Debug, Default)]
struct Corpus {
    entries: Vec<CorpusEntry>,
    /// Next slot to recycle once `entries` is at [`CORPUS_CAP`] (FIFO:
    /// deterministic, and old parents are the least productive).
    evict: usize,
}

/// The feedback state shared by every [`CoverageStrategy`] attached to
/// it: the coverage bitmap, the corpus, and the campaign counters.
///
/// The bitmap is plain atomics and the corpus a mutex, so the state can
/// sit behind an [`Arc`] under the existing worker infrastructure —
/// several explorations (e.g. one per OS worker, or successive iterative-
/// bounding passes) can pool their feedback. A single serial exploration
/// (the default, and what the determinism suite pins down) touches it
/// from one thread only, so its evolution is deterministic.
#[derive(Debug)]
pub struct CoverageShared {
    map: Vec<AtomicU64>,
    bits_set: AtomicU64,
    mutations: AtomicU64,
    corpus: Mutex<Corpus>,
}

impl CoverageShared {
    /// Creates an empty bitmap and corpus.
    pub fn new() -> Self {
        CoverageShared {
            map: (0..COVERAGE_MAP_BITS / 64)
                .map(|_| AtomicU64::new(0))
                .collect(),
            bits_set: AtomicU64::new(0),
            mutations: AtomicU64::new(0),
            corpus: Mutex::new(Corpus::default()),
        }
    }

    /// Distinct coverage bits set so far.
    pub fn coverage_bits(&self) -> u64 {
        self.bits_set.load(Ordering::Relaxed)
    }

    /// Current corpus size.
    pub fn corpus_size(&self) -> u64 {
        self.corpus
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entries
            .len() as u64
    }

    /// Mutated (corpus-derived) runs executed so far.
    pub fn mutations(&self) -> u64 {
        self.mutations.load(Ordering::Relaxed)
    }

    /// Folds a run's signature slots into the bitmap; returns how many
    /// bits were newly set.
    fn absorb(&self, slots: &[usize]) -> u64 {
        let mut new_bits = 0;
        for &slot in slots {
            let bit = 1u64 << (slot % 64);
            let prev = self.map[slot / 64].fetch_or(bit, Ordering::Relaxed);
            if prev & bit == 0 {
                new_bits += 1;
            }
        }
        if new_bits > 0 {
            self.bits_set.fetch_add(new_bits, Ordering::Relaxed);
        }
        new_bits
    }

    fn push_corpus(&self, decisions: Vec<usize>, new_bits: u64) {
        let mut corpus = self.corpus.lock().unwrap_or_else(|e| e.into_inner());
        let entry = CorpusEntry {
            decisions,
            weight: new_bits.clamp(1, PARENT_WEIGHT_CAP),
        };
        if corpus.entries.len() < CORPUS_CAP {
            corpus.entries.push(entry);
        } else {
            let slot = corpus.evict;
            corpus.entries[slot] = entry;
            corpus.evict = (slot + 1) % CORPUS_CAP;
        }
    }
}

impl Default for CoverageShared {
    fn default() -> Self {
        CoverageShared::new()
    }
}

/// SplitMix64 finalizer: a cheap full-avalanche mix for the signature
/// hash (the same mixer the rand stub's seeder uses).
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// How the current run diverges from its corpus parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mutation {
    /// Fresh uniform random walk (no parent; also every run while the
    /// corpus is still empty).
    Fresh,
    /// Replay the parent, but at the mutation point pick a *different*
    /// alternative; keep replaying beyond it.
    Flip,
    /// Replay parent A up to the mutation point, then parent B's tail
    /// from an independently chosen offset.
    Splice,
    /// Replay the parent truncated at the mutation point, then extend
    /// with a fresh random tail.
    Extend,
    /// At each mutation point (one to three of them, early-biased),
    /// schedule anyone but the running thread (candidate 0 — the runtime
    /// lists the continuation first); keep replaying between and beyond
    /// them. Multiple points matter: defects guarded by a *chain* of
    /// independent races need several preemptions in one run, and
    /// waiting for each to enter the corpus separately squares the
    /// discovery time.
    Preempt,
}

/// Coverage-guided scheduling strategy (see the module docs).
///
/// Like [`RandomStrategy`](crate::strategy::RandomStrategy) it is
/// non-exhaustive: `runs` bounds the campaign, and partial-order
/// reduction stays disengaged (sleep sets describe an exhaustive
/// enumeration; for a guided sample they would *unsoundly prune* — the
/// feedback here only reorders, so soundness of reported violations is
/// untouched).
#[derive(Debug)]
pub struct CoverageStrategy {
    rng: SmallRng,
    runs_left: u64,
    shared: Arc<CoverageShared>,
    /// Decision template for this run: a (possibly spliced or truncated)
    /// corpus parent; empty for a fresh random walk.
    template: Vec<usize>,
    /// Positions at which [`Mutation::Flip`] / [`Mutation::Preempt`]
    /// divert from the template (sorted; a single point for `Flip`, up
    /// to [`MAX_PREEMPT_POINTS`] for `Preempt`).
    points: Vec<usize>,
    mutation: Mutation,
    /// Decisions made so far this run (mirrors the runtime's record).
    decisions: Vec<usize>,
    /// Coverage slots touched this run, folded into the bitmap at
    /// [`Strategy::end_run`].
    sig: Vec<usize>,
    /// Rolling location hash of the signatures along this run (the
    /// abstract scheduler state of the edge signature).
    prev: u64,
}

/// Probability (out of 16) that a run ignores the corpus and walks
/// fresh, keeping the whole schedule space reachable.
const FRESH_IN_16: u64 = 2;

/// Probability (out of 16) that a random (non-replay) thread choice
/// *continues the running thread* (candidate 0) instead of drawing
/// uniformly. A uniform walk over `k` runnable threads context-switches
/// on 1 − 1/k of its steps — schedule textures that almost never let an
/// operation's critical section complete untouched, and that drown the
/// map in noisy signatures. Real defect schedules look like the
/// opposite: long quiet stretches punctuated by a few precise
/// preemptions (the insight behind PCT's priority schedules). Sticky
/// tails reproduce that texture while the explicit [`Mutation::Preempt`]
/// points supply the precision; the remaining 1-in-4 uniform draws keep
/// every decision vector reachable.
const STICKY_IN_16: u64 = 12;

/// Maximum preemption points a single [`Mutation::Preempt`] plan
/// injects (a chain of `k` independent races needs `k` preemptions in
/// one run).
const MAX_PREEMPT_POINTS: usize = 3;

/// Relative weights of the four mutation operators. Preemption injection
/// is the heavy hitter: the seeded bugs of this repository (like most of
/// the paper's Table 2 root causes) need the victim preempted inside a
/// critical section, which replay-then-preempt reaches directly.
const MUTATION_WEIGHTS: [u64; 4] = [3, 2, 3, 5]; // Flip, Splice, Extend, Preempt

impl CoverageStrategy {
    /// Creates a coverage-guided exploration with its own fresh feedback
    /// state, performing at most `runs` runs.
    pub fn new(seed: u64, runs: u64) -> Self {
        Self::with_shared(seed, runs, Arc::new(CoverageShared::new()))
    }

    /// Creates a strategy feeding and fed by an existing shared bitmap +
    /// corpus (e.g. one pooled across workers or exploration passes).
    pub fn with_shared(seed: u64, runs: u64, shared: Arc<CoverageShared>) -> Self {
        CoverageStrategy {
            rng: SmallRng::seed_from_u64(seed),
            runs_left: runs,
            shared,
            template: Vec::new(),
            points: Vec::new(),
            mutation: Mutation::Fresh,
            decisions: Vec::new(),
            sig: Vec::new(),
            prev: 0,
        }
    }

    /// The shared feedback state (to pool across strategies).
    pub fn shared(&self) -> Arc<CoverageShared> {
        Arc::clone(&self.shared)
    }

    /// Draws a mutation point in `0..len`, biased toward the front (the
    /// minimum of two uniform draws — a triangular distribution). The
    /// consequential decisions sit early: a divergence in the last steps
    /// of a run re-executes an almost-identical schedule, while an early
    /// one opens a genuinely different subtree.
    fn early_point(rng: &mut SmallRng, len: usize) -> usize {
        rng.gen_range(0..len).min(rng.gen_range(0..len))
    }

    /// Plans this run's mutation: pick a parent (weighted by the new
    /// coverage it found, capped), a mutation operator, and the mutation
    /// point(s). All draws come from the seeded generator in a fixed
    /// order, so the plan sequence is a deterministic function of
    /// (seed, corpus evolution).
    fn plan(&mut self) {
        self.template.clear();
        self.points.clear();
        self.mutation = Mutation::Fresh;
        let corpus = self.shared.corpus.lock().unwrap_or_else(|e| e.into_inner());
        if corpus.entries.is_empty() || self.rng.gen_range(0..16u64) < FRESH_IN_16 {
            return;
        }
        let weights =
            WeightedIndex::new(corpus.entries.iter().map(|e| e.weight)).expect("non-empty");
        let base = &corpus.entries[weights.sample(&mut self.rng)];
        let ops = WeightedIndex::new(MUTATION_WEIGHTS).expect("static weights");
        let mutation = match ops.sample(&mut self.rng) {
            0 => Mutation::Flip,
            1 => Mutation::Splice,
            2 => Mutation::Extend,
            _ => Mutation::Preempt,
        };
        if base.decisions.is_empty() {
            // A parent with no consulted decisions (single-threaded run)
            // has nothing to mutate.
            return;
        }
        match mutation {
            Mutation::Flip => {
                self.template.extend_from_slice(&base.decisions);
                let point = Self::early_point(&mut self.rng, self.template.len());
                self.points.push(point);
            }
            Mutation::Preempt => {
                self.template.extend_from_slice(&base.decisions);
                // One to MAX_PREEMPT_POINTS early-biased points,
                // geometrically distributed (each extra point with
                // probability 1/2).
                let len = self.template.len();
                let point = Self::early_point(&mut self.rng, len);
                self.points.push(point);
                while self.points.len() < MAX_PREEMPT_POINTS && self.rng.gen_range(0..2u32) == 0 {
                    let extra = Self::early_point(&mut self.rng, len);
                    if !self.points.contains(&extra) {
                        self.points.push(extra);
                    }
                }
                self.points.sort_unstable();
            }
            Mutation::Extend => {
                let cut = Self::early_point(&mut self.rng, base.decisions.len());
                self.template.extend_from_slice(&base.decisions[..cut]);
            }
            Mutation::Splice => {
                let cut = self.rng.gen_range(0..base.decisions.len() + 1);
                self.template.extend_from_slice(&base.decisions[..cut]);
                // Second parent drawn uniformly; its tail offset is
                // independent of the cut (classic AFL splice).
                let partner = &corpus.entries[self.rng.gen_range(0..corpus.entries.len())];
                if !partner.decisions.is_empty() {
                    let from = self.rng.gen_range(0..partner.decisions.len());
                    self.template.extend_from_slice(&partner.decisions[from..]);
                }
            }
            Mutation::Fresh => unreachable!("fresh plans return above"),
        }
        self.mutation = mutation;
    }

    /// A random (non-replay) choice: sticky toward continuing the
    /// running thread (candidate 0), else uniform over the alternatives.
    fn sticky_choice(&mut self, num_alts: usize) -> usize {
        if self.rng.gen_range(0..16u64) < STICKY_IN_16 {
            0
        } else {
            self.rng.gen_range(0..num_alts)
        }
    }

    /// Resolves the decision at the current position: template replay,
    /// the planned divergence, or a random tail (sticky for thread
    /// choices, uniform for boolean/other choices).
    fn next_choice(&mut self, num_alts: usize, thread_choice: bool) -> usize {
        debug_assert!(num_alts >= 2);
        let pos = self.decisions.len();
        let idx = if pos < self.template.len() {
            let replay = self.template[pos].min(num_alts - 1);
            match self.mutation {
                Mutation::Flip if self.points.contains(&pos) => {
                    (replay + 1 + self.rng.gen_range(0..num_alts - 1)) % num_alts
                }
                Mutation::Preempt if self.points.contains(&pos) => self.rng.gen_range(1..num_alts),
                _ => replay,
            }
        } else if thread_choice {
            self.sticky_choice(num_alts)
        } else {
            self.rng.gen_range(0..num_alts)
        };
        self.decisions.push(idx);
        idx
    }

    /// Folds one decision's signature into the run trace: `payload`
    /// packs the enabled/candidate description and the choice taken, and
    /// the rolling `prev` makes the slot path-sensitive.
    fn record_sig(&mut self, payload: u64) {
        let cur = mix(payload);
        self.sig
            .push((((self.prev >> 1) ^ cur) as usize) & (COVERAGE_MAP_BITS - 1));
        self.prev = cur;
    }
}

impl Strategy for CoverageStrategy {
    fn begin_run(&mut self) {
        self.decisions.clear();
        self.sig.clear();
        self.prev = 0;
        self.plan();
    }

    fn choose(&mut self, num_alts: usize) -> usize {
        // Non-thread (boolean) choice: tagged so it cannot collide with a
        // thread signature of the same shape.
        let idx = self.next_choice(num_alts, false);
        self.record_sig(0xb001_0000_0000_0000 ^ ((num_alts as u64) << 32) ^ idx as u64);
        idx
    }

    fn choose_thread(&mut self, candidates: &[usize], step: usize) -> usize {
        let idx = self.next_choice(candidates.len(), true);
        // Signature payload: the enabled-thread set (candidate id mask),
        // the chosen thread id, and the log₂ step bucket — so "the same
        // contention shape much later in the run" still counts as the
        // same location, while early/late phases stay distinguishable.
        let mask: u64 = candidates.iter().fold(0, |m, &t| m | (1 << (t & 63)));
        let bucket = (usize::BITS - step.leading_zeros()) as u64;
        self.record_sig(mask ^ ((candidates[idx] as u64) << 40) ^ (bucket << 56));
        idx
    }

    fn end_run(&mut self) -> bool {
        let new_bits = self.shared.absorb(&self.sig);
        if new_bits > 0 {
            self.shared
                .push_corpus(std::mem::take(&mut self.decisions), new_bits);
        }
        if self.mutation != Mutation::Fresh {
            self.shared.mutations.fetch_add(1, Ordering::Relaxed);
        }
        self.runs_left = self.runs_left.saturating_sub(1);
        self.runs_left > 0
    }

    fn coverage_counters(&self) -> Option<CoverageCounters> {
        Some(CoverageCounters {
            corpus_size: self.shared.corpus_size(),
            coverage_bits: self.shared.coverage_bits(),
            mutations: self.shared.mutations(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives `n` fake decision points (all thread choices among
    /// `alts` candidates) through one run of the strategy.
    fn drive_run(s: &mut CoverageStrategy, points: usize, alts: usize) -> Vec<usize> {
        s.begin_run();
        let candidates: Vec<usize> = (0..alts).collect();
        (0..points)
            .map(|step| s.choose_thread(&candidates, step + 1))
            .collect()
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let mut a = CoverageStrategy::new(42, 100);
        let mut b = CoverageStrategy::new(42, 100);
        for _ in 0..50 {
            assert_eq!(drive_run(&mut a, 12, 3), drive_run(&mut b, 12, 3));
            assert_eq!(a.end_run(), b.end_run());
        }
        assert_eq!(a.coverage_counters(), b.coverage_counters());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = CoverageStrategy::new(1, 10);
        let mut b = CoverageStrategy::new(2, 10);
        let runs_a: Vec<_> = (0..5)
            .map(|_| {
                let r = drive_run(&mut a, 10, 4);
                a.end_run();
                r
            })
            .collect();
        let runs_b: Vec<_> = (0..5)
            .map(|_| {
                let r = drive_run(&mut b, 10, 4);
                b.end_run();
                r
            })
            .collect();
        assert_ne!(runs_a, runs_b);
    }

    #[test]
    fn novel_runs_enter_corpus_and_light_bits() {
        let mut s = CoverageStrategy::new(7, 1000);
        drive_run(&mut s, 10, 3);
        s.end_run();
        let c = s.coverage_counters().unwrap();
        assert_eq!(c.corpus_size, 1, "first run is always novel");
        assert!(c.coverage_bits >= 1 && c.coverage_bits <= 10);
        for _ in 0..99 {
            drive_run(&mut s, 10, 3);
            s.end_run();
        }
        let c = s.coverage_counters().unwrap();
        assert!(c.corpus_size >= 2, "more schedules find more coverage");
        assert!(c.coverage_bits > 10);
        assert!(c.mutations > 0, "corpus parents get mutated");
        assert!(c.mutations < 100, "some runs stay fresh random walks");
    }

    #[test]
    fn identical_rerun_is_not_novel() {
        let s = CoverageStrategy::new(3, 10);
        let shared = s.shared();
        // Absorbing the same slots twice must not double-count.
        assert_eq!(shared.absorb(&[5, 9, 5]), 2);
        assert_eq!(shared.absorb(&[5, 9]), 0);
        assert_eq!(shared.coverage_bits(), 2);
    }

    #[test]
    fn corpus_capacity_is_bounded() {
        let shared = CoverageShared::new();
        for i in 0..(CORPUS_CAP + 50) {
            shared.push_corpus(vec![i], 1);
        }
        assert_eq!(shared.corpus_size() as usize, CORPUS_CAP);
        let corpus = shared.corpus.lock().unwrap();
        // FIFO recycling: the overflow overwrote the oldest 50 slots.
        assert_eq!(corpus.entries[0].decisions, vec![CORPUS_CAP]);
        assert_eq!(corpus.entries[50].decisions, vec![50]);
    }

    #[test]
    fn preempt_mutation_diverges_from_running_thread() {
        // Force a Preempt plan and check every mutated point switches
        // away from candidate 0 (the continuation).
        let mut s = CoverageStrategy::new(11, 1000);
        s.shared.push_corpus(vec![0; 8], 4);
        let mut saw_preempt_divergence = false;
        let mut saw_multi_point = false;
        for _ in 0..400 {
            let run = drive_run(&mut s, 8, 3);
            if s.mutation == Mutation::Preempt {
                assert!(!s.points.is_empty() && s.points.len() <= MAX_PREEMPT_POINTS);
                for &p in &s.points {
                    assert_ne!(run[p], 0, "preemption must switch threads");
                }
                saw_preempt_divergence = true;
                saw_multi_point |= s.points.len() > 1;
            }
            s.end_run();
        }
        assert!(
            saw_preempt_divergence,
            "Preempt must be drawn within 400 plans"
        );
        assert!(saw_multi_point, "multi-point preemption chains must occur");
    }

    #[test]
    fn flip_mutation_changes_exactly_the_point() {
        let mut s = CoverageStrategy::new(13, 1000);
        s.shared.push_corpus(vec![1; 8], 4);
        for _ in 0..200 {
            let run = drive_run(&mut s, 8, 3);
            if s.mutation == Mutation::Flip {
                assert_eq!(s.points.len(), 1, "flip diverges at a single point");
                let point = s.points[0];
                let template = s.template.clone();
                assert_ne!(
                    run[point],
                    template[point].min(2),
                    "flip must pick a different alternative"
                );
                for (i, &d) in run.iter().enumerate() {
                    if i != point && i < template.len() {
                        assert_eq!(
                            d,
                            template[i].min(2),
                            "non-point positions replay the parent"
                        );
                    }
                }
                return;
            }
            s.end_run();
        }
        panic!("Flip never drawn in 200 plans");
    }

    #[test]
    fn shared_state_pools_across_strategies() {
        let shared = Arc::new(CoverageShared::new());
        let mut a = CoverageStrategy::with_shared(1, 10, Arc::clone(&shared));
        drive_run(&mut a, 10, 3);
        a.end_run();
        let mut b = CoverageStrategy::with_shared(2, 10, Arc::clone(&shared));
        assert_eq!(
            b.coverage_counters().unwrap().coverage_bits,
            shared.coverage_bits()
        );
        drive_run(&mut b, 10, 3);
        b.end_run();
        assert_eq!(a.coverage_counters(), b.coverage_counters());
    }
}
