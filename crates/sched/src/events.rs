//! The access log: a record of every instrumented action of one execution.
//!
//! The log is consumed by the comparison checkers of `lineup-checkers`
//! (happens-before race detection and conflict serializability, paper §5.6)
//! and is useful for debugging schedules. Line-Up itself only needs the
//! call/return events recorded separately by its harness.

use crate::ids::{ObjId, ThreadId};

/// The kind of instrumented action performed at a schedule point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A plain (non-atomic, data) read. Participates in race detection.
    ReadData,
    /// A plain (non-atomic, data) write. Participates in race detection.
    WriteData,
    /// A volatile / atomic load (synchronizing read).
    AtomicLoad,
    /// A volatile / atomic store (synchronizing write).
    AtomicStore,
    /// An atomic read-modify-write (CAS, exchange, fetch-add, …).
    /// `success` distinguishes failed compare-and-swap attempts, which do
    /// not write and therefore do not count as progress for livelock
    /// detection.
    AtomicRmw {
        /// Whether the read-modify-write actually wrote.
        success: bool,
    },
    /// A lock acquisition that succeeded.
    LockAcquire,
    /// A lock release.
    LockRelease,
    /// A monitor wait: the thread released the lock and blocked.
    MonitorWait,
    /// A monitor pulse (notify). `all` distinguishes pulse-all.
    MonitorPulse {
        /// Whether all waiters were woken rather than one.
        all: bool,
    },
    /// A voluntary yield inside a spin loop.
    Yield,
    /// An operation boundary emitted by the Line-Up harness between the
    /// operations of a test. Serial mode only allows context switches here.
    OpBoundary,
    /// Thread start (the first schedule point of every thread).
    ThreadStart,
    /// Thread completion.
    ThreadFinish,
    /// A nondeterministic boolean choice (e.g. a modelled lock timeout).
    ChoiceBool {
        /// The value that was chosen.
        value: bool,
    },
}

impl AccessKind {
    /// Whether this action changes shared state, for fair-livelock
    /// detection: a run in which no thread makes progress for a long time
    /// while every enabled thread spins is declared stuck.
    pub fn is_progress(self) -> bool {
        match self {
            AccessKind::AtomicStore
            | AccessKind::WriteData
            | AccessKind::AtomicRmw { success: true }
            | AccessKind::LockAcquire
            | AccessKind::LockRelease
            | AccessKind::MonitorWait
            | AccessKind::MonitorPulse { .. }
            | AccessKind::OpBoundary
            | AccessKind::ThreadStart
            | AccessKind::ThreadFinish => true,
            AccessKind::ReadData
            | AccessKind::AtomicLoad
            | AccessKind::AtomicRmw { success: false }
            | AccessKind::Yield
            | AccessKind::ChoiceBool { .. } => false,
        }
    }

    /// Whether this action is a plain data access (subject to data races).
    pub fn is_data(self) -> bool {
        matches!(self, AccessKind::ReadData | AccessKind::WriteData)
    }

    /// Whether this action writes (for conflict detection).
    pub fn is_write(self) -> bool {
        matches!(
            self,
            AccessKind::WriteData
                | AccessKind::AtomicStore
                | AccessKind::AtomicRmw { success: true }
        )
    }

    /// Whether this action reads (for conflict detection). RMWs both read
    /// and write; failed RMWs still read.
    pub fn is_read(self) -> bool {
        matches!(
            self,
            AccessKind::ReadData | AccessKind::AtomicLoad | AccessKind::AtomicRmw { .. }
        )
    }

    /// Whether this action synchronizes (creates happens-before edges).
    pub fn is_sync(self) -> bool {
        matches!(
            self,
            AccessKind::AtomicLoad
                | AccessKind::AtomicStore
                | AccessKind::AtomicRmw { .. }
                | AccessKind::LockAcquire
                | AccessKind::LockRelease
                | AccessKind::MonitorWait
                | AccessKind::MonitorPulse { .. }
        )
    }
}

/// One entry of the access log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEvent {
    /// Global step number (position in the schedule).
    pub step: usize,
    /// The thread that performed the action.
    pub thread: ThreadId,
    /// The object acted upon. Boundary/start/finish/choice events use the
    /// pseudo-object [`AccessEvent::NO_OBJ`].
    pub obj: ObjId,
    /// What was done.
    pub kind: AccessKind,
    /// Index of the operation (as delimited by [`AccessKind::OpBoundary`]
    /// events) this access belongs to, per thread. The serializability
    /// checker groups accesses into transactions by this index.
    pub op_index: usize,
}

impl AccessEvent {
    /// Pseudo object id used for events not tied to a model object.
    pub const NO_OBJ: ObjId = ObjId(u32::MAX);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_classification() {
        assert!(AccessKind::AtomicStore.is_progress());
        assert!(AccessKind::AtomicRmw { success: true }.is_progress());
        assert!(!AccessKind::AtomicRmw { success: false }.is_progress());
        assert!(!AccessKind::AtomicLoad.is_progress());
        assert!(!AccessKind::Yield.is_progress());
        assert!(AccessKind::LockRelease.is_progress());
        assert!(!AccessKind::ChoiceBool { value: true }.is_progress());
    }

    #[test]
    fn read_write_classification() {
        assert!(AccessKind::WriteData.is_write());
        assert!(!AccessKind::ReadData.is_write());
        assert!(AccessKind::ReadData.is_read());
        assert!(AccessKind::AtomicRmw { success: false }.is_read());
        assert!(!AccessKind::AtomicRmw { success: false }.is_write());
        assert!(AccessKind::AtomicRmw { success: true }.is_write());
    }

    #[test]
    fn sync_classification() {
        assert!(AccessKind::LockAcquire.is_sync());
        assert!(AccessKind::AtomicLoad.is_sync());
        assert!(!AccessKind::ReadData.is_sync());
        assert!(!AccessKind::Yield.is_sync());
    }

    #[test]
    fn data_classification() {
        assert!(AccessKind::ReadData.is_data());
        assert!(AccessKind::WriteData.is_data());
        assert!(!AccessKind::AtomicLoad.is_data());
    }
}
